//! # Systems Resilience
//!
//! A quantitative toolkit reproducing Maruyama & Minami, *Towards Systems
//! Resilience* (2013): a mathematical model of resilience based on dynamic
//! constraint satisfaction, executable models of the paper's strategy
//! catalogue (redundancy, diversity, adaptability, active resilience), and
//! the evolutionary multi-agent testbed the paper proposes.
//!
//! This facade crate re-exports the workspace crates:
//!
//! * [`core`] — configurations, constraints, shocks, quality trajectories,
//!   the Bruneau resilience metric, and mode switching.
//! * [`dcsp`] — the dynamic-constraint-satisfaction model: repair search,
//!   *k*-recoverability, *K*-maintainability, belief-state reasoning.
//! * [`ecology`] — replicator dynamics, diversity indices, concave fitness
//!   and weak selection, redundant genomes, extinction experiments.
//! * [`agents`] — digital-organism populations with redundancy/diversity/
//!   adaptability budgets (the paper's §4.4 testbed).
//! * [`networks`] — scale-free/random graphs under attack, cascades, the
//!   BTW sandpile, and the forest-fire model.
//! * [`stats`] — heavy-tail statistics and early-warning signals.
//! * [`engineering`] — RAID-style storage, N-version controllers, power
//!   grids, supply chains, MAPE-K loops, portfolios.
//! * [`service`] — the graceful-degradation serving layer: deadline-aware
//!   admission control, per-family bulkheads, circuit breakers, and a
//!   self-scored brownout controller over the experiment engines.
//! * [`telemetry`] — the deterministic observability spine: structured
//!   event tracing, a metrics registry with Prometheus/JSON exposition,
//!   chrome://tracing spans, and live Q(t) scoring with per-cause
//!   deficit attribution.
//! * [`anticipate`] — the anticipation layer: online early-warning
//!   detection (critical slowing down) over the live deficit stream,
//!   Normal/Alert/Emergency mode switching, and heavy-tail-aware loss
//!   provisioning.
//!
//! # Quickstart
//!
//! ```
//! use systems_resilience::core::{QualityTrajectory, resilience_loss};
//!
//! // Compare two recovery profiles with Bruneau's metric.
//! let slow = QualityTrajectory::bruneau_shape(1.0, 2, 50.0, 10, 2);
//! let fast = QualityTrajectory::bruneau_shape(1.0, 2, 50.0, 3, 2);
//! assert!(resilience_loss(&fast) < resilience_loss(&slow));
//! ```

#![forbid(unsafe_code)]

pub use resilience_agents as agents;
pub use resilience_anticipate as anticipate;
pub use resilience_cluster as cluster;
pub use resilience_core as core;
pub use resilience_dcsp as dcsp;
pub use resilience_ecology as ecology;
pub use resilience_engineering as engineering;
pub use resilience_networks as networks;
pub use resilience_service as service;
pub use resilience_stats as stats;
pub use resilience_telemetry as telemetry;

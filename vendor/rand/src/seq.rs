//! Sequence-related randomness: slice shuffling/choosing and distinct
//! index sampling.

use crate::Rng;

/// Extension methods on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffle in place (end-to-start Fisher–Yates, as in rand 0.8).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// One uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// `amount` distinct uniformly random elements (or all of them if
    /// `amount >= len`), in selection order.
    fn choose_multiple<'a, R: Rng + ?Sized>(
        &'a self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn choose_multiple<'a, R: Rng + ?Sized>(
        &'a self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&'a T> {
        let amount = amount.min(self.len());
        let picked: Vec<&T> = index::sample(rng, self.len(), amount)
            .into_iter()
            .map(|i| &self[i])
            .collect();
        picked.into_iter()
    }
}

/// Sampling distinct indices from `0..length`.
pub mod index {
    use crate::Rng;

    /// A set of distinct indices.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// Into a plain vector.
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }

        /// Number of sampled indices.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// Whether no indices were sampled.
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }

        /// Iterate over the indices.
        pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, usize>> {
            self.0.iter().copied()
        }
    }

    impl IntoIterator for IndexVec {
        type Item = usize;
        type IntoIter = std::vec::IntoIter<usize>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Sample `amount` distinct indices from `0..length` (Floyd's
    /// algorithm).
    ///
    /// # Panics
    ///
    /// Panics if `amount > length`.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
        assert!(
            amount <= length,
            "cannot sample {amount} distinct indices from 0..{length}"
        );
        let mut picked: Vec<usize> = Vec::with_capacity(amount);
        for j in (length - amount)..length {
            let t = rng.gen_range(0..=j);
            if picked.contains(&t) {
                picked.push(j);
            } else {
                picked.push(t);
            }
        }
        IndexVec(picked)
    }
}

#[cfg(test)]
mod tests {
    use super::index::sample;
    use super::*;
    use crate::RngCore;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Lcg(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_are_distinct_and_in_range() {
        let mut rng = Lcg(2);
        for _ in 0..200 {
            let idx = sample(&mut rng, 30, 7).into_vec();
            assert_eq!(idx.len(), 7);
            let mut seen = idx.clone();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), 7, "duplicates in {idx:?}");
            assert!(idx.iter().all(|&i| i < 30));
        }
    }

    #[test]
    fn sample_full_range() {
        let mut rng = Lcg(3);
        let mut idx = sample(&mut rng, 5, 5).into_vec();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn choose_multiple_caps_at_len() {
        let mut rng = Lcg(4);
        let v = [1, 2, 3];
        let all: Vec<&i32> = v.choose_multiple(&mut rng, 10).collect();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = Lcg(5);
        let v: [u8; 0] = [];
        assert!(v.choose(&mut rng).is_none());
    }
}

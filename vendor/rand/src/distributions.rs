//! Distributions: the [`Standard`] distribution and uniform range sampling.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: uniform over all values for
/// integers, uniform over `[0, 1)` for floats, a fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64
);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // Sign test on the high bit, as in rand 0.8.
        (rng.next_u32() as i32) < 0
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 mantissa bits, uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

/// Range argument accepted by [`crate::Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start() <= self.end(), "cannot sample empty range");
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// Uniform `u64` in `[0, range)` for `range > 0`, by widening-multiply
/// rejection (the "zone" method of rand 0.8).
fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, range: u64) -> u64 {
    debug_assert!(range > 0);
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let wide = (v as u128) * (range as u128);
        let hi = (wide >> 64) as u64;
        let lo = wide as u64;
        if lo <= zone {
            return hi;
        }
    }
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as u64).wrapping_sub(low as u64);
                let span = if inclusive { span.wrapping_add(1) } else { span };
                if span == 0 {
                    // Inclusive full-width range: any value.
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(sample_u64_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i64 as u64).wrapping_sub(low as i64 as u64);
                let span = if inclusive { span.wrapping_add(1) } else { span };
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                ((low as i64 as u64).wrapping_add(sample_u64_below(rng, span))) as i64 as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        // The [1, 2) mantissa trick of rand 0.8's UniformFloat.
        let value1_2 = f64::from_bits((1023u64 << 52) | (rng.next_u64() >> 12));
        let value0_1 = value1_2 - 1.0;
        let sample = low + value0_1 * (high - low);
        // Guard against rounding up to `high` on exclusive ranges.
        if sample >= high && high > low {
            low.max(high - (high - low) * f64::EPSILON)
        } else {
            sample
        }
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self {
        f64::sample_uniform(rng, f64::from(low), f64::from(high), inclusive) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn below_is_uniform_enough() {
        let mut rng = Lcg(9);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[sample_u64_below(&mut rng, 7) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "{counts:?}");
        }
    }

    #[test]
    fn signed_ranges_work() {
        let mut rng = Lcg(10);
        for _ in 0..1000 {
            let x = i64::sample_uniform(&mut rng, -5, 5, true);
            assert!((-5..=5).contains(&x));
        }
    }

    #[test]
    fn float_range_stays_exclusive() {
        let mut rng = Lcg(11);
        for _ in 0..10_000 {
            let x = f64::sample_uniform(&mut rng, 0.0, 1.0, false);
            assert!((0.0..1.0).contains(&x));
        }
    }
}

//! Offline stand-in for `rand` 0.8.
//!
//! The build container has no crates.io access, so the workspace vendors the
//! subset of the `rand` API it actually uses. Algorithms follow the real
//! crate where the choice is observable:
//!
//! * [`SeedableRng::seed_from_u64`] expands the seed with the same PCG32
//!   stream rand_core 0.6 uses, so seeds map to the same key material.
//! * [`Rng::gen_range`] uses the widening-multiply rejection method for
//!   integers and the `[1, 2)` mantissa trick for floats.
//! * [`Rng::gen_bool`] uses a 64-bit integer threshold comparison.
//! * [`seq::SliceRandom::shuffle`] is the end-to-start Fisher–Yates walk.
//!
//! Cross-crate stream compatibility with the real `rand` is *not* a
//! guarantee this workspace relies on — every statistical assertion is
//! tolerance-based, and the repository's determinism contract (see
//! DESIGN.md) is about self-consistency of seeds, not about matching a
//! particular upstream release bit-for-bit.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The core of every random number generator: a stream of raw bits.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it over the full seed with the
    /// same PCG32 stream rand_core 0.6 uses.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let word = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&word.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// A random value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// A random value in the given range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: p must be in [0, 1], got {p}"
        );
        if p >= 1.0 {
            return true;
        }
        // Integer threshold: p maps to p·2⁶⁴ as in rand 0.8's Bernoulli.
        let threshold = (p * 2.0f64.powi(64)) as u64;
        self.next_u64() < threshold
    }

    /// Sample from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            // SplitMix64: decent bits for the distribution tests below.
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&y));
            let z: usize = rng.gen_range(5..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(2);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = Counter(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Counter(4);
        let _: usize = rng.gen_range(5..5);
    }

    #[test]
    fn unit_float_is_in_range() {
        let mut rng = Counter(5);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}

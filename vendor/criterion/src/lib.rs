//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches
//! use — [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — over a simple
//! median-of-samples wall-clock harness. No statistical analysis, plots,
//! or baseline storage; output is one line per benchmark on stdout.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    /// Parse (and ignore) CLI arguments such as cargo's `--bench`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Run a benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_benchmark(&id.into(), sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Time one closure under `<group>/<id>`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// End the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Handed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it enough times to get a stable reading.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = self.iters.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Calibrate: grow the iteration count until one sample takes ≥1ms,
    // so short routines aren't dominated by timer resolution.
    let mut iters: u64 = 1;
    loop {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if bencher.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let mut samples: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut bencher = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            bencher.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    println!(
        "{label:<50} median {} ({} samples x {iters} iters)",
        format_time(median),
        samples.len()
    );
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut criterion = Criterion { sample_size: 2 };
        let mut group = criterion.benchmark_group("smoke");
        group
            .sample_size(2)
            .bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }

    #[test]
    fn format_time_picks_unit() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" us"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}

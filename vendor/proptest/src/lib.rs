//! Offline stand-in for `proptest`.
//!
//! Provides the macro/strategy surface this workspace uses —
//! [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`],
//! [`strategy::Strategy`] for ranges and [`strategy::any`], and
//! [`collection::vec`] — over a deterministic seeded generator. Every
//! test case is derived from an FNV hash of the test name plus the case
//! index, so failures reproduce exactly across runs and machines.
//!
//! Shrinking and `proptest-regressions` replay are not implemented: a
//! failing case panics with its case index and formatted arguments
//! instead.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The usual `use proptest::prelude::*;` imports.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Each `#[test] fn name(arg in strategy, ...)`
/// item becomes a normal test that evaluates the body over
/// `config.cases` deterministic strategy draws.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal item-by-item expansion for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr); ) => {};
    (
        ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __proptest_config = $config;
            let __proptest_runner =
                $crate::test_runner::TestRunner::new(&__proptest_config, stringify!($name));
            for __proptest_case in 0..__proptest_runner.cases() {
                let mut __proptest_rng = __proptest_runner.rng_for_case(__proptest_case);
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&$strategy, &mut __proptest_rng);
                )+
                let __proptest_args = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)+ ""),
                    $(&$arg),+
                );
                let __proptest_outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__proptest_msg) = __proptest_outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        __proptest_case,
                        __proptest_runner.cases(),
                        __proptest_msg,
                        __proptest_args,
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

/// `assert!` for property bodies: reports the failing case instead of
/// panicking mid-case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right,
            ));
        }
    }};
}

/// `prop_assume!` for property bodies. The real proptest rejects the
/// case and draws a replacement; this stand-in simply skips the case
/// (fine for assumptions that hold almost surely, like `a != b` over
/// random `u64`s).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left != right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                left,
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..17, x in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn vec_strategy_obeys_size(v in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn any_u64_varies(a in any::<u64>(), b in any::<u64>()) {
            // Distinct strategy draws within a case come from one stream.
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let config = ProptestConfig::with_cases(4);
        let runner = crate::test_runner::TestRunner::new(&config, "cases_are_deterministic");
        let draw = |case| {
            let mut rng = runner.rng_for_case(case);
            crate::strategy::Strategy::generate(&(0u64..1_000_000), &mut rng)
        };
        assert_eq!(draw(0), draw(0));
        assert_ne!(draw(0), draw(1));
    }

    #[test]
    fn failing_property_reports() {
        let config = ProptestConfig::with_cases(2);
        let runner = crate::test_runner::TestRunner::new(&config, "failing_property_reports");
        let mut rng = runner.rng_for_case(0);
        let outcome = (|| -> Result<(), String> {
            let n: usize = crate::strategy::Strategy::generate(&(0usize..10), &mut rng);
            prop_assert!(n > 100, "n was {n}");
            Ok(())
        })();
        assert!(outcome.is_err());
    }
}

//! Strategies: deterministic value generators driven by the case rng.

use crate::test_runner::TestRng;
use rand::distributions::{SampleUniform, Standard};
use rand::{Distribution, Rng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value from the case rng.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + PartialOrd + Copy,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: SampleUniform + PartialOrd + Copy,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

/// Strategy for "any value of `T`" — see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Uniform over all values of `T` (via the `Standard` distribution).
pub fn any<T>() -> Any<T>
where
    Standard: Distribution<T>,
{
    Any(PhantomData)
}

impl<T> Strategy for Any<T>
where
    Standard: Distribution<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

/// A fixed value (proptest's `Just`).
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!((A / 0, B / 1)(A / 0, B / 1, C / 2)(
    A / 0,
    B / 1,
    C / 2,
    D / 3
));

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::{ProptestConfig, TestRunner};

    fn rng() -> TestRng {
        TestRunner::new(&ProptestConfig::with_cases(1), "strategy_tests").rng_for_case(0)
    }

    #[test]
    fn inclusive_range_hits_bounds_eventually() {
        let mut rng = rng();
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(0usize..=2).generate(&mut rng)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn tuples_compose() {
        let mut rng = rng();
        let (a, b, c) = (0usize..5, -1.0f64..1.0, Just(7u8)).generate(&mut rng);
        assert!(a < 5);
        assert!((-1.0..1.0).contains(&b));
        assert_eq!(c, 7);
    }
}

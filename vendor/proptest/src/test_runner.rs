//! The deterministic case runner behind [`crate::proptest!`].

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The rng handed to strategies for each case.
pub type TestRng = ChaCha8Rng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Drives the per-case rngs for one property.
#[derive(Debug)]
pub struct TestRunner {
    cases: u32,
    seed_base: u64,
}

impl TestRunner {
    /// Seed the runner from the property name (FNV-1a), so each property
    /// sees its own reproducible stream.
    pub fn new(config: &ProptestConfig, name: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner {
            cases: config.cases,
            seed_base: hash,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The rng for one case: SplitMix64 over (name hash, case index).
    pub fn rng_for_case(&self, case: u32) -> TestRng {
        let mut z = self
            .seed_base
            .wrapping_add(u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ChaCha8Rng::seed_from_u64(z ^ (z >> 31))
    }
}

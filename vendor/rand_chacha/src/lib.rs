//! Offline stand-in for `rand_chacha` 0.3.
//!
//! Implements a genuine ChaCha8 keystream generator (IETF layout: 32-byte
//! key, 64-bit block counter in state words 12–13, zero nonce) behind the
//! vendored [`rand`] traits. The keystream is real ChaCha8 — the quality
//! and determinism guarantees of the cipher hold — but byte-for-byte
//! equality with upstream `rand_chacha` streams is not something this
//! workspace depends on (all statistical assertions are tolerance-based).

#![forbid(unsafe_code)]

pub use rand::{RngCore, SeedableRng};

/// Compatibility shim: callers import `rand_chacha::rand_core::SeedableRng`.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const BLOCK_WORDS: usize = 16;

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block with `rounds / 2` double rounds.
fn chacha_block(input: &[u32; BLOCK_WORDS], rounds: usize) -> [u32; BLOCK_WORDS] {
    let mut state = *input;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (word, init) in state.iter_mut().zip(input.iter()) {
        *word = word.wrapping_add(*init);
    }
    state
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Clone, Debug, PartialEq, Eq)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            buffer: [u32; BLOCK_WORDS],
            /// Next unconsumed word in `buffer`; `BLOCK_WORDS` = empty.
            index: usize,
        }

        impl $name {
            fn refill(&mut self) {
                let mut input = [0u32; BLOCK_WORDS];
                input[..4].copy_from_slice(&CONSTANTS);
                input[4..12].copy_from_slice(&self.key);
                input[12] = self.counter as u32;
                input[13] = (self.counter >> 32) as u32;
                // Words 14–15 stay zero (nonce).
                self.buffer = chacha_block(&input, $rounds);
                self.counter = self.counter.wrapping_add(1);
                self.index = 0;
            }

            #[inline]
            fn next_word(&mut self) -> u32 {
                if self.index >= BLOCK_WORDS {
                    self.refill();
                }
                let word = self.buffer[self.index];
                self.index += 1;
                word
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                    *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
                }
                Self {
                    key,
                    counter: 0,
                    buffer: [0; BLOCK_WORDS],
                    index: BLOCK_WORDS,
                }
            }
        }

        impl RngCore for $name {
            #[inline]
            fn next_u32(&mut self) -> u32 {
                self.next_word()
            }

            #[inline]
            fn next_u64(&mut self) -> u64 {
                let lo = self.next_word() as u64;
                let hi = self.next_word() as u64;
                lo | (hi << 32)
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    8,
    "ChaCha with 8 rounds — the workspace's default generator."
);
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 test vector: ChaCha20 block function.
    #[test]
    fn chacha20_block_matches_rfc_8439() {
        let mut input = [0u32; BLOCK_WORDS];
        input[..4].copy_from_slice(&CONSTANTS);
        let key_bytes: Vec<u8> = (0u8..32).collect();
        for (i, chunk) in key_bytes.chunks_exact(4).enumerate() {
            input[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        input[12] = 0x0000_0001; // counter
        input[13] = 0x0900_0000; // nonce word 0
        input[14] = 0x4a00_0000; // nonce word 1
        input[15] = 0x0000_0000; // nonce word 2
        let out = chacha_block(&input, 20);
        let expected: [u32; BLOCK_WORDS] = [
            0xe4e7f110, 0x15593bd1, 0x1fdd0f50, 0xc47120a3, 0xc7f4d1c7, 0x0368c033, 0x9aaa2204,
            0x4e6cd4c3, 0x466482d2, 0x09aa9f07, 0x05d7c214, 0xa2028bd9, 0xd19c12b5, 0xb94e16de,
            0xe883d0cb, 0x4e3c50a2,
        ];
        assert_eq!(out, expected);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let first_block: Vec<u32> = (0..BLOCK_WORDS).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..BLOCK_WORDS).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }

    #[test]
    fn output_distribution_sane() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        let rate = ones as f64 / (1000.0 * 64.0);
        assert!((rate - 0.5).abs() < 0.01, "bit rate {rate}");
    }
}

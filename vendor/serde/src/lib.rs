//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal serialization framework with the same import surface the real
//! crate offers (`serde::{Serialize, Deserialize}` traits + derive macros).
//! Instead of serde's visitor architecture, this implementation round-trips
//! every value through an owned [`Value`] tree; `serde_json` (also vendored)
//! renders and parses that tree. The JSON data model matches stock serde's
//! defaults for the shapes used in this workspace, so swapping the real
//! crates back in produces the same documents.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;

/// An owned JSON-like value tree — the interchange format between the
/// [`Serialize`]/[`Deserialize`] traits and the `serde_json` front end.
///
/// Object entries preserve insertion order (struct field order), matching
/// serde_json's `preserve_order` behaviour for reproducible output.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed (negative) integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered entries.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object entries, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrow the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(u) => Some(*u as f64),
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Numeric view as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// Numeric view as `i64`, if this is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::UInt(u) => i64::try_from(*u).ok(),
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Object field lookup, `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }
}

/// serde_json-style indexing: `value["field"]` yields `Null` for a
/// missing key or non-object instead of panicking.
impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

/// serde_json-style indexing: `value[i]` yields `Null` out of bounds.
impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        const NULL: Value = Value::Null;
        self.as_array()
            .and_then(|items| items.get(index))
            .unwrap_or(&NULL)
    }
}

/// Deserialization error: a message describing the shape mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// New error with the given message.
    pub fn new(message: &str) -> Self {
        DeError {
            message: message.to_string(),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Look up a field in an object's entry list (derive-macro helper).
pub fn object_field<'v>(entries: &'v [(String, Value)], name: &str) -> Result<&'v Value, DeError> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::new(&format!("missing field `{name}`")))
}

/// Serialize into the [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a value tree.
    fn serialize(&self) -> Value;
}

/// Deserialize from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

// --- primitive impls -------------------------------------------------------

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_u64().ok_or_else(|| {
                    DeError::new(concat!("expected unsigned integer for ", stringify!($t)))
                })?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::UInt(x as u64) } else { Value::Int(x) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_i64().ok_or_else(|| {
                    DeError::new(concat!("expected integer for ", stringify!($t)))
                })?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::new("expected number for f64"))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| DeError::new("expected number for f32"))
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::new("expected single-char string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::new("expected array"))?;
        items.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::new("expected 2-element array"))?;
        if items.len() != 2 {
            return Err(DeError::new("expected 2-element array"));
        }
        Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_object()
            .ok_or_else(|| DeError::new("expected object"))?;
        entries
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

//! Offline stand-in for `serde_json`, backed by the vendored `serde` crate's
//! [`Value`] tree. Supports the subset the workspace uses: `to_string`,
//! `to_string_pretty`, `to_value`, `from_str`, and `from_value`.
//!
//! Output conventions match stock serde_json: 2-space pretty indentation,
//! minimal string escapes (`\"`, `\\`, control characters), non-finite
//! floats rendered as `null`, and integers printed without a decimal point.

#![forbid(unsafe_code)]

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serialize to a pretty JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Serialize to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize())
}

/// Rebuild a value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::deserialize(value)?)
}

/// Parse a JSON document and deserialize it.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_value_complete(input)?;
    Ok(T::deserialize(&value)?)
}

/// Parse a JSON document into a [`Value`].
pub fn parse_value_complete(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        // Integers are formatted into a stack buffer rather than through
        // `fmt`/`to_string` — numbers dominate large trace documents and
        // the formatting machinery costs more than the digits.
        Value::UInt(u) => write_json_u64(out, *u),
        Value::Int(i) => {
            if *i < 0 {
                out.push('-');
                write_json_u64(out, i.unsigned_abs());
            } else {
                write_json_u64(out, *i as u64);
            }
        }
        Value::Float(f) => {
            if f.is_finite() {
                // Match serde_json: floats always carry a decimal point or
                // exponent so they re-parse as floats.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

/// Append `u` to `out` in decimal, formatted into a stack buffer.
/// Public for the same streaming serializers as [`write_json_string`].
pub fn write_json_u64(out: &mut String, mut u: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (u % 10) as u8;
        u /= 10;
        if u == 0 {
            break;
        }
    }
    // The buffer holds only ASCII digits, so this never fails.
    out.push_str(std::str::from_utf8(&buf[i..]).expect("digits are UTF-8"));
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    const SPACES: &str = "                                                                ";
    if let Some(width) = indent {
        out.push('\n');
        let mut n = width * depth;
        while n > 0 {
            let chunk = n.min(SPACES.len());
            out.push_str(&SPACES[..chunk]);
            n -= chunk;
        }
    }
}

/// Append `s` to `out` as a quoted JSON string, escaping as needed.
/// Public so hand-rolled streaming serializers (e.g. large trace
/// documents) can reuse the exact escaping of the generic writer.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    // Fast path: most strings (all object keys, enum tags, labels) need
    // no escaping and can be appended in one copy.
    if s.bytes().all(|b| b >= 0x20 && b != b'"' && b != b'\\') {
        out.push_str(s);
        out.push('"');
        return;
    }
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over a plain UTF-8 run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|_| text.parse::<i64>().ok())
                .map(Value::Int)
                .or_else(|| text.parse::<f64>().ok().map(Value::Float))
                .ok_or_else(|| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(
            to_string(&String::from("a\"b\\c\n")).unwrap(),
            r#""a\"b\\c\n""#
        );
    }

    #[test]
    fn roundtrip_collections() {
        let v: Vec<Vec<String>> = vec![vec!["x".into()], vec![]];
        let s = to_string(&v).unwrap();
        let back: Vec<Vec<String>> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let s: String = from_str(r#""é\n\tA😀""#).unwrap();
        assert_eq!(s, "é\n\tA😀");
    }

    #[test]
    fn pretty_output_shape() {
        let v: Vec<u64> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<bool>("true x").is_err());
    }
}

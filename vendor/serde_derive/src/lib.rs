//! Offline stand-in for `serde_derive`.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! a minimal serde implementation (see `vendor/serde`). This proc-macro
//! crate derives that implementation's `Serialize`/`Deserialize` traits for
//! the item shapes the workspace actually uses:
//!
//! * structs with named fields (any visibility), unit structs, tuple structs
//! * enums with unit variants, struct variants, and tuple variants
//! * the `#[serde(skip)]` field attribute (omitted on serialize, filled from
//!   `Default::default()` on deserialize)
//!
//! The JSON shape matches stock serde's defaults: structs are objects keyed
//! by field name, unit enum variants are strings, data-carrying variants are
//! single-key objects (`{"Variant": ...}`), newtype variants serialize their
//! payload directly, and wider tuple variants serialize as arrays.
//!
//! No `syn`/`quote`: the input item is parsed with a small hand-rolled token
//! walker and the impl is emitted as source text.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the vendored serde's `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive the vendored serde's `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsed item model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    skip: bool,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Token walking
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skip attributes (`#[...]`), returning true if any skipped attribute
    /// was exactly `#[serde(skip)]`.
    fn skip_attrs(&mut self) -> bool {
        let mut saw_skip = false;
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next(); // '#'
                         // Inner attributes (`#![...]`) do not occur in derive input.
            if let Some(TokenTree::Group(g)) = self.next() {
                if g.delimiter() == Delimiter::Bracket && attr_is_serde_skip(&g.stream()) {
                    saw_skip = true;
                }
            }
        }
        saw_skip
    }

    /// Skip a visibility qualifier (`pub`, `pub(crate)`, ...).
    fn skip_vis(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde derive: expected identifier, found {other:?}"),
        }
    }

    /// Skip a generic parameter list if one follows (`<...>`).
    fn skip_generics(&mut self) {
        let starts = matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<');
        if !starts {
            return;
        }
        let mut depth = 0i32;
        while let Some(t) = self.next() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            return;
                        }
                    }
                    _ => {}
                }
            }
        }
        panic!("serde derive: unterminated generic parameter list");
    }

    /// Consume tokens up to (and including) the next top-level comma,
    /// treating `<...>` as nested so commas inside generics don't split.
    fn skip_past_comma(&mut self) {
        let mut angle = 0i32;
        while let Some(t) = self.next() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => return,
                    _ => {}
                }
            }
        }
    }
}

fn attr_is_serde_skip(stream: &TokenStream) -> bool {
    let toks: Vec<TokenTree> = stream.clone().into_iter().collect();
    match toks.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_vis();
    let kind = c.expect_ident();
    let name = c.expect_ident();
    c.skip_generics();
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_struct_body(&mut c),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_enum_body(&mut c),
        },
        other => panic!("serde derive: unsupported item kind `{other}`"),
    }
}

fn parse_struct_body(c: &mut Cursor) -> Fields {
    match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        other => panic!("serde derive: unsupported struct body {other:?}"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while !c.at_end() {
        let skip = c.skip_attrs();
        if c.at_end() {
            break;
        }
        c.skip_vis();
        let name = c.expect_ident();
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field `{name}`, found {other:?}"),
        }
        c.skip_past_comma(); // the field's type
        fields.push(Field { name, skip });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    let mut trailing_comma = false;
    for t in stream {
        any = true;
        trailing_comma = false;
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    commas += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if !any {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn parse_enum_body(c: &mut Cursor) -> Vec<Variant> {
    let group = match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!("serde derive: expected enum body, found {other:?}"),
    };
    let mut c = Cursor::new(group.stream());
    let mut variants = Vec::new();
    while !c.at_end() {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident();
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.clone();
                c.next();
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.clone();
                c.next();
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant and/or the separating comma.
        c.skip_past_comma();
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code emission
// ---------------------------------------------------------------------------

fn emit_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let mut s = String::from(
                        "let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n",
                    );
                    for f in fs.iter().filter(|f| !f.skip) {
                        s.push_str(&format!(
                            "fields.push((String::from(\"{0}\"), \
                             ::serde::Serialize::serialize(&self.{0})));\n",
                            f.name
                        ));
                    }
                    s.push_str("::serde::Value::Object(fields)");
                    s
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(String::from(\"{vn}\")),\n"
                    )),
                    Fields::Named(fs) => {
                        let binds: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: _", f.name)
                                } else {
                                    f.name.clone()
                                }
                            })
                            .collect();
                        let mut body = String::from(
                            "let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n",
                        );
                        for f in fs.iter().filter(|f| !f.skip) {
                            body.push_str(&format!(
                                "fields.push((String::from(\"{0}\"), \
                                 ::serde::Serialize::serialize({0})));\n",
                                f.name
                            ));
                        }
                        body.push_str(&format!(
                            "::serde::Value::Object(vec![(String::from(\"{vn}\"), \
                             ::serde::Value::Object(fields))])"
                        ));
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{ {body} }},\n",
                            binds.join(", ")
                        ));
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::serialize(x0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![\
                             (String::from(\"{vn}\"), {payload})]),\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}\n"
            )
        }
    }
}

fn named_field_constructor(type_path: &str, fs: &[Field], obj: &str) -> String {
    let mut inits = String::new();
    for f in fs {
        if f.skip {
            inits.push_str(&format!(
                "{}: ::core::default::Default::default(),\n",
                f.name
            ));
        } else {
            inits.push_str(&format!(
                "{0}: ::serde::Deserialize::deserialize(::serde::object_field({obj}, \"{0}\")?)?,\n",
                f.name
            ));
        }
    }
    format!("{type_path} {{\n{inits}}}")
}

fn emit_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => format!(
                    "let obj = v.as_object().ok_or_else(|| \
                     ::serde::DeError::new(\"expected object for {name}\"))?;\n\
                     Ok({})",
                    named_field_constructor(name, fs, "obj")
                ),
                Fields::Unit => format!("let _ = v;\nOk({name})"),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::deserialize(v)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::deserialize(&arr[{i}])?"))
                        .collect();
                    format!(
                        "let arr = v.as_array().ok_or_else(|| \
                         ::serde::DeError::new(\"expected array for {name}\"))?;\n\
                         if arr.len() != {n} {{ return Err(::serde::DeError::new(\
                         \"wrong tuple arity for {name}\")); }}\n\
                         Ok({name}({}))",
                        items.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 {body}\n}}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n")),
                    Fields::Named(fs) => keyed_arms.push_str(&format!(
                        "\"{vn}\" => {{\n\
                         let obj = inner.as_object().ok_or_else(|| \
                         ::serde::DeError::new(\"expected object for {name}::{vn}\"))?;\n\
                         Ok({})\n}},\n",
                        named_field_constructor(&format!("{name}::{vn}"), fs, "obj")
                    )),
                    Fields::Tuple(1) => keyed_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::deserialize(inner)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::deserialize(&arr[{i}])?"))
                            .collect();
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let arr = inner.as_array().ok_or_else(|| \
                             ::serde::DeError::new(\"expected array for {name}::{vn}\"))?;\n\
                             if arr.len() != {n} {{ return Err(::serde::DeError::new(\
                             \"wrong tuple arity for {name}::{vn}\")); }}\n\
                             Ok({name}::{vn}({}))\n}},\n",
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => Err(::serde::DeError::new(&format!(\
                 \"unknown unit variant `{{other}}` for {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (key, inner) = &entries[0];\n\
                 match key.as_str() {{\n\
                 {keyed_arms}\
                 other => Err(::serde::DeError::new(&format!(\
                 \"unknown variant `{{other}}` for {name}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => Err(::serde::DeError::new(\"expected string or single-key object for {name}\")),\n\
                 }}\n}}\n}}\n"
            )
        }
    }
}

//! The paper's §4.4 open question, answered on the digital-organism
//! testbed: how should a fixed budget be split across redundancy,
//! diversity, and adaptability?
//!
//! ```bash
//! cargo run --release --example budget_sweep
//! ```

use systems_resilience::agents::experiment::{
    ablation_rows, best_allocation, sweep_budgets, ShockRegime,
};

fn main() {
    let steps = 300;
    let replicates = 8;

    println!("== ablation: uniform mix vs pure corners, per regime ==");
    for regime in ShockRegime::ALL {
        println!("\n{regime:?}:");
        for row in ablation_rows(regime, steps, replicates, 42) {
            println!(
                "  {}  survival {:.2}  final population {:>3.0}",
                row.allocation,
                row.survival_rate(),
                row.mean_final_population
            );
        }
    }

    println!("\n== simplex sweep under SteadyDrift (15 allocations) ==");
    let sweep = sweep_budgets(ShockRegime::SteadyDrift, 4, steps, replicates, 42);
    for row in &sweep {
        println!(
            "  {}  survival {:.2}  final population {:>3.0}",
            row.allocation,
            row.survival_rate(),
            row.mean_final_population
        );
    }
    if let Some(best) = best_allocation(&sweep) {
        println!(
            "\noptimum under drift: {} (survival {:.2}) — the best mix depends \
             on the shock regime, as §4.4 conjectures",
            best.allocation,
            best.survival_rate()
        );
    }
}

//! Active resilience by anticipation (§3.4.1): early-warning signals
//! before a tipping point, plus the heavy-tail insurance failure and mode
//! switching (§3.4.6).
//!
//! ```bash
//! cargo run --release --example early_warning
//! ```

use systems_resilience::core::seeded_rng;
use systems_resilience::stats::bistable::{BistableProcess, CRITICAL_FORCING};
use systems_resilience::stats::distributions::{Gaussian, Pareto};
use systems_resilience::stats::ews::{early_warning_signals, EwsConfig};
use systems_resilience::stats::heavy_tail::InsuranceExperiment;

fn main() {
    // Part 1: Scheffer's early-warning signals.
    let mut rng = seeded_rng(9);
    let process = BistableProcess {
        sigma: 0.04,
        ..BistableProcess::default()
    };
    println!("== approaching a fold bifurcation ==");
    let run = process.simulate_ramp(60_000, -0.25, CRITICAL_FORCING * 1.05, &mut rng);
    let tip = run.tipping_index.expect("ramp crosses the fold");
    let report = early_warning_signals(&run.series, tip, &EwsConfig::default())
        .expect("enough pre-tip data");
    println!("system tipped at step {tip}");
    println!(
        "pre-tip indicator trends: variance τ = {:.2}, lag-1 autocorrelation τ = {:.2}",
        report.variance_trend, report.autocorrelation_trend
    );
    println!("early warning raised: {}", report.warns(0.3));

    let control = process.simulate_stationary(60_000, -0.25, &mut rng);
    let quiet =
        early_warning_signals(&control.series, 60_000, &EwsConfig::default()).expect("enough data");
    println!(
        "stationary control:      variance τ = {:.2}, lag-1 autocorrelation τ = {:.2} \
         (warning: {})",
        quiet.variance_trend,
        quiet.autocorrelation_trend,
        quiet.warns(0.3)
    );

    // Part 2: why insurance fails for X-events.
    println!("\n== insuring Gaussian vs power-law losses (same pricing rule) ==");
    let exp = InsuranceExperiment::conventional(200, 2_000);
    let gauss = Gaussian::new(10.0, 2.0).expect("valid");
    let g = exp.run(&gauss, 300, &mut rng);
    println!(
        "Gaussian losses      : ruin probability {:.3}",
        g.ruin_probability()
    );
    for alpha in [2.5, 1.5, 1.2] {
        let pareto = Pareto::new(1.0, alpha).expect("valid");
        let p = exp.run(&pareto, 300, &mut rng);
        println!(
            "Pareto(α={alpha}) losses: ruin probability {:.3}{}",
            p.ruin_probability(),
            if alpha <= 2.0 {
                "  (infinite variance)"
            } else {
                ""
            }
        );
    }
    println!(
        "\nAs α falls the historical mean stops predicting the future and the \
         insurer is ruined:\nthe paper's argument for mode switching instead of \
         insurance against X-events."
    );
}

//! The paper's worked example (§4.2): a spacecraft pelted by space debris.
//!
//! The craft has n components, all required (`C = 1^n`); debris damages at
//! most k components at a time; one component is repaired per step, so the
//! craft is k-recoverable. We fly three missions with different repair
//! capacities and compare availability and Bruneau loss, then verify the
//! k-recoverability guarantee exhaustively.
//!
//! ```bash
//! cargo run --example spacecraft_mission
//! ```

use systems_resilience::core::{seeded_rng, AllOnes, Config, ShockSchedule};
use systems_resilience::dcsp::recoverability::is_k_recoverable_exhaustive;
use systems_resilience::dcsp::{GreedyRepair, Spacecraft};

fn main() {
    println!("== mission simulations ==");
    for repairs_per_step in [1usize, 2, 4] {
        let mut rng = seeded_rng(7);
        let mut craft = Spacecraft::new(24, 4, repairs_per_step);
        let log = craft.simulate_mission(600, &ShockSchedule::Periodic { period: 8 }, &mut rng);
        println!(
            "repairs/step {repairs_per_step}: guaranteed k = {}, strikes {}, \
             availability {:.2}, longest outage {}, Bruneau loss {:.0}",
            craft.guaranteed_k(),
            log.strikes,
            log.availability(),
            log.longest_outage,
            log.resilience_loss()
        );
    }

    println!("\n== exhaustive k-recoverability check (n = 10) ==");
    let start = Config::ones(10);
    let env = AllOnes::new(10);
    for (damage, k) in [(2usize, 2usize), (3, 3), (3, 2)] {
        let report = is_k_recoverable_exhaustive(&start, &env, &GreedyRepair::new(), damage, k);
        println!(
            "debris ≤{damage}, budget k={k}: {} perturbations, worst {} steps, \
             k-recoverable: {}{}",
            report.cases,
            report.worst_steps,
            report.is_k_recoverable(),
            report
                .counterexample
                .as_ref()
                .map(|w| format!("  (counterexample: damage {w:?})"))
                .unwrap_or_default()
        );
    }
}

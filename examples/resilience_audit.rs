//! A resilience audit, end to end: consult the Resilience BoK (§2), model
//! uncertain system state with beliefs (§3.4.2/§4.3), and certify the
//! repair strategy with a tiger team (§5.3).
//!
//! ```bash
//! cargo run --example resilience_audit
//! ```

use systems_resilience::core::seeded_rng;
use systems_resilience::core::{AllOnes, Catalogue, Config, Strategy};
use systems_resilience::dcsp::belief::BeliefState;
use systems_resilience::dcsp::repair::GreedyRepair;
use systems_resilience::dcsp::tiger_team::{random_testing, TigerTeam};

fn main() {
    // 1. What does the Body of Knowledge say about our options?
    let bok = Catalogue::paper();
    println!(
        "== Resilience BoK: {} catalogued case studies ==",
        bok.len()
    );
    for strategy in Strategy::PASSIVE {
        println!("\n{strategy:?}:");
        for entry in bok.by_strategy(strategy) {
            println!(
                "  §{:<6} {} [{}]",
                entry.section, entry.case, entry.implemented_by
            );
        }
    }
    println!(
        "\nActive-resilience dimensions: {}",
        bok.active_entries().len()
    );

    // 2. Modeling under uncertainty: a shock hit, sensors are partial.
    println!("\n== belief-state modeling after an unobserved ≤2-bit shock ==");
    let env = AllOnes::new(10);
    let mut belief = BeliefState::certain(Config::ones(10)).after_unobserved_damage(2);
    println!("possible states before telemetry: {}", belief.cardinality());
    for (bit, value) in [(0, true), (1, true), (2, false), (3, true), (4, true)] {
        belief.observe_bit(bit, value);
    }
    println!(
        "after 5 sensor readings          : {}",
        belief.cardinality()
    );
    let known = belief.known_bits();
    println!("bits pinned down                 : {}", known.len());
    let (flips, certain) = belief.conservative_repair(&env, 10);
    println!("conservative repair              : flips {flips:?}, certainly fit: {certain}");

    // 3. Certification: can a skilled attacker break the repair loop?
    println!("\n== tiger-team certification of the greedy repairer ==");
    let start = Config::ones(16);
    let team = TigerTeam::new(3, 4);
    let report = team.search(&start, &env_16(), &GreedyRepair::new(), 3);
    println!(
        "beam search: {} evaluations, worst attack {:?} scoring {} (failure: {})",
        report.evaluations, report.worst_damage, report.worst_score, report.found_failure
    );
    let mut rng = seeded_rng(5);
    let random = random_testing(
        &start,
        &env_16(),
        &GreedyRepair::new(),
        3,
        3,
        report.evaluations,
        &mut rng,
    );
    println!(
        "random testing (same budget): worst score {} (failure: {})",
        random.worst_score, random.found_failure
    );
    println!(
        "\nOn this benign AllOnes landscape no ≤3-bit attack defeats a 3-step \
         budget —\nexactly what certification should conclude; see experiment \
         E17 for a landscape\nwhere the tiger team finds what random testing \
         misses."
    );
}

fn env_16() -> AllOnes {
    AllOnes::new(16)
}

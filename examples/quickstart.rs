//! Quickstart: the core resilience vocabulary in one small program.
//!
//! A 16-component system is shocked, repairs itself one bit at a time
//! (the paper's §4.2 model), and we score the episode with Bruneau's
//! resilience metric (Fig. 3).
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use systems_resilience::core::bruneau::analyze_triangle;
use systems_resilience::core::{resilience_loss, seeded_rng, AllOnes, ShockKind};
use systems_resilience::dcsp::{DcspSystem, GreedyRepair};

fn main() {
    let mut rng = seeded_rng(42);

    // A system whose environment demands all 16 components good (C = 1^n).
    let mut system = DcspSystem::fit_under(Arc::new(AllOnes::new(16)));
    println!("initial state : {}", system.state());
    println!("fit?          : {}", system.is_fit());

    // An unanticipated event damages up to 5 components.
    let shock = system.strike(&ShockKind::BoundedBitDamage { max_flips: 5 }, &mut rng);
    println!("\nshock flipped : {:?}", shock.flipped_bits);
    println!("state         : {}", system.state());
    println!("quality       : {:.1}", system.quality());

    // Repair one bit per step until fit again.
    let outcome = system.repair(&GreedyRepair::new(), 16);
    println!(
        "\nrepair steps  : {} (flips {:?})",
        outcome.steps, outcome.flips
    );
    println!("recovered     : {}", outcome.recovered);

    // Score the whole episode: the resilience triangle.
    let quality = system.quality_trajectory();
    let loss = resilience_loss(quality);
    println!("\nquality curve : {:?}", quality.samples());
    println!("Bruneau loss R: {loss:.1}  (smaller = more resilient)");
    if let Ok(Some(triangle)) = analyze_triangle(quality, 100.0) {
        println!(
            "triangle      : drop {:.1}, recovery time {:.1}, robustness {:.2}",
            triangle.max_drop,
            triangle.recovery_time,
            triangle.robustness()
        );
    }
}

//! Redundancy in engineering systems (§3.1.2): the Japanese-grid story.
//!
//! A grid loses a third of its generation capacity (the post-3.11 nuclear
//! shutdown). Whether it rides through depends entirely on its reserve
//! margin. We also show the storage-array ladder from the same section.
//!
//! ```bash
//! cargo run --example grid_stress
//! ```

use systems_resilience::core::seeded_rng;
use systems_resilience::engineering::grid::PowerGrid;
use systems_resilience::engineering::storage::StorageArray;

fn main() {
    let loss = 1.0 / 3.0;
    println!(
        "== losing {:.0}% of generation (minimum riding-through margin: {:.2}) ==",
        loss * 100.0,
        PowerGrid::required_margin(loss)
    );
    for margin in [0.05, 0.2, 0.4, 0.55, 0.7] {
        let mut rng = seeded_rng(3);
        let grid = PowerGrid::new(100.0, margin, 0.2);
        let out = grid.simulate_shock(24 * 30, 100, loss, 24 * 14, &mut rng);
        println!(
            "reserve margin {margin:.2}: blackout hours {:>4}, unserved energy {:>8.1}, \
             Bruneau loss {:>8.0}{}",
            out.blackout_steps,
            out.unserved_energy,
            out.resilience_loss(),
            if out.rode_through() {
                "  <- rides through"
            } else {
                ""
            }
        );
    }

    println!("\n== RAID-style storage: survival over 300 steps vs parity disks ==");
    let mut rng = seeded_rng(4);
    for parity in 0..=3usize {
        let array = StorageArray::new(8, parity, 0.002, 2);
        let out = array.run_trials(300, 2_000, &mut rng);
        println!(
            "8 data + {parity} parity: survival {:.3}{}",
            out.survival_probability(),
            out.mean_steps_to_loss
                .map(|t| format!("  (mean time to loss {t:.0})"))
                .unwrap_or_default()
        );
    }
}

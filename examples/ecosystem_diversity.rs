//! Diversity as a resilience strategy (§3.2): replicator dynamics, the
//! diversity index, and a mass-extinction stress test.
//!
//! ```bash
//! cargo run --example ecosystem_diversity
//! ```

use std::sync::Arc;

use systems_resilience::core::seeded_rng;
use systems_resilience::ecology::extinction::{Community, ExtinctionExperiment};
use systems_resilience::ecology::fitness::{DensityDependent, LinearFitness};
use systems_resilience::ecology::replicator::ReplicatorSim;

fn main() {
    // Part 1: the replicator equation (§3.2.4).
    println!("== replicator dynamics: 6 species, fitness gradient 5% ==");
    let linear = Arc::new(LinearFitness::graded(6, 0.05));
    let traj = ReplicatorSim::uniform(linear).run(500);
    println!(
        "linear fitness        : G {:.2} -> {:.2}  (monoculture: species {} wins)",
        traj.diversity.values()[0],
        traj.diversity.values().last().unwrap(),
        traj.dominant_species()
    );
    let dd = Arc::new(DensityDependent::new(
        (0..6).map(|i| 1.0 + 0.05 * i as f64).collect(),
        0.9,
    ));
    let traj = ReplicatorSim::uniform(dd).run(500);
    println!(
        "density-dependent     : G {:.2} -> {:.2}  (diminishing returns preserve diversity)",
        traj.diversity.values()[0],
        traj.diversity.values().last().unwrap(),
    );

    // Part 2: the Permian-style stress test (§3.2.1).
    println!("\n== mass extinction: environment optimum jumps by up to ±3 ==");
    let mut rng = seeded_rng(11);
    let experiment = ExtinctionExperiment {
        initial_optimum: 0.0,
        tolerance: 0.5,
        shock_scale: 3.0,
    };
    for species in [1usize, 5, 20] {
        let community = if species == 1 {
            Community::monoculture(0.0, 100.0)
        } else {
            Community::spread(species, 0.0, 3.0, 100.0)
        };
        let out = experiment.run(&community, 3_000, &mut rng);
        println!(
            "{species:>2} species (G = {:>5.2}): community survives {:.0}% of shocks, \
             mean survivor fraction {:.2}",
            community.diversity(),
            100.0 * out.survival_probability(),
            out.mean_survivor_fraction
        );
    }
    println!(
        "\nThe diverse ecosystem almost always persists — but most of its \
         species do not.\nResilience depends on the system granularity (§5.2)."
    );
}

//! Property suite for the cluster cascade simulator (ISSUE: cascade
//! statistics at cluster scale).
//!
//! The contracts pinned here:
//!
//! * generated scale-free topologies honor the prescribed degree
//!   structure — minimum degree `m`, mean degree `2m`, and a power-law
//!   tail whose Hill exponent lands in sanity bounds;
//! * cascade damage is monotone in the initial damage: attacking a
//!   strictly larger hub set (the victim sets are nested prefixes of
//!   the same degree order) never *reduces* the run's resilience loss
//!   or the surviving population;
//! * removing zero nodes is a no-op: the attacked run's serialized
//!   cascade log is byte-identical to the attack-free baseline;
//! * cascade outcome logs are bit-identical across thread budgets
//!   1, 2, and 4.

use proptest::prelude::*;
use rand::Rng;
use systems_resilience::cluster::{AttackSpec, ClusterConfig, ClusterEngine, TopologyKind};
use systems_resilience::core::{FaultPlan, RunContext};
use systems_resilience::networks::AttackStrategy;
use systems_resilience::stats::hill_estimator;

/// A small fleet whose runs are cheap enough for proptest: no surge, no
/// recovery, pure attack-and-cascade physics. `headroom` picks the
/// regime — tight enough to cascade, or ample enough that only the
/// percolation damage of the attack itself registers.
fn attack_engine(n: usize, headroom: f64, topology_seed: u64) -> ClusterEngine {
    let mut config = ClusterConfig::new(n, TopologyKind::ScaleFree { m: 3 });
    config.ticks = 20;
    config.headroom = headroom;
    config.surge_drops = 0;
    config.recovery.retries = 0;
    ClusterEngine::new(config, topology_seed)
}

fn targeted(fraction: f64) -> AttackSpec {
    AttackSpec {
        tick: 4,
        strategy: AttackStrategy::TargetedByDegree,
        fraction,
        recoverable: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Barabási–Albert generation honors the prescribed degree
    /// distribution for any seed: every node keeps at least its `m`
    /// attachment edges, the mean degree is ~2m, and the degree tail is
    /// power-law with a Hill exponent in the scale-free band. (BA's
    /// degree density falls as d^-3, so the CCDF tail index the Hill
    /// estimator reads is ~2; generous bounds absorb finite-size bias.)
    #[test]
    fn scale_free_degrees_have_a_power_law_tail(seed in any::<u64>()) {
        let n = 2_000usize;
        let m = 3usize;
        let engine = attack_engine(n, 1.0, seed);
        let topology = engine.topology();
        let degrees: Vec<f64> = (0..n).map(|v| topology.degree(v) as f64).collect();
        let mean = degrees.iter().sum::<f64>() / n as f64;
        prop_assert!(
            degrees.iter().all(|&d| d >= m as f64),
            "a node lost its attachment edges"
        );
        prop_assert!(
            (mean - 2.0 * m as f64).abs() < 0.5,
            "mean degree {mean} far from 2m = {}",
            2 * m
        );
        let alpha = hill_estimator(&degrees, n / 10).expect("enough tail samples");
        prop_assert!(
            (1.0..=3.5).contains(&alpha),
            "degree-tail exponent {alpha} outside the scale-free band"
        );
    }

    /// Nested victim sets give monotone damage: a targeted attack on a
    /// strictly larger hub prefix can only increase the resilience loss
    /// and decrease the surviving population, for any topology seed and
    /// run seed. Pinned in the ample-headroom (percolation) regime —
    /// with overload cascades live, more initial damage can genuinely
    /// *reduce* total damage by pre-empting a worse avalanche, which is
    /// the prescribed-burn effect CLUSTER_BURN measures on purpose.
    #[test]
    fn cascades_are_monotone_in_initial_damage(
        topology_seed in any::<u64>(),
        run_seed in any::<u64>(),
    ) {
        let engine = attack_engine(1_000, 10.0, topology_seed);
        let mut last_loss = -1.0f64;
        let mut last_alive = u64::MAX;
        for fraction in [0.02, 0.05, 0.1, 0.2] {
            let report = engine.run(run_seed, Some(&targeted(fraction)), &FaultPlan::none());
            prop_assert!(
                report.resilience_loss() >= last_loss,
                "removing more hubs reduced R: {} after {last_loss} (f={fraction})",
                report.resilience_loss()
            );
            prop_assert!(
                report.final_alive <= last_alive,
                "removing more hubs grew the survivor count (f={fraction})"
            );
            last_loss = report.resilience_loss();
            last_alive = report.final_alive;
        }
    }

    /// Overload cascades only ever amplify an attack: under the same
    /// topology, victims, and run seed, the tight-headroom run's
    /// resilience loss dominates the ample-headroom (percolation-only)
    /// run's, and its survivor set is no larger.
    #[test]
    fn cascades_amplify_percolation_damage(
        topology_seed in any::<u64>(),
        run_seed in any::<u64>(),
        fraction in 0.02f64..0.2,
    ) {
        let tight = attack_engine(1_000, 1.0, topology_seed);
        let ample = attack_engine(1_000, 10.0, topology_seed);
        let attack = targeted(fraction);
        let cascaded = tight.run(run_seed, Some(&attack), &FaultPlan::none());
        let percolated = ample.run(run_seed, Some(&attack), &FaultPlan::none());
        prop_assert!(
            cascaded.resilience_loss() >= percolated.resilience_loss(),
            "cascades shrank the damage: {} vs {} (f={fraction})",
            cascaded.resilience_loss(),
            percolated.resilience_loss()
        );
        prop_assert!(cascaded.final_alive <= percolated.final_alive);
    }

    /// A zero-fraction attack is indistinguishable from no attack at
    /// all: the serialized cascade logs match byte for byte, so the
    /// f=0 row of the attack experiments *is* the fault-free baseline.
    #[test]
    fn zero_removal_is_the_fault_free_baseline(
        topology_seed in any::<u64>(),
        run_seed in any::<u64>(),
    ) {
        let engine = attack_engine(1_000, 1.0, topology_seed);
        let attacked = engine.run(run_seed, Some(&targeted(0.0)), &FaultPlan::none());
        let baseline = engine.run(run_seed, None, &FaultPlan::none());
        let attacked_log = serde_json::to_string(&attacked).expect("reports serialize");
        let baseline_log = serde_json::to_string(&baseline).expect("reports serialize");
        prop_assert_eq!(attacked_log, baseline_log);
    }
}

/// Cascade outcome logs — the full serialized `ClusterReport`, quality
/// trajectory and per-cause attribution included — fold bit-identically
/// on 1, 2, and 4 threads, under surge load plus a recoverable attack.
#[test]
fn cascade_logs_are_bit_identical_across_thread_budgets() {
    let mut config = ClusterConfig::new(2_000, TopologyKind::ScaleFree { m: 3 });
    config.ticks = 25;
    config.headroom = 0.8;
    config.surge_drops = 40;
    config.surge_grain = 0.5;
    let engine = ClusterEngine::new(config, 0xCA5C);
    let attack = AttackSpec {
        tick: 6,
        strategy: AttackStrategy::TargetedByDegree,
        fraction: 0.05,
        recoverable: true,
    };
    let logs_at = |threads: usize| -> Vec<String> {
        let ctx = RunContext::with_threads(97, threads);
        ctx.run_trials(
            6,
            ctx.derive(5),
            |_trial, rng| {
                let run_seed: u64 = rng.gen();
                let report = engine.run(run_seed, Some(&attack), &FaultPlan::none());
                serde_json::to_string(&report).expect("reports serialize")
            },
            Vec::new(),
            |mut acc, log| {
                acc.push(log);
                acc
            },
        )
    };
    let serial = logs_at(1);
    assert!(
        serial.iter().any(|log| log.contains("\"cascades\":[{")),
        "the workload must actually cascade for the log comparison to bite"
    );
    assert_eq!(
        serial,
        logs_at(2),
        "thread budget 2 changed the cascade logs"
    );
    assert_eq!(
        serial,
        logs_at(4),
        "thread budget 4 changed the cascade logs"
    );
}

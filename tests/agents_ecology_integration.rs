//! Integration: the agent testbed measures its population with the
//! ecology crate's diversity index, and the two stay consistent.

use systems_resilience::agents::budget::BudgetedParams;
use systems_resilience::agents::dynamics::{SimConfig, Simulation};
use systems_resilience::agents::environment::{Environment, EnvironmentKind};
use systems_resilience::agents::experiment::{evaluate_allocation, ShockRegime};
use systems_resilience::core::{seeded_rng, BudgetAllocation, Strategy};
use systems_resilience::ecology::diversity_index;

#[test]
fn population_diversity_stays_within_index_bounds() {
    let mut rng = seeded_rng(4001);
    let params = BudgetedParams::from_allocation(&BudgetAllocation::uniform());
    let env = Environment::random(32, EnvironmentKind::Static, &mut rng);
    let mut sim = Simulation::new(SimConfig::default(), params, env, &mut rng);
    for _ in 0..100 {
        sim.step(&mut rng);
        let stats = sim.stats();
        if stats.size > 0 {
            // G ∈ [1, population size] — the invariant the ecology crate
            // proves for its index must hold on live agent data too.
            assert!(stats.genotype_diversity >= 1.0 - 1e-9);
            assert!(stats.genotype_diversity <= stats.size as f64 + 1e-9);
        }
    }
}

#[test]
fn diversity_budget_actually_raises_measured_diversity() {
    let mut rng = seeded_rng(4002);
    let low_d =
        BudgetedParams::from_allocation(&BudgetAllocation::new(0.9, 0.0, 0.1).expect("valid"));
    let high_d =
        BudgetedParams::from_allocation(&BudgetAllocation::new(0.1, 0.8, 0.1).expect("valid"));
    // Compare the *mean* diversity over the run: adaptation continually
    // pulls lineages back onto the target, so standing diversity is a
    // churn equilibrium, not a final state.
    let run = |params, rng: &mut rand_chacha::ChaCha8Rng| {
        let env = Environment::random(32, EnvironmentKind::Static, rng);
        let mut sim = Simulation::new(SimConfig::default(), params, env, rng);
        let out = sim.run(150, rng);
        out.diversity_series.mean()
    };
    let g_low = run(low_d, &mut rng);
    let g_high = run(high_d, &mut rng);
    assert!(
        g_high > g_low + 0.1,
        "diversity budget must show up in the index: {g_high} vs {g_low}"
    );
}

#[test]
fn index_agrees_with_manual_census() {
    // Cross-check the population's diversity metric against a direct call
    // to the ecology index on the genotype census.
    let mut rng = seeded_rng(4003);
    let params = BudgetedParams::from_allocation(&BudgetAllocation::uniform());
    let env = Environment::random(16, EnvironmentKind::Static, &mut rng);
    let mut sim = Simulation::new(SimConfig::default(), params, env, &mut rng);
    for _ in 0..30 {
        sim.step(&mut rng);
    }
    let stats = sim.stats();
    let mut census = std::collections::HashMap::new();
    for o in sim.population().members() {
        *census.entry(o.genome.to_string()).or_insert(0.0f64) += 1.0;
    }
    let counts: Vec<f64> = census.values().copied().collect();
    let expected = diversity_index(&counts).expect("non-empty population");
    assert!((stats.genotype_diversity - expected).abs() < 1e-9);
}

#[test]
fn regime_dependence_of_the_optimal_strategy() {
    // The headline §4.4 result across crates: redundancy-only wins nothing
    // under drift but survives calm; adaptability-weighted mixes survive
    // drift.
    let redundancy = BudgetAllocation::pure(Strategy::Redundancy);
    let calm = evaluate_allocation(&redundancy, ShockRegime::Calm, 200, 5, 4004);
    let drift = evaluate_allocation(&redundancy, ShockRegime::SteadyDrift, 200, 5, 4004);
    assert_eq!(calm.survival_rate(), 1.0);
    assert_eq!(drift.survival_rate(), 0.0);

    let adaptive = BudgetAllocation::new(0.2, 0.2, 0.6).expect("valid");
    let drift_adaptive = evaluate_allocation(&adaptive, ShockRegime::SteadyDrift, 200, 5, 4004);
    assert!(drift_adaptive.survival_rate() > 0.7);
}

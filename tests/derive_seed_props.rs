//! Property tests for `derive_seed`, the stream-derivation function the
//! parallel runtime hangs its determinism contract on: trial `i` of a
//! batch is seeded with `derive_seed(master, i)`, so collisions between
//! streams (or between experiments' stream bases) would silently correlate
//! Monte Carlo trials.

use std::collections::HashSet;

use proptest::prelude::*;
use systems_resilience::core::derive_seed;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Within a window of consecutive stream indices — the shape every
    /// `ParallelTrials` batch uses — all derived seeds are distinct.
    #[test]
    fn injective_over_contiguous_stream_window(master in any::<u64>(), base in 0u64..u64::MAX - 2048) {
        let mut seen = HashSet::new();
        for stream in base..base + 1024 {
            prop_assert!(
                seen.insert(derive_seed(master, stream)),
                "collision in window at stream {stream}"
            );
        }
    }

    /// Distinct masters keep the same stream window disjoint: two
    /// experiments (or two master seeds) never share a trial stream.
    #[test]
    fn windows_of_distinct_masters_are_disjoint(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let wa: HashSet<u64> = (0..256).map(|s| derive_seed(a, s)).collect();
        for s in 0..256 {
            prop_assert!(!wa.contains(&derive_seed(b, s)));
        }
    }

    /// The function is not symmetric in (master, stream) — swapping the
    /// roles must not reproduce the same seed, or a master colliding with
    /// a stream index would alias two unrelated batches.
    #[test]
    fn no_master_stream_symmetry(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        prop_assert_ne!(derive_seed(a, b), derive_seed(b, a));
    }

    /// Independence smoke: adjacent streams differ in roughly half their
    /// bits (SplitMix64-style avalanche), so neighbouring trials do not
    /// start from correlated states.
    #[test]
    fn adjacent_streams_avalanche(master in any::<u64>(), stream in 0u64..u64::MAX - 1) {
        let d = (derive_seed(master, stream) ^ derive_seed(master, stream + 1)).count_ones();
        prop_assert!((8..=56).contains(&d), "hamming distance {d} out of range");
    }

    /// Pure function: the same inputs always produce the same seed.
    #[test]
    fn deterministic(master in any::<u64>(), stream in any::<u64>()) {
        prop_assert_eq!(derive_seed(master, stream), derive_seed(master, stream));
    }
}

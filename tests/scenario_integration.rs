//! Integration: scripted scenarios drive the full shock → adapt → score
//! loop across environments, and the BoK catalogue stays in sync with the
//! crates that implement it.

use std::sync::Arc;

use systems_resilience::core::{seeded_rng, AllOnes, AtLeastOnes, Catalogue, ShockKind};
use systems_resilience::dcsp::repair::GreedyRepair;
use systems_resilience::dcsp::{DcspSystem, Scenario};

#[test]
fn disaster_timeline_scores_sensibly() {
    // A timeline inspired by the paper's §1: anticipated small shocks the
    // design absorbs, then an X-event outside the envelope, then recovery
    // under a *changed* environment (the "new configuration that is also
    // acceptable").
    let mut rng = seeded_rng(11_000);
    let mut sys = DcspSystem::fit_under(Arc::new(AllOnes::new(24)));
    let report = Scenario::new()
        .idle(5)
        // Routine faults, routinely absorbed.
        .shock(ShockKind::BitDamage { flips: 2 })
        .repair(24)
        .idle(5)
        // The X-event: massive damage AND the environment relaxes to a
        // survivable-but-different constraint (post-disaster normal).
        .shock(ShockKind::BitDamage { flips: 12 })
        .shift_environment(Arc::new(AtLeastOnes::new(24, 20)))
        .repair(24)
        .idle(5)
        .run(&mut sys, &GreedyRepair::new(), &mut rng);

    assert!(report.ended_fit, "generalized recovery must succeed");
    assert_eq!(report.shocks, 2);
    // Under the relaxed constraint only 20 of 24 bits are needed: the
    // X-event (12 damaged) required ~8 repairs, plus 2 for the first shock.
    assert!(report.flips_spent >= 9 && report.flips_spent <= 15);
    assert!(report.total_loss > 0.0);
    let tri = report.first_triangle.expect("quality dipped");
    assert!(tri.recovered);
}

#[test]
fn tighter_budgets_leave_larger_triangles() {
    // The same disaster with ever-better repair budgets: Bruneau loss
    // must fall monotonically.
    let mut losses = Vec::new();
    for budget in [2usize, 6, 24] {
        let mut rng = seeded_rng(11_001);
        let mut sys = DcspSystem::fit_under(Arc::new(AllOnes::new(24)));
        let report = Scenario::new()
            .shock(ShockKind::BitDamage { flips: 8 })
            .repair(budget)
            .idle(10)
            .run(&mut sys, &GreedyRepair::new(), &mut rng);
        losses.push(report.total_loss);
    }
    assert!(
        losses[0] > losses[1] && losses[1] > losses[2],
        "losses {losses:?}"
    );
}

#[test]
fn bok_catalogue_matches_workspace_structure() {
    // Every implementation pointer in the catalogue names a crate that
    // actually exists in this workspace.
    let crates = [
        "resilience-core",
        "resilience-dcsp",
        "resilience-ecology",
        "resilience-agents",
        "resilience-networks",
        "resilience-stats",
        "resilience-engineering",
    ];
    for entry in Catalogue::paper().entries() {
        assert!(
            crates.iter().any(|c| entry.implemented_by.starts_with(c)),
            "unknown crate in {entry:?}"
        );
    }
}

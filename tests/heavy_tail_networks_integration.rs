//! Integration: the network substrates really produce the heavy-tailed
//! statistics the stats crate is built to detect.

use systems_resilience::core::seeded_rng;
use systems_resilience::networks::generators::{barabasi_albert, erdos_renyi};
use systems_resilience::networks::sandpile::{InterventionPolicy, Sandpile};
use systems_resilience::stats::descriptive::log_histogram;
use systems_resilience::stats::tail::{hill_estimator, loglog_slope};

#[test]
fn ba_degree_tail_index_is_heavy_er_is_not() {
    let mut rng = seeded_rng(3001);
    let ba = barabasi_albert(4_000, 2, &mut rng);
    let er = erdos_renyi(4_000, 4.0 / 4_000.0, &mut rng);
    let ba_deg: Vec<f64> = ba.degrees().iter().map(|&d| d as f64).collect();
    let er_deg: Vec<f64> = er.degrees().iter().map(|&d| d as f64).collect();
    let hill_ba = hill_estimator(&ba_deg, 400).expect("enough data");
    let hill_er = hill_estimator(&er_deg, 400).expect("enough data");
    // BA's theoretical degree exponent is 3 (Hill on P(K>k) ≈ 2);
    // anything ≲ 4 reads as heavy. ER's Poisson tail reads much thinner.
    assert!(hill_ba < 4.0, "BA hill {hill_ba}");
    assert!(hill_er > 1.5 * hill_ba, "ER {hill_er} vs BA {hill_ba}");
}

#[test]
fn sandpile_avalanches_read_as_power_law_to_the_estimators() {
    let mut rng = seeded_rng(3002);
    let mut pile = Sandpile::new(36, 36);
    pile.warm_up(60_000, &mut rng);
    let report = pile.run(25_000, InterventionPolicy::None, &mut rng);
    let sizes: Vec<f64> = report
        .avalanche_sizes
        .iter()
        .filter(|&&s| s > 0)
        .map(|&s| s as f64)
        .collect();
    assert!(sizes.len() > 5_000);
    // Log-log CCDF slope is shallow (power-law-like).
    let slope = loglog_slope(&sizes, 0.2).expect("fit succeeds");
    assert!((-2.5..-0.3).contains(&slope), "slope {slope}");
    // Log-binned histogram spans ≥ 2 decades with mass in the tail bins.
    let (centers, counts) = log_histogram(&sizes, 10);
    assert!(centers.last().unwrap() / centers[0] > 50.0);
    let tail_mass: usize = counts[counts.len() / 2..].iter().sum();
    assert!(tail_mass > 0, "tail bins must be populated");
}

#[test]
fn intervention_shortens_the_measured_tail() {
    let mut rng = seeded_rng(3003);
    let mut base = Sandpile::new(30, 30);
    base.warm_up(50_000, &mut rng);
    let baseline = base.run(15_000, InterventionPolicy::None, &mut rng);

    let mut managed = Sandpile::new(30, 30);
    managed.warm_up(50_000, &mut rng);
    let relieved = managed.run(
        15_000,
        InterventionPolicy::TargetedRelief {
            period: 5,
            budget: 40,
        },
        &mut rng,
    );
    assert!(relieved.tail_fraction(100) < baseline.tail_fraction(100));
    assert!(relieved.max_avalanche() <= baseline.max_avalanche());
}

//! Property suite for the anticipation layer (ISSUE: early-warning
//! detection and normal/emergency mode switching).
//!
//! The contracts pinned here:
//!
//! * anticipatory serving is a pure function of `(trace seed, chaos
//!   plan)`: the full service report — outcomes, warning scores, mode
//!   transitions — is byte-identical across thread budgets 1, 2, and 4,
//!   with and without a chaos plan;
//! * the detector's O(1) sliding-window indicators (Welford variance +
//!   incremental lag-1 autocorrelation) agree with a naive O(n·w)
//!   recomputation on arbitrary streams and window sizes;
//! * the canonical no-fault workload never drives the default mode
//!   controller into Emergency, for any trace seed: the emergency
//!   posture is reserved for genuine trouble, and a quiet service never
//!   pays its price.

use proptest::prelude::*;
use systems_resilience::anticipate::{
    naive_window_indicators, AnticipationConfig, EarlyWarning, EarlyWarningConfig, OperatingMode,
};
use systems_resilience::core::faults::{FaultConfig, FaultPlan};
use systems_resilience::service::{
    RequestTrace, ServiceConfig, ServiceEngine, ServiceReport, TraceSpec,
};

/// Serve the canonical workload with the default anticipation layer.
fn serve_anticipatory(trace_seed: u64, plan: &FaultPlan, threads: usize) -> ServiceReport {
    let trace = RequestTrace::generate(&TraceSpec::new(600, trace_seed));
    ServiceEngine::new(ServiceConfig {
        threads,
        anticipation: Some(AnticipationConfig::default()),
        ..ServiceConfig::default()
    })
    .serve(&trace, plan)
}

/// Replay the detector's own detrend chain over the sample prefix, then
/// apply the naive O(w) indicator reference to the trailing window.
fn naive_indicators(samples: &[f64], alpha: f64, window: usize) -> (f64, f64) {
    let mut trend = 0.0;
    let mut residuals = Vec::new();
    for (i, &x) in samples.iter().enumerate() {
        if i == 0 {
            trend = x;
            residuals.push(0.0);
        } else {
            residuals.push(x - trend);
            trend += alpha * (x - trend);
        }
    }
    let tail = &residuals[residuals.len().saturating_sub(window)..];
    naive_window_indicators(tail)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The anticipatory serve path runs entirely on the logical tick
    /// clock: the complete report is byte-identical at thread budgets
    /// 1, 2, and 4 — quiet or under a seeded chaos plan.
    #[test]
    fn anticipatory_serving_is_thread_invariant(
        trace_seed in any::<u64>(),
        chaos_seed in any::<u64>(),
        with_chaos in any::<bool>(),
    ) {
        let plan = if with_chaos {
            FaultConfig::parse(&format!(
                "seed={chaos_seed},panic=0.1,delay=0.05,poison=0.1,permanent=0.05"
            ))
            .expect("static chaos spec parses")
            .plan
        } else {
            FaultPlan::none()
        };
        let baseline = serve_anticipatory(trace_seed, &plan, 1);
        let json1 = serde_json::to_string(&baseline).expect("reports serialize");
        for threads in [2usize, 4] {
            let report = serve_anticipatory(trace_seed, &plan, threads);
            let json = serde_json::to_string(&report).expect("reports serialize");
            prop_assert!(
                json1 == json,
                "report depends on the thread budget at threads={}",
                threads
            );
        }
        // The warning-score stream is per-tick and must cover the run.
        prop_assert_eq!(baseline.warning_scores.len() as u64, baseline.ticks);
    }

    /// The incremental window indicators match a from-scratch
    /// recomputation at every step, for arbitrary streams and window
    /// sizes — the O(1) sliding Welford + cross-sum updates never
    /// drift from the quantity they claim to maintain.
    #[test]
    fn incremental_indicators_agree_with_naive_reference(
        samples in proptest::collection::vec(0.0f64..1.0, 8..120),
        window in 4usize..40,
    ) {
        let config = EarlyWarningConfig {
            window,
            ..EarlyWarningConfig::default()
        };
        let alpha = config.detrend_alpha;
        let mut detector = EarlyWarning::new(config);
        for (i, &x) in samples.iter().enumerate() {
            let snap = detector.observe(x);
            let (var, ac) = naive_indicators(&samples[..=i], alpha, window);
            prop_assert!(
                (snap.variance - var).abs() <= 1e-9 * var.max(1.0),
                "sample {}: incremental variance {} vs naive {}",
                i, snap.variance, var
            );
            prop_assert!(
                (snap.autocorr - ac).abs() <= 1e-7,
                "sample {}: incremental autocorr {} vs naive {}",
                i, snap.autocorr, ac
            );
        }
    }

    /// On the canonical workload with no fault plan, the default
    /// controller never escalates to Emergency for any trace seed —
    /// surge-driven queue pressure alone stays below the emergency
    /// threshold, so the brownout floor and deadline squeeze of the
    /// emergency posture are never paid in a healthy system.
    #[test]
    fn no_fault_canonical_trace_never_enters_emergency(trace_seed in any::<u64>()) {
        let report = serve_anticipatory(trace_seed, &FaultPlan::none(), 1);
        prop_assert!(
            report.emergency_ticks == 0,
            "quiet run spent ticks in Emergency (transitions: {:?})",
            report.mode_transitions
        );
        prop_assert!(
            report
                .mode_transitions
                .iter()
                .all(|t| t.to != OperatingMode::Emergency),
            "quiet run transitioned into Emergency: {:?}",
            report.mode_transitions
        );
        // And the quiet run must still serve everything it admits.
        prop_assert_eq!(report.failed(), 0);
    }
}

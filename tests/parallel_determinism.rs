//! The determinism contract of the parallel runtime: every experiment
//! table is a pure function of the master seed, bit-identical for any
//! thread budget. Each experiment is checked by comparing the full
//! serialized table produced with `threads = 1` (the serial path)
//! against `threads = 4` (the work-distributing scoped-thread path).
//!
//! One `#[test]` per experiment keeps failures attributable and lets the
//! harness run them concurrently; `registry_is_fully_covered` guarantees
//! a newly registered experiment cannot dodge the check.

use resilience_bench::experiments::registry;
use systems_resilience::core::{ParallelTrials, RunContext};

/// Run one experiment at 1 and 4 threads and demand identical JSON.
fn assert_thread_invariant(id: &str) {
    let runner = registry()
        .into_iter()
        .find(|(rid, _)| *rid == id)
        .map(|(_, r)| r)
        .unwrap_or_else(|| panic!("{id} not in registry"));
    let serial = runner(&RunContext::new(42));
    let parallel = runner(&RunContext::with_threads(42, 4));
    let s = serde_json::to_string(&serial).expect("tables serialize");
    let p = serde_json::to_string(&parallel).expect("tables serialize");
    assert_eq!(s, p, "{id}: table must not depend on the thread budget");
    assert_eq!(serial, parallel, "{id}: structural equality must also hold");
}

/// The experiments this suite covers — must match the registry exactly.
const ALL_IDS: [&str; 26] = [
    "e1",
    "e2",
    "e3",
    "e4",
    "e5",
    "e6",
    "e7",
    "e8",
    "e9",
    "e10",
    "e11",
    "e12",
    "e13",
    "e14",
    "e15",
    "e16",
    "e17",
    "e18",
    "e19",
    "e20",
    "e21",
    "e22",
    "cluster_attack",
    "cluster_cascade",
    "cluster_burn",
    "anticipate_modes",
];

#[test]
fn registry_is_fully_covered() {
    let ids: Vec<String> = registry()
        .into_iter()
        .map(|(id, _)| id.to_string())
        .collect();
    assert_eq!(
        ids,
        ALL_IDS.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        "registry changed — update ALL_IDS and add a matching test below"
    );
}

macro_rules! thread_invariance_tests {
    ($($name:ident => $id:literal),+ $(,)?) => {
        $(
            #[test]
            fn $name() {
                assert_thread_invariant($id);
            }
        )+
    };
}

thread_invariance_tests! {
    e01_thread_invariant => "e1",
    e02_thread_invariant => "e2",
    e03_thread_invariant => "e3",
    e04_thread_invariant => "e4",
    e05_thread_invariant => "e5",
    e06_thread_invariant => "e6",
    e07_thread_invariant => "e7",
    e08_thread_invariant => "e8",
    e09_thread_invariant => "e9",
    e10_thread_invariant => "e10",
    e11_thread_invariant => "e11",
    e12_thread_invariant => "e12",
    e13_thread_invariant => "e13",
    e14_thread_invariant => "e14",
    e15_thread_invariant => "e15",
    e16_thread_invariant => "e16",
    e17_thread_invariant => "e17",
    e18_thread_invariant => "e18",
    e19_thread_invariant => "e19",
    e20_thread_invariant => "e20",
    e21_thread_invariant => "e21",
    e22_thread_invariant => "e22",
    cluster_attack_thread_invariant => "cluster_attack",
    cluster_cascade_thread_invariant => "cluster_cascade",
    cluster_burn_thread_invariant => "cluster_burn",
    anticipate_modes_thread_invariant => "anticipate_modes",
}

// ---------------------------------------------------------------------
// ParallelTrials edge cases: trial counts around the thread budget.
// ---------------------------------------------------------------------

/// Sum of per-trial values must be identical no matter how trials are
/// distributed over workers — including the degenerate counts.
fn sum_with_threads(n_trials: u64, threads: usize) -> (u64, Vec<u64>) {
    let pool = ParallelTrials::new(threads);
    let per_trial = pool.run(
        n_trials,
        917,
        |idx, rng| {
            use rand::Rng;
            // Mix the trial index with a draw so both the schedule and
            // the stream derivation are exercised.
            idx.wrapping_mul(1_000_003) ^ rng.gen::<u64>()
        },
        Vec::new(),
        |mut acc, v| {
            acc.push(v);
            acc
        },
    );
    (
        per_trial.iter().copied().fold(0, u64::wrapping_add),
        per_trial,
    )
}

#[test]
fn parallel_trials_edge_counts_match_serial() {
    let threads = 4;
    for n in [0, 1, threads as u64 - 1, 10 * threads as u64] {
        let (serial_sum, serial) = sum_with_threads(n, 1);
        let (par_sum, par) = sum_with_threads(n, threads);
        assert_eq!(serial.len() as u64, n);
        assert_eq!(serial, par, "n_trials = {n}: order must be trial order");
        assert_eq!(serial_sum, par_sum, "n_trials = {n}");
    }
}

#[test]
fn parallel_trials_oversubscribed_thread_budget() {
    // More workers than trials must still produce the serial answer.
    let (serial_sum, _) = sum_with_threads(3, 1);
    let (par_sum, _) = sum_with_threads(3, 16);
    assert_eq!(serial_sum, par_sum);
}

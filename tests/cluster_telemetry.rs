//! Cross-layer determinism contract for the cluster simulator's
//! telemetry: the expositions derived from a fleet of cluster runs —
//! merged event-trace JSON, Prometheus text, metrics JSON — are
//! byte-identical for any thread budget, with and without a chaos
//! fault plan, and the per-run deficit attribution reconciles with the
//! run's own Bruneau loss.

use rand::Rng;
use systems_resilience::cluster::{
    record_cluster_events, record_cluster_metrics, AttackSpec, ClusterConfig, ClusterEngine,
    ClusterReport, TopologyKind,
};
use systems_resilience::core::{FaultPlan, RunContext};
use systems_resilience::networks::AttackStrategy;
use systems_resilience::telemetry::{MetricsRegistry, Tracer};

fn fleet_engine() -> ClusterEngine {
    let mut config = ClusterConfig::new(1_500, TopologyKind::ScaleFree { m: 3 });
    config.ticks = 25;
    config.headroom = 0.8;
    config.surge_drops = 30;
    config.surge_grain = 0.5;
    ClusterEngine::new(config, 0x7E1E)
}

fn cluster_chaos() -> FaultPlan {
    FaultPlan {
        seed: 23,
        panic_rate: 0.004,
        delay_rate: 0.002,
        poison_rate: 0.004,
        permanent_rate: 0.001,
        ..FaultPlan::none()
    }
}

/// Run a small fleet of cluster trials on `threads` threads and derive
/// every exposition from the pooled reports: one tracer and one
/// metrics registry folding all runs, plus the serialized reports
/// themselves.
fn cluster_expositions(threads: usize, plan: &FaultPlan) -> [String; 4] {
    let engine = fleet_engine();
    let attack = AttackSpec {
        tick: 6,
        strategy: AttackStrategy::TargetedByDegree,
        fraction: 0.04,
        recoverable: true,
    };
    let ctx = RunContext::with_threads(41, threads);
    let reports: Vec<ClusterReport> = ctx.run_trials(
        5,
        ctx.derive(2),
        |_trial, rng| {
            let run_seed: u64 = rng.gen();
            engine.run(run_seed, Some(&attack), plan)
        },
        Vec::new(),
        |mut acc, report| {
            acc.push(report);
            acc
        },
    );

    let mut tracer = Tracer::new();
    let mut registry = MetricsRegistry::new();
    for report in &reports {
        // Attribution must reconcile with the run's own Bruneau loss —
        // the exposition is only trustworthy if the per-cause split
        // sums back to the quality deficit it explains.
        let r = report.resilience_loss();
        assert_eq!(
            report.attribution.total, r,
            "attribution total drifted from R"
        );
        assert!(
            (report.attribution.components_sum() - r).abs() <= 1e-9 * r.max(1.0),
            "per-cause components do not sum to R: {} vs {r}",
            report.attribution.components_sum()
        );
        record_cluster_events(&mut tracer, report);
        record_cluster_metrics(&mut registry, report);
    }
    let logs = serde_json::to_string(&reports).expect("reports serialize");
    [
        tracer.to_json(),
        registry.to_prometheus(),
        registry.to_json(),
        logs,
    ]
}

#[test]
fn cluster_expositions_are_thread_invariant_without_chaos() {
    let quiet = FaultPlan::none();
    let serial = cluster_expositions(1, &quiet);
    assert!(
        serial[0].contains("ClusterCascade"),
        "the fleet must actually record cascade events"
    );
    assert!(
        serial[1].contains("cluster_cascades_total"),
        "the metrics exposition must carry the cluster family"
    );
    assert_eq!(serial, cluster_expositions(2, &quiet), "2 threads diverged");
    assert_eq!(serial, cluster_expositions(4, &quiet), "4 threads diverged");
}

#[test]
fn cluster_expositions_are_thread_invariant_under_chaos() {
    let chaos = cluster_chaos();
    let serial = cluster_expositions(1, &chaos);
    let quiet = cluster_expositions(1, &FaultPlan::none());
    assert_ne!(
        serial, quiet,
        "the chaos plan must actually perturb the fleet for this test to bite"
    );
    assert_eq!(serial, cluster_expositions(2, &chaos), "2 threads diverged");
    assert_eq!(serial, cluster_expositions(4, &chaos), "4 threads diverged");
}

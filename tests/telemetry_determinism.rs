//! Workspace-level determinism contract of the telemetry spine: every
//! exposition — merged event trace JSON, Prometheus text, metrics JSON —
//! is byte-identical for any `--threads` budget, with and without chaos,
//! across all three instrumented engines (supervised runtime, DCSP
//! verifier, serving layer); and the live deficit attribution always
//! reconciles with the engine's own Bruneau `R`.

use proptest::prelude::*;
use rand::Rng;
use systems_resilience::core::{FaultConfig, FaultPlan, RunContext, Supervision};
use systems_resilience::dcsp::recoverability::is_k_recoverable_exhaustive_parallel_stats;
use systems_resilience::dcsp::repair::GreedyRepair;
use systems_resilience::dcsp::{record_maintainability, record_verification};
use systems_resilience::service::{RequestTrace, ServiceConfig, ServiceEngine, TraceSpec};
use systems_resilience::telemetry::{
    record_run_events, record_run_metrics, trajectory_of_run, MetricsRegistry, Telemetry, Tracer,
};

fn service_chaos() -> FaultPlan {
    FaultPlan {
        seed: 11,
        panic_rate: 0.10,
        delay_rate: 0.05,
        poison_rate: 0.10,
        permanent_rate: 0.05,
        ..FaultPlan::none()
    }
}

/// All three deterministic expositions of one traced serve run.
fn serve_expositions(threads: usize, trace: &RequestTrace, plan: &FaultPlan) -> [String; 3] {
    let engine = ServiceEngine::new(ServiceConfig {
        threads,
        ..ServiceConfig::default()
    });
    let mut tel = Telemetry::new(1.0);
    let report = engine.serve_traced(trace, plan, &mut tel);
    let attr = tel.trajectory.attribution();
    assert_eq!(
        attr.total,
        report.resilience_loss(),
        "attributed deficit must equal the report's Bruneau R"
    );
    [
        tel.tracer.to_json(),
        tel.metrics.to_prometheus(),
        tel.metrics.to_json(),
    ]
}

#[test]
fn serve_expositions_are_byte_identical_across_thread_budgets() {
    let trace = RequestTrace::generate(&TraceSpec::new(400, 42));
    for plan in [FaultPlan::none(), service_chaos()] {
        let base = serve_expositions(1, &trace, &plan);
        for threads in [2usize, 4] {
            assert_eq!(
                base,
                serve_expositions(threads, &trace, &plan),
                "threads={threads}"
            );
        }
    }
}

/// All expositions derivable from one supervised chaos run.
fn runtime_expositions(threads: usize) -> [String; 2] {
    let chaos = FaultConfig::parse("seed=7,panic=0.05,poison=0.05,times=2,retries=3,backoff_ms=0")
        .expect("canned chaos spec parses");
    let ctx =
        RunContext::with_threads(0, threads).supervised(Supervision::new("telemetry-test", chaos));
    let folded = ctx.run_trials(
        2_000u64,
        17,
        |idx, rng| idx ^ rng.gen::<u64>(),
        0u64,
        |acc, x| acc ^ x,
    );
    let report = ctx.run_report().expect("supervised context reports");
    let obs = trajectory_of_run(&report);
    assert_eq!(
        obs.quality(),
        &report.health,
        "observed trajectory must be bit-identical to the report's"
    );
    let attr = obs.attribution();
    assert_eq!(attr.total, report.resilience_loss());
    let err = (attr.components_sum() - attr.total).abs();
    assert!(err <= 1e-9 * attr.total.max(1.0));
    let mut tracer = Tracer::new();
    record_run_events(&mut tracer, &report);
    let mut registry = MetricsRegistry::new();
    record_run_metrics(&mut registry, &report);
    // The fold itself is part of the contract: instrumentation must not
    // perturb the deterministic result.
    assert_eq!(
        folded,
        {
            let bare = RunContext::with_threads(0, threads);
            bare.run_trials(
                2_000u64,
                17,
                |idx, rng| idx ^ rng.gen::<u64>(),
                0u64,
                |acc, x| acc ^ x,
            )
        },
        "recoverable chaos must reproduce the bare fold"
    );
    [tracer.to_json(), registry.to_prometheus()]
}

#[test]
fn runtime_trace_is_byte_identical_across_thread_budgets() {
    let base = runtime_expositions(1);
    for threads in [2usize, 4] {
        assert_eq!(base, runtime_expositions(threads), "threads={threads}");
    }
}

/// Trace + Prometheus exposition of one parallel recoverability check.
fn dcsp_expositions(threads: usize) -> [String; 2] {
    let start = systems_resilience::core::Config::ones(14);
    let env = systems_resilience::core::AtLeastOnes::new(14, 9);
    let ctx = RunContext::with_threads(0, threads);
    let (report, stats) =
        is_k_recoverable_exhaustive_parallel_stats(&start, &env, &GreedyRepair::new(), 3, 5, &ctx);
    let mut tracer = Tracer::new();
    let mut registry = MetricsRegistry::new();
    record_verification(&mut tracer, &mut registry, &report, &stats);
    let maint = systems_resilience::dcsp::maintainability::analyze_bit_dcsp(
        8,
        &systems_resilience::core::AtLeastOnes::new(8, 5),
    );
    record_maintainability(&mut tracer, &mut registry, &maint);
    [tracer.to_json(), registry.to_prometheus()]
}

#[test]
fn dcsp_expositions_are_byte_identical_across_thread_budgets() {
    let base = dcsp_expositions(1);
    for threads in [2usize, 4] {
        assert_eq!(base, dcsp_expositions(threads), "threads={threads}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For arbitrary trace seeds and fault rates, the serve-layer trace
    /// is byte-identical between 1 and 4 threads and the attribution
    /// reconciles componentwise with the report's R.
    #[test]
    fn serve_telemetry_is_thread_invariant_for_any_seed(
        trace_seed in any::<u64>(),
        plan_seed in any::<u64>(),
        panic_rate in 0.0f64..0.2,
        poison_rate in 0.0f64..0.2,
        permanent_rate in 0.0f64..0.1,
    ) {
        let trace = RequestTrace::generate(&TraceSpec::new(150, trace_seed));
        let plan = FaultPlan {
            seed: plan_seed,
            panic_rate,
            poison_rate,
            permanent_rate,
            ..FaultPlan::none()
        };
        let engine1 = ServiceEngine::new(ServiceConfig { threads: 1, ..ServiceConfig::default() });
        let engine4 = ServiceEngine::new(ServiceConfig { threads: 4, ..ServiceConfig::default() });
        let mut tel1 = Telemetry::new(1.0);
        let mut tel4 = Telemetry::new(1.0);
        let report = engine1.serve_traced(&trace, &plan, &mut tel1);
        let report4 = engine4.serve_traced(&trace, &plan, &mut tel4);
        prop_assert_eq!(&report, &report4);
        prop_assert_eq!(tel1.tracer.to_json(), tel4.tracer.to_json());
        prop_assert_eq!(tel1.metrics.to_prometheus(), tel4.metrics.to_prometheus());
        let attr = tel1.trajectory.attribution();
        prop_assert_eq!(attr.total, report.resilience_loss());
        let err = (attr.components_sum() - attr.total).abs();
        prop_assert!(err <= 1e-9 * attr.total.max(1.0),
            "attribution components {} must sum to total {}", attr.components_sum(), attr.total);
    }
}

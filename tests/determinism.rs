//! Every experiment and simulation must be an exact function of its seed —
//! the reproducibility contract of the whole repository.

use systems_resilience::agents::experiment::{evaluate_allocation, ShockRegime};
use systems_resilience::core::{seeded_rng, BudgetAllocation, Config};
use systems_resilience::networks::generators::barabasi_albert;
use systems_resilience::stats::distributions::{Pareto, Sampler};

#[test]
fn config_sampling_is_seed_deterministic() {
    let a = Config::random(256, &mut seeded_rng(99));
    let b = Config::random(256, &mut seeded_rng(99));
    assert_eq!(a, b);
    let c = Config::random(256, &mut seeded_rng(100));
    assert_ne!(a, c);
}

#[test]
fn graph_generation_is_seed_deterministic() {
    let g1 = barabasi_albert(500, 2, &mut seeded_rng(7));
    let g2 = barabasi_albert(500, 2, &mut seeded_rng(7));
    assert_eq!(g1, g2);
}

#[test]
fn samplers_are_seed_deterministic() {
    let p = Pareto::new(1.0, 1.5).expect("valid");
    let mut r1 = seeded_rng(5);
    let mut r2 = seeded_rng(5);
    for _ in 0..100 {
        assert_eq!(p.sample(&mut r1), p.sample(&mut r2));
    }
}

#[test]
fn agent_experiments_are_seed_deterministic() {
    let a = evaluate_allocation(
        &BudgetAllocation::uniform(),
        ShockRegime::FrequentShocks,
        120,
        4,
        123,
    );
    let b = evaluate_allocation(
        &BudgetAllocation::uniform(),
        ShockRegime::FrequentShocks,
        120,
        4,
        123,
    );
    assert_eq!(a, b);
}

#[test]
fn experiment_tables_are_seed_deterministic() {
    use resilience_bench::experiments::registry;
    use systems_resilience::core::RunContext;
    // A representative cheap subset (the full set is exercised by the
    // binary and the bench crate's own tests).
    for id in ["e1", "e2", "e4"] {
        let runner = registry()
            .into_iter()
            .find(|(rid, _)| *rid == id)
            .map(|(_, r)| r)
            .expect("registered");
        let t1 = runner(&RunContext::new(42));
        let t2 = runner(&RunContext::new(42));
        assert_eq!(t1, t2, "{id} must be reproducible");
    }
}

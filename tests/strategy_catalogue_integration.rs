//! Integration: the three passive strategies, each exercised through two
//! different subsystems, give consistent qualitative answers.

use systems_resilience::core::seeded_rng;
use systems_resilience::ecology::genome::RedundantGenome;
use systems_resilience::engineering::interop::InteropModel;
use systems_resilience::engineering::nversion::{DesignStrategy, NVersionController};
use systems_resilience::engineering::storage::StorageArray;
use systems_resilience::engineering::supply_chain::SupplyChain;

/// Redundancy: biological (gene knockouts) and engineered (parity disks)
/// redundancy curves are both monotone in the redundancy investment.
#[test]
fn redundancy_is_monotone_in_both_domains() {
    // Biology: more redundant genes ⇒ higher knockout viability.
    let mut previous = 0.0;
    for redundant in [0usize, 100, 500, 900] {
        let genome = RedundantGenome::new(1_000, 1_000 - redundant);
        let v = genome.multi_knockout_viability(3);
        assert!(v >= previous);
        previous = v;
    }
    // Engineering: more parity ⇒ higher survival.
    let mut rng = seeded_rng(2001);
    let mut previous = 0.0;
    for parity in 0..=2usize {
        let out = StorageArray::new(6, parity, 0.002, 2).run_trials(200, 300, &mut rng);
        assert!(out.survival_probability() >= previous - 0.02);
        previous = out.survival_probability();
    }
}

/// Redundancy: "universal resources" (money) behave like spare parts —
/// the runway formula and the storage snapshot formula both price spare
/// capacity against outage depth.
#[test]
fn universal_resource_reserves_buy_outage_tolerance() {
    let firm = SupplyChain::new(10.0, 5.0, 40.0);
    let runway = firm.runway_periods(); // 8 periods of zero revenue
    assert!(firm.simulate_outage(0, runway, 0).is_some());
    assert!(firm.simulate_outage(0, runway + 1, 0).is_none());
    // Interoperability is redundancy too (§3.1.3): n=3 silos vs interop.
    let silo = InteropModel::new(3, 0.2, false, 3).analytic_availability();
    let pooled = InteropModel::new(3, 0.2, true, 3).analytic_availability();
    assert!(pooled > silo);
    // The pooled system is exactly a 1-of-3 redundant system.
    assert!((pooled - (1.0 - 0.2f64.powi(3))).abs() < 1e-12);
}

/// Diversity: design diversity (777) and ecosystem diversity protect
/// against the same failure mode — a single common cause taking out every
/// redundant copy at once.
#[test]
fn diversity_defeats_common_modes_redundancy_does_not() {
    let flaw = 0.02;
    // Engineering: identical vs diverse designs.
    let identical = NVersionController::new(3, DesignStrategy::Identical, flaw, 0.001)
        .analytic_failure_probability();
    let diverse = NVersionController::new(3, DesignStrategy::Diverse, flaw, 0.001)
        .analytic_failure_probability();
    assert!(diverse < identical);
    // Identical redundancy saturates at the flaw rate no matter how many
    // copies are added.
    let identical7 = NVersionController::new(7, DesignStrategy::Identical, flaw, 0.001)
        .analytic_failure_probability();
    assert!(identical7 >= flaw * 0.99);
    // Ecology: a monoculture is the biological "identical design".
    use systems_resilience::ecology::extinction::{Community, ExtinctionExperiment};
    let mut rng = seeded_rng(2002);
    let experiment = ExtinctionExperiment {
        initial_optimum: 0.0,
        tolerance: 0.5,
        shock_scale: 2.0,
    };
    let mono = experiment.run(&Community::monoculture(0.0, 10.0), 2_000, &mut rng);
    let varied = experiment.run(&Community::spread(10, 0.0, 2.0, 10.0), 2_000, &mut rng);
    assert!(varied.survival_probability() > mono.survival_probability());
}

/// Adaptability: the MAPE loop (engineering) and the agent testbed
/// (ecology) agree that survival under drift is a race between adaptation
/// and change rates.
#[test]
fn adaptability_is_a_race_in_both_domains() {
    use systems_resilience::agents::budget::BudgetedParams;
    use systems_resilience::agents::dynamics::{SimConfig, Simulation};
    use systems_resilience::agents::environment::{Environment, EnvironmentKind};
    use systems_resilience::engineering::mape::MapeLoop;

    let mut rng = seeded_rng(2003);
    // Engineering side.
    let slow = MapeLoop::new(64, 1, 0.0).track_drift(1_000, 3, &mut rng);
    let fast = MapeLoop::new(64, 8, 0.0).track_drift(1_000, 3, &mut rng);
    assert!(fast.mean_error() < slow.mean_error());

    // Agent side: same race, measured as survival.
    let drift = EnvironmentKind::Drift { bits_per_step: 2 };
    let sluggish = BudgetedParams {
        initial_resource: 6.0,
        mutation_rate: 0.002,
        initial_spread: 0.0,
        adaptation_rate: 0,
    };
    let agile = BudgetedParams {
        adaptation_rate: 4,
        ..sluggish
    };
    let env = Environment::random(32, drift.clone(), &mut rng);
    let dead = Simulation::new(SimConfig::default(), sluggish, env, &mut rng).run(400, &mut rng);
    let env = Environment::random(32, drift, &mut rng);
    let alive = Simulation::new(SimConfig::default(), agile, env, &mut rng).run(400, &mut rng);
    assert!(dead.extinct);
    assert!(!alive.extinct);
}

//! Property-based equivalence of the high-throughput verification engine
//! against the retained reference implementations.
//!
//! The engine (rank-partitioned, memoized exhaustive recoverability; CSR +
//! bitset-BFS + Jacobi maintainability) must produce *identical* reports —
//! including the counterexample and the policy — to the straightforward
//! sequential checkers it replaced, on arbitrary inputs, for any thread
//! count.

use proptest::prelude::*;

use systems_resilience::core::{seeded_rng, AtLeastOnes, Config, RunContext};
use systems_resilience::dcsp::maintainability::{
    analyze_bit_dcsp, analyze_bit_dcsp_adversarial, TransitionSystem,
};
use systems_resilience::dcsp::recoverability::{
    is_k_recoverable_exhaustive, is_k_recoverable_exhaustive_parallel, recoverability_reference,
};
use systems_resilience::dcsp::repair::{BfsRepair, GreedyRepair, RepairStrategy};

use rand::Rng;

/// Random transition system with `n` states: sparse normal set plus random
/// controllable/exogenous edges (self-loops and duplicates included — the
/// engine must tolerate both).
fn random_system(seed: u64, n: usize, edge_factor: usize) -> TransitionSystem {
    let mut rng = seeded_rng(seed);
    let mut ts = TransitionSystem::new(n);
    for s in 0..n {
        if rng.gen_bool(0.25) {
            ts.mark_normal(s);
        }
    }
    for _ in 0..n * edge_factor {
        ts.add_controllable(rng.gen_range(0..n), rng.gen_range(0..n));
        if rng.gen_bool(0.6) {
            ts.add_exogenous(rng.gen_range(0..n), rng.gen_range(0..n));
        }
    }
    ts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exhaustive k-recoverability: engine and rank-partitioned parallel
    /// engine agree with the sequential reference checker bit-for-bit —
    /// same case count, same worst repair distance, same verdict, and the
    /// *same* (lowest-rank) counterexample — for arbitrary constraints,
    /// damage bounds, budgets, strategies, and thread counts.
    #[test]
    fn recoverability_engine_matches_reference(
        n in 2usize..10,
        damage in 0usize..4,
        k in 0usize..5,
        need_frac in 0.2f64..1.0,
        threads in 1usize..5,
    ) {
        let need = (((n as f64) * need_frac).ceil() as usize).clamp(1, n);
        let env = AtLeastOnes::new(n, need);
        let start = Config::ones(n);
        let strategies: [Box<dyn RepairStrategy>; 2] =
            [Box::new(GreedyRepair::new()), Box::new(BfsRepair::new(n))];
        for strategy in &strategies {
            let reference =
                recoverability_reference(&start, &env, strategy.as_ref(), damage, k);
            let engine =
                is_k_recoverable_exhaustive(&start, &env, strategy.as_ref(), damage, k);
            prop_assert_eq!(&engine, &reference);
            let ctx = RunContext::with_threads(0, threads);
            let parallel = is_k_recoverable_exhaustive_parallel(
                &start, &env, strategy.as_ref(), damage, k, &ctx,
            );
            prop_assert_eq!(&parallel, &reference);
        }
    }

    /// CSR + bitset-BFS maintainability and Jacobi adversarial
    /// maintainability produce reports identical to the reference
    /// implementations on random transition systems, independent of the
    /// thread count.
    #[test]
    fn maintainability_engine_matches_reference(
        seed in any::<u64>(),
        n in 1usize..48,
        edge_factor in 0usize..5,
        threads in 1usize..5,
    ) {
        let ts = random_system(seed, n, edge_factor);
        prop_assert_eq!(ts.analyze(), ts.analyze_reference());
        let adversarial = ts.analyze_adversarial();
        prop_assert_eq!(&adversarial, &ts.analyze_adversarial_reference());
        prop_assert_eq!(&adversarial, &ts.analyze_adversarial_threads(threads));
    }

    /// The implicit (on-the-fly) bit-DCSP checkers match the explicit
    /// transition-system construction exactly, including policies.
    #[test]
    fn implicit_bit_dcsp_matches_explicit(
        n in 1usize..8,
        need_frac in 0.2f64..1.0,
        damage in 0usize..3,
        threads in 1usize..5,
    ) {
        let need = (((n as f64) * need_frac).ceil() as usize).clamp(1, n);
        let env = AtLeastOnes::new(n, need);
        let ts = TransitionSystem::from_bit_dcsp(n, &env, damage);
        prop_assert_eq!(analyze_bit_dcsp(n, &env), ts.analyze());
        let explicit = ts.analyze_adversarial();
        prop_assert_eq!(
            &analyze_bit_dcsp_adversarial(n, &env, damage, threads),
            &explicit
        );
    }
}

//! Statistical validation: wherever the workspace has both a closed-form
//! result and a simulator, the two must agree within Monte-Carlo error.

use systems_resilience::core::seeded_rng;
use systems_resilience::ecology::moran::MoranProcess;
use systems_resilience::ecology::weak_selection::AlleleDynamics;
use systems_resilience::engineering::interop::InteropModel;
use systems_resilience::engineering::nversion::{DesignStrategy, NVersionController};
use systems_resilience::stats::descriptive::quantile;
use systems_resilience::stats::distributions::{Gaussian, Lognormal, Pareto, Sampler};

#[test]
fn pareto_quantiles_match_inverse_cdf() {
    let mut rng = seeded_rng(20_001);
    let p = Pareto::new(2.0, 2.0).expect("valid");
    let xs: Vec<f64> = (0..60_000).map(|_| p.sample(&mut rng)).collect();
    // Theoretical quantile: x_q = xm·(1−q)^(−1/α).
    for q in [0.25f64, 0.5, 0.9] {
        let theory = 2.0 * (1.0 - q).powf(-0.5);
        let empirical = quantile(&xs, q);
        assert!(
            (empirical - theory).abs() / theory < 0.03,
            "q={q}: empirical {empirical} vs theory {theory}"
        );
    }
}

#[test]
fn lognormal_median_is_exp_mu() {
    let mut rng = seeded_rng(20_002);
    let l = Lognormal::new(1.0, 0.7).expect("valid");
    let xs: Vec<f64> = (0..60_000).map(|_| l.sample(&mut rng)).collect();
    let median = quantile(&xs, 0.5);
    let theory = 1.0f64.exp();
    assert!(
        (median - theory).abs() / theory < 0.03,
        "median {median} vs {theory}"
    );
}

#[test]
fn gaussian_central_interval_has_right_mass() {
    let mut rng = seeded_rng(20_003);
    let g = Gaussian::new(0.0, 1.0).expect("valid");
    let xs: Vec<f64> = (0..60_000).map(|_| g.sample(&mut rng)).collect();
    // ±1σ should hold ≈ 68.3% of the mass.
    let within = xs.iter().filter(|x| x.abs() <= 1.0).count() as f64 / xs.len() as f64;
    assert!((within - 0.683).abs() < 0.01, "within-1σ mass {within}");
}

#[test]
fn moran_and_wright_fisher_agree_in_the_neutral_case() {
    // Both models must reduce to fixation probability = initial frequency
    // for a neutral allele — the baseline identity the paper's diversity
    // arguments lean on.
    let mut rng = seeded_rng(20_004);
    let n = 40;
    let moran = MoranProcess::new(n, 1.0);
    let wf = AlleleDynamics::new(n, 0.0);
    let trials = 4_000;
    let moran_fix = moran.simulate_fixation_probability(trials, &mut rng);
    let wf_fix = wf.simulate_fixation_probability(trials, &mut rng);
    let expect = 1.0 / n as f64;
    assert!((moran_fix - expect).abs() < 0.012, "moran {moran_fix}");
    assert!((wf_fix - expect).abs() < 0.012, "wf {wf_fix}");
}

#[test]
fn selection_helps_in_both_population_models() {
    // Directional consistency: an advantageous mutant fixes more often
    // than neutral in both the Moran and Wright–Fisher machinery.
    let n = 60;
    let moran_neutral = MoranProcess::new(n, 1.0).fixation_probability(1);
    let moran_adv = MoranProcess::new(n, 1.2).fixation_probability(1);
    let wf_neutral = AlleleDynamics::new(n, 0.0).fixation_probability();
    let wf_adv = AlleleDynamics::new(n, 0.1).fixation_probability();
    assert!(moran_adv > moran_neutral);
    assert!(wf_adv > wf_neutral);
}

#[test]
fn redundancy_formulas_cross_check() {
    // A 1-of-n interoperable system and an (n−1)-fault-tolerant voter are
    // the same object; their closed forms must agree.
    let fail = 0.3;
    let interop = InteropModel::new(3, fail, true, 1).analytic_availability();
    // A "controller" that functions while at least 1 of 3 units works is
    // not the majority voter, so compute directly: 1 − fail³.
    let direct = 1.0 - fail * fail * fail;
    assert!((interop - direct).abs() < 1e-12);
    // And the majority voter must be strictly more demanding than 1-of-3,
    // strictly less demanding than 3-of-3.
    let majority = NVersionController::new(3, DesignStrategy::Diverse, 0.0, fail)
        .analytic_failure_probability();
    let one_of_three = 1.0 - interop;
    let all_three = 1.0 - (1.0 - fail).powi(3);
    assert!(one_of_three < majority && majority < all_three);
}

//! Integration: the DCSP repair model and the Bruneau metric agree about
//! what "resilient" means.

use std::sync::Arc;

use systems_resilience::core::bruneau::analyze_triangle;
use systems_resilience::core::{resilience_loss, seeded_rng, AllOnes, Config, ShockKind};
use systems_resilience::dcsp::maintainability::TransitionSystem;
use systems_resilience::dcsp::recoverability::is_k_recoverable_exhaustive;
use systems_resilience::dcsp::repair::BfsRepair;
use systems_resilience::dcsp::{DcspSystem, GreedyRepair, Spacecraft};

#[test]
fn repair_episode_produces_a_measurable_triangle() {
    let mut rng = seeded_rng(1001);
    let mut sys = DcspSystem::fit_under(Arc::new(AllOnes::new(20)));
    let record = sys.episode(
        &ShockKind::BitDamage { flips: 5 },
        &GreedyRepair::new(),
        20,
        &mut rng,
    );
    assert!(record.recovered);
    assert_eq!(record.repair_steps, 5);

    let triangle = analyze_triangle(sys.quality_trajectory(), 100.0)
        .expect("non-empty")
        .expect("a drop happened");
    assert!(triangle.recovered);
    // One flip per time step: recovery time equals repair steps.
    assert!((triangle.recovery_time - 5.0).abs() < 1e-9);
    // Quality dropped by 5 components of 20 = 25 points.
    assert!((triangle.max_drop - 25.0).abs() < 1e-9);
}

#[test]
fn faster_repair_means_smaller_bruneau_loss() {
    // The spacecraft with more repair capacity scores a strictly smaller
    // resilience loss on the same debris schedule.
    use systems_resilience::core::ShockSchedule;
    let mut losses = Vec::new();
    for repairs in [1usize, 2, 4] {
        let mut rng = seeded_rng(1002);
        let mut craft = Spacecraft::new(24, 4, repairs);
        let log = craft.simulate_mission(400, &ShockSchedule::Periodic { period: 10 }, &mut rng);
        losses.push(log.resilience_loss());
    }
    assert!(losses[0] > losses[1] && losses[1] > losses[2], "{losses:?}");
}

#[test]
fn recoverability_matches_spacecraft_guarantee() {
    // The exhaustive DCSP checker proves exactly the bound the spacecraft
    // API promises via guaranteed_k().
    let craft = Spacecraft::new(10, 3, 1);
    let k = craft.guaranteed_k();
    let start = Config::ones(10);
    let env = AllOnes::new(10);
    let ok = is_k_recoverable_exhaustive(&start, &env, &GreedyRepair::new(), 3, k);
    assert!(ok.is_k_recoverable());
    if k > 0 {
        let tight = is_k_recoverable_exhaustive(&start, &env, &GreedyRepair::new(), 3, k - 1);
        assert!(!tight.is_k_recoverable());
    }
}

#[test]
fn maintainability_levels_equal_bfs_repair_distance() {
    // Two independent machineries — the explicit-state K-maintainability
    // analysis and the configuration-space BFS repair planner — must agree
    // on the repair distance of every state.
    let n = 6;
    let env = AllOnes::new(n);
    let ts = TransitionSystem::from_bit_dcsp(n, &env, 2);
    let report = ts.analyze();
    let bfs = BfsRepair::new(n);
    for s in 0..(1usize << n) {
        let cfg = Config::from_u64(s as u64, n);
        let plan = bfs.shortest_plan(&cfg, &env).expect("always reachable");
        assert_eq!(
            report.levels[s],
            Some(plan.len()),
            "state {s:06b}: levels vs BFS"
        );
    }
}

#[test]
fn quality_trajectory_loss_is_zero_iff_never_unfit() {
    let mut rng = seeded_rng(1003);
    let mut sys = DcspSystem::fit_under(Arc::new(AllOnes::new(8)));
    for _ in 0..10 {
        sys.idle();
    }
    assert_eq!(resilience_loss(sys.quality_trajectory()), 0.0);
    sys.strike(&ShockKind::BitDamage { flips: 1 }, &mut rng);
    sys.repair(&GreedyRepair::new(), 8);
    assert!(resilience_loss(sys.quality_trajectory()) > 0.0);
}

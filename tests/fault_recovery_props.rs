//! Property test for the fault-recovery determinism contract: a
//! *recoverable* fault plan — every injected fault transient, clearing
//! within the retry budget, no permanent faults — must leave the folded
//! result of a supervised run bit-identical to the fault-free run, for
//! any thread budget. This is the invariant that lets `--fault-plan`
//! serve as a chaos test: if the table changes under recoverable chaos,
//! the supervisor dropped, duplicated, or mis-seeded a trial.
//!
//! Also here: the fault-spec grammar contract. `FaultConfig`'s
//! `Display` is the canonical spec, and the strict parser must invert
//! it exactly (`parse(cfg.to_string()) == cfg`) for any config whose
//! durations are whole milliseconds — the spec's unit — while malformed
//! specs must be rejected with an error naming the offending token.

use std::time::Duration;

use proptest::prelude::*;
use rand::Rng;
use systems_resilience::core::{FaultConfig, FaultPlan, RecoveryPolicy, RunContext, Supervision};

/// The reference workload: XOR-fold of seeded draws, so any dropped,
/// duplicated, or re-ordered trial changes the result.
fn fold(ctx: &RunContext, trials: u64, master: u64) -> Vec<u64> {
    ctx.run_trials(
        trials,
        master,
        |idx, rng| idx ^ rng.gen::<u64>(),
        Vec::new(),
        |mut acc, x| {
            acc.push(x);
            acc
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Recoverable-only plans reproduce the fault-free fold bit for bit
    /// on thread budgets 1, 2, and 4.
    #[test]
    fn recoverable_plans_preserve_results(
        plan_seed in any::<u64>(),
        master in any::<u64>(),
        panic_rate in 0.0f64..0.15,
        poison_rate in 0.0f64..0.15,
        delay_rate in 0.0f64..0.05,
        times in 1u32..=3,
    ) {
        let plan = FaultPlan {
            seed: plan_seed,
            panic_rate,
            delay_rate,
            poison_rate,
            permanent_rate: 0.0,
            delay: Duration::from_micros(50),
            transient_attempts: times,
        };
        let policy = RecoveryPolicy {
            retries: 3,
            backoff: Duration::from_micros(50),
            backoff_cap: Duration::from_millis(1),
            deadline: None,
        };
        let config = FaultConfig { plan, policy };
        prop_assert!(config.plan.recoverable_under(&config.policy));

        let clean = fold(&RunContext::new(9), 48, master);
        for threads in [1usize, 2, 4] {
            let ctx = RunContext::with_threads(9, threads)
                .supervised(Supervision::new("prop-chaos", config.clone()));
            let chaotic = fold(&ctx, 48, master);
            prop_assert!(
                chaotic == clean,
                "fold changed under recoverable chaos: threads={} plan={:?}",
                threads,
                config.plan
            );
            let report = ctx.run_report().expect("supervised context reports");
            prop_assert!(report.lost.is_empty(), "recoverable plan lost trials");
            // Every failure event is a retry that eventually succeeded,
            // so extra attempts can only come from recovered trials.
            prop_assert!(report.attempts >= report.trials);
            if report.attempts > report.trials {
                prop_assert!(report.recovered > 0);
            }
        }
    }
}

/// Every key the spec grammar understands.
const KNOWN_KEYS: [&str; 11] = [
    "seed",
    "panic",
    "delay",
    "poison",
    "permanent",
    "delay_ms",
    "times",
    "retries",
    "backoff_ms",
    "backoff_cap_ms",
    "deadline_ms",
];

/// Lowercase-letter word derived from `n` (base-26), at least 2 chars —
/// the vendored proptest has no string strategies, so random words are
/// drawn as integers and rendered here.
fn word(mut n: u64) -> String {
    let mut s = String::new();
    loop {
        s.push((b'a' + (n % 26) as u8) as char);
        n /= 26;
        if n == 0 && s.len() >= 2 {
            return s;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `parse` inverts `Display` exactly: the canonical spec re-parses
    /// to a bit-identical config. Rates are drawn in thousandths so the
    /// four together never exceed 1.0 (the plan's validity bound);
    /// durations are whole milliseconds, the spec's unit; a zero
    /// deadline draw stands for "no deadline" (the spec omits the key).
    #[test]
    fn fault_spec_display_round_trips_through_parse(
        seed in any::<u64>(),
        panic_m in 0u32..=250,
        delay_m in 0u32..=250,
        poison_m in 0u32..=250,
        permanent_m in 0u32..=250,
        delay_ms in 0u64..=50,
        times in 1u32..=4,
        retries in 0u32..=6,
        backoff_ms in 0u64..=20,
        backoff_cap_ms in 0u64..=64,
        deadline_ms in 0u64..=500,
    ) {
        let cfg = FaultConfig {
            plan: FaultPlan {
                seed,
                panic_rate: f64::from(panic_m) / 1000.0,
                delay_rate: f64::from(delay_m) / 1000.0,
                poison_rate: f64::from(poison_m) / 1000.0,
                permanent_rate: f64::from(permanent_m) / 1000.0,
                delay: Duration::from_millis(delay_ms),
                transient_attempts: times,
            },
            policy: RecoveryPolicy {
                retries,
                backoff: Duration::from_millis(backoff_ms),
                backoff_cap: Duration::from_millis(backoff_cap_ms),
                deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
            },
        };
        let spec = cfg.to_string();
        let reparsed = FaultConfig::parse(&spec)
            .unwrap_or_else(|e| panic!("canonical spec `{spec}` must parse: {e}"));
        prop_assert!(reparsed == cfg, "spec `{}` did not round-trip: {:?}", spec, reparsed);
    }

    /// An unknown key is rejected, and the error names the exact
    /// offending token so the user can find it in a long spec. The `zz`
    /// prefix guarantees the key collides with no known key.
    #[test]
    fn unknown_keys_are_rejected_naming_the_token(
        key_word in any::<u64>(),
        value in any::<u32>(),
    ) {
        let token = format!("zz{}={value}", word(key_word));
        let err = FaultConfig::parse(&format!("seed=1,panic=0.1,{token}"))
            .expect_err("unknown key must be rejected");
        let msg = err.to_string();
        prop_assert!(msg.contains(&token), "error `{}` does not name `{}`", msg, token);
    }

    /// A known key with an unparseable (letters-only) value is
    /// rejected, and the error names the exact offending token.
    #[test]
    fn bad_values_are_rejected_naming_the_token(
        key_idx in 0usize..KNOWN_KEYS.len(),
        garbage in any::<u64>(),
    ) {
        let token = format!("{}=x{}", KNOWN_KEYS[key_idx], word(garbage));
        let err = FaultConfig::parse(&token).expect_err("garbage value must be rejected");
        let msg = err.to_string();
        prop_assert!(msg.contains(&token), "error `{}` does not name `{}`", msg, token);
    }

    /// A token with no `=` at all is rejected, naming the token.
    #[test]
    fn keyless_tokens_are_rejected_naming_the_token(raw in any::<u64>()) {
        let token = word(raw);
        let err = FaultConfig::parse(&format!("seed=1,{token}"))
            .expect_err("key-only token must be rejected");
        let msg = err.to_string();
        prop_assert!(msg.contains(&token), "error `{}` does not name `{}`", msg, token);
    }
}

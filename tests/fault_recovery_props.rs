//! Property test for the fault-recovery determinism contract: a
//! *recoverable* fault plan — every injected fault transient, clearing
//! within the retry budget, no permanent faults — must leave the folded
//! result of a supervised run bit-identical to the fault-free run, for
//! any thread budget. This is the invariant that lets `--fault-plan`
//! serve as a chaos test: if the table changes under recoverable chaos,
//! the supervisor dropped, duplicated, or mis-seeded a trial.

use std::time::Duration;

use proptest::prelude::*;
use rand::Rng;
use systems_resilience::core::{FaultConfig, FaultPlan, RecoveryPolicy, RunContext, Supervision};

/// The reference workload: XOR-fold of seeded draws, so any dropped,
/// duplicated, or re-ordered trial changes the result.
fn fold(ctx: &RunContext, trials: u64, master: u64) -> Vec<u64> {
    ctx.run_trials(
        trials,
        master,
        |idx, rng| idx ^ rng.gen::<u64>(),
        Vec::new(),
        |mut acc, x| {
            acc.push(x);
            acc
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Recoverable-only plans reproduce the fault-free fold bit for bit
    /// on thread budgets 1, 2, and 4.
    #[test]
    fn recoverable_plans_preserve_results(
        plan_seed in any::<u64>(),
        master in any::<u64>(),
        panic_rate in 0.0f64..0.15,
        poison_rate in 0.0f64..0.15,
        delay_rate in 0.0f64..0.05,
        times in 1u32..=3,
    ) {
        let plan = FaultPlan {
            seed: plan_seed,
            panic_rate,
            delay_rate,
            poison_rate,
            permanent_rate: 0.0,
            delay: Duration::from_micros(50),
            transient_attempts: times,
        };
        let policy = RecoveryPolicy {
            retries: 3,
            backoff: Duration::from_micros(50),
            backoff_cap: Duration::from_millis(1),
            deadline: None,
        };
        let config = FaultConfig { plan, policy };
        prop_assert!(config.plan.recoverable_under(&config.policy));

        let clean = fold(&RunContext::new(9), 48, master);
        for threads in [1usize, 2, 4] {
            let ctx = RunContext::with_threads(9, threads)
                .supervised(Supervision::new("prop-chaos", config.clone()));
            let chaotic = fold(&ctx, 48, master);
            prop_assert!(
                chaotic == clean,
                "fold changed under recoverable chaos: threads={} plan={:?}",
                threads,
                config.plan
            );
            let report = ctx.run_report().expect("supervised context reports");
            prop_assert!(report.lost.is_empty(), "recoverable plan lost trials");
            // Every failure event is a retry that eventually succeeded,
            // so extra attempts can only come from recovered trials.
            prop_assert!(report.attempts >= report.trials);
            if report.attempts > report.trials {
                prop_assert!(report.recovered > 0);
            }
        }
    }
}

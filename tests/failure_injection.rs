//! Failure injection: the library must degrade gracefully — not panic,
//! hang, or silently mis-report — when handed hostile inputs:
//! unsatisfiable environments, stuck repairers, contradictory beliefs,
//! doomed populations.

use std::sync::Arc;

use systems_resilience::core::{
    seeded_rng, AllOnes, Config, ExplicitSet, PredicateConstraint, ShockKind,
};
use systems_resilience::dcsp::belief::BeliefState;
use systems_resilience::dcsp::repair::{BfsRepair, GreedyRepair, RepairStrategy};
use systems_resilience::dcsp::DcspSystem;

#[test]
fn unsatisfiable_environment_repair_gives_up_cleanly() {
    // An empty fit set: nothing is ever fit.
    let empty = ExplicitSet::new(Vec::<Config>::new());
    let mut sys = DcspSystem::new(Config::zeros(6), Arc::new(empty));
    assert!(!sys.is_fit());
    let outcome = sys.repair(&GreedyRepair::new(), 50);
    assert!(!outcome.recovered);
    // Greedy can't improve an infinite violation: no wasted steps.
    assert_eq!(outcome.steps, 0);
    // BFS likewise terminates without a plan.
    assert_eq!(
        BfsRepair::new(6).shortest_plan(sys.state(), sys.environment().as_ref()),
        None
    );
}

#[test]
fn flat_landscape_strands_greedy_but_not_bfs() {
    // An indicator constraint (no gradient): greedy is stuck immediately,
    // BFS still finds the plan.
    let flat = PredicateConstraint::new("exactly 0b111", |c: &Config| c.to_u64() == 0b111);
    let state: Config = "010".parse().unwrap();
    assert_eq!(GreedyRepair::new().propose_flip(&state, &flat), None);
    let plan = BfsRepair::new(3).shortest_plan(&state, &flat).unwrap();
    assert_eq!(plan.len(), 2);
}

#[test]
fn shocks_on_empty_configurations_are_noops() {
    let mut rng = seeded_rng(9001);
    let mut empty = Config::zeros(0);
    for kind in [
        ShockKind::BitDamage { flips: 5 },
        ShockKind::BoundedBitDamage { max_flips: 3 },
        ShockKind::ComponentLoss { count: 2 },
        ShockKind::XEvent { alpha: 1.5 },
    ] {
        let shock = kind.strike(&mut empty, &mut rng);
        assert_eq!(shock.magnitude(), 0, "{kind:?}");
    }
}

#[test]
fn contradictory_belief_never_reports_fit() {
    let env = AllOnes::new(3);
    let mut belief = BeliefState::certain(Config::ones(3));
    belief.observe_bit(0, false);
    belief.observe_bit(0, true); // contradiction: nothing remains
    assert!(belief.is_contradictory());
    assert!(!belief.certainly_fit(&env));
    assert!(!belief.possibly_fit(&env));
    let (flips, ok) = belief.conservative_repair(&env, 10);
    assert!(!ok);
    assert!(flips.is_empty());
}

#[test]
fn repair_budget_zero_means_no_flips_ever() {
    let mut rng = seeded_rng(9002);
    let mut sys = DcspSystem::fit_under(Arc::new(AllOnes::new(8)));
    sys.strike(&ShockKind::BitDamage { flips: 3 }, &mut rng);
    let outcome = sys.repair(&GreedyRepair::new(), 0);
    assert_eq!(outcome.steps, 0);
    assert!(!outcome.recovered);
}

#[test]
fn doomed_agent_population_reports_extinction_step() {
    use systems_resilience::agents::budget::BudgetedParams;
    use systems_resilience::agents::dynamics::{SimConfig, Simulation};
    use systems_resilience::agents::environment::{Environment, EnvironmentKind};

    let mut rng = seeded_rng(9003);
    // Income below upkeep even when fit: guaranteed starvation.
    let config = SimConfig {
        income: 0.1,
        upkeep: 1.0,
        ..SimConfig::default()
    };
    let params = BudgetedParams {
        initial_resource: 3.0,
        mutation_rate: 0.0,
        initial_spread: 0.0,
        adaptation_rate: 1,
    };
    let env = Environment::random(16, EnvironmentKind::Static, &mut rng);
    let mut sim = Simulation::new(config, params, env, &mut rng);
    let out = sim.run(100, &mut rng);
    assert!(out.extinct);
    let step = out.extinction_step.expect("records the step");
    // 3.0 resource at −0.9/step ⇒ dead in 4 steps.
    assert!(step <= 5, "died at {step}");
    // The recorded series stops at extinction.
    assert_eq!(out.population_series.len(), step + 1);
    assert_eq!(*out.population_series.values().last().unwrap(), 0.0);
}

#[test]
fn storage_array_with_certain_failures_loses_data_immediately() {
    use systems_resilience::engineering::storage::StorageArray;
    let mut rng = seeded_rng(9004);
    let array = StorageArray::new(3, 1, 1.0, 1_000);
    assert_eq!(array.simulate_to_loss(10, &mut rng), Some(1));
    let out = array.run_trials(10, 20, &mut rng);
    assert_eq!(out.survival_probability(), 0.0);
    assert_eq!(out.mean_steps_to_loss, Some(1.0));
}

#[test]
fn grid_with_total_capacity_loss_blacks_out_throughout_outage() {
    use systems_resilience::engineering::grid::PowerGrid;
    let mut rng = seeded_rng(9005);
    let grid = PowerGrid::new(100.0, 0.5, 0.0);
    let out = grid.simulate_shock(100, 10, 1.0, 30, &mut rng);
    assert_eq!(out.blackout_steps, 30);
    assert!(!out.rode_through());
    assert!(out.unserved_energy > 0.0);
}

#[test]
fn sandpile_survives_saturation_bombing() {
    // Dropping thousands of grains on one cell must terminate (grains
    // drain off the boundary) and leave every cell below the threshold.
    use systems_resilience::networks::sandpile::{Sandpile, TOPPLE_AT};
    let mut pile = Sandpile::new(5, 5);
    for _ in 0..5_000 {
        pile.drop_at(2, 2);
    }
    for x in 0..5 {
        for y in 0..5 {
            assert!(pile.grains_at(x, y) < TOPPLE_AT);
        }
    }
    assert!(pile.density() < TOPPLE_AT as f64);
}

#[test]
fn mape_loop_with_total_noise_still_terminates() {
    use systems_resilience::engineering::mape::MapeLoop;
    let mut rng = seeded_rng(9006);
    // Sensor noise 1.0: Monitor reads pure garbage; tracking must not
    // panic and error stays bounded by the bit count.
    let m = MapeLoop::new(32, 4, 1.0);
    let out = m.track_drift(500, 2, &mut rng);
    assert!(out.mean_error() <= 32.0);
    assert_eq!(out.steps, 500);
}

#[test]
fn insurance_with_zero_capital_is_ruined_by_any_overshoot() {
    use systems_resilience::stats::distributions::Pareto;
    use systems_resilience::stats::heavy_tail::InsuranceExperiment;
    let mut rng = seeded_rng(9007);
    let exp = InsuranceExperiment {
        history: 50,
        loading: 1.0,
        capital_multiple: 0.0,
        horizon: 200,
    };
    let heavy = Pareto::new(1.0, 1.5).expect("valid");
    let out = exp.run(&heavy, 100, &mut rng);
    assert!(out.ruin_probability() > 0.5, "{}", out.ruin_probability());
    // Capital buffers matter: the conventional (capitalized) insurer is
    // ruined strictly less often on the same loss stream.
    let capitalized = InsuranceExperiment {
        capital_multiple: 10.0,
        ..exp
    };
    let buffered = capitalized.run(&heavy, 100, &mut rng);
    assert!(buffered.ruin_probability() < out.ruin_probability());
}

//! Property-based equivalence of the ceiling-breaking verification paths
//! against the engines they accelerate.
//!
//! The symmetry-reduced recoverability checker (one repair walk per
//! damage *orbit*, counts multiplied by orbit size) and the
//! compressed-frontier maintainability engines (word-packed frontiers,
//! streamed level counts) must be observationally invisible: identical
//! reports — including the counterexample — to the unreduced/dense paths
//! they replace, on arbitrary inputs, for any thread count, with or
//! without chaos fault injection in the run context.

use proptest::prelude::*;

use systems_resilience::core::{
    AllOnes, AtLeastOnes, Config, FaultConfig, RunContext, Supervision,
};
use systems_resilience::dcsp::maintainability::{
    analyze_bit_dcsp, analyze_bit_dcsp_adversarial, analyze_bit_dcsp_adversarial_frontiers,
    analyze_bit_dcsp_auto, analyze_bit_dcsp_frontiers,
};
use systems_resilience::dcsp::recoverability::{
    is_k_recoverable_exhaustive, is_k_recoverable_exhaustive_parallel, is_k_recoverable_symmetric,
    is_k_recoverable_symmetric_stats,
};
use systems_resilience::dcsp::repair::{BfsRepair, GreedyRepair, RepairStrategy};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Orbit reduction is invisible: for symmetric counting constraints
    /// the reduced checker must reproduce the exhaustive engine's report
    /// bit-for-bit — case counts, worst repair distance, verdict, and the
    /// lowest-ranked counterexample — for arbitrary thresholds, damage
    /// bounds, budgets, strategies, and thread counts.
    #[test]
    fn orbit_reduction_matches_exhaustive(
        n in 4usize..12,
        damage in 1usize..4,
        k in 0usize..5,
        need_frac in 0.3f64..1.0,
        use_bfs in any::<bool>(),
        threads in 1usize..5,
    ) {
        let need = (((n as f64) * need_frac).ceil() as usize).clamp(1, n);
        let start = Config::ones(n);
        let greedy = GreedyRepair::new();
        let bfs = BfsRepair::new(k.max(1));
        let strategy: &dyn RepairStrategy = if use_bfs { &bfs } else { &greedy };
        let ctx = RunContext::with_threads(0, threads);
        let env = AtLeastOnes::new(n, need);
        let sym = is_k_recoverable_symmetric(&start, &env, strategy, damage, k, &ctx)
            .expect("counting constraints declare symmetry");
        let full = is_k_recoverable_exhaustive(&start, &env, strategy, damage, k);
        prop_assert_eq!(sym, full);
    }

    /// The symmetric checker's report *and* its telemetry counters are a
    /// pure function of the problem: bit-identical for 1, 2, and 4
    /// threads.
    #[test]
    fn symmetric_reports_and_stats_are_thread_invariant(
        n in 4usize..11,
        damage in 1usize..4,
        k in 0usize..4,
    ) {
        let start = Config::ones(n);
        let env = AllOnes::new(n);
        let mut first = None;
        for threads in [1usize, 2, 4] {
            let ctx = RunContext::with_threads(0, threads);
            let got = is_k_recoverable_symmetric_stats(
                &start, &env, &GreedyRepair::new(), damage, k, &ctx,
            )
            .expect("AllOnes declares symmetry");
            match &first {
                None => first = Some(got),
                Some(want) => prop_assert_eq!(&got, want),
            }
        }
    }

    /// Compressed quiet frontiers equal the dense per-state analysis on
    /// arbitrary thresholds and thread counts.
    #[test]
    fn compressed_quiet_frontiers_match_dense(
        n_bits in 6usize..13,
        need_frac in 0.2f64..1.0,
        threads in 1usize..5,
    ) {
        let need = (((n_bits as f64) * need_frac).ceil() as usize).clamp(1, n_bits);
        let env = AtLeastOnes::new(n_bits, need);
        let dense = analyze_bit_dcsp(n_bits, &env);
        let summary = analyze_bit_dcsp_frontiers(n_bits, &env, threads);
        prop_assert_eq!(&summary.frontier_sizes, &dense.frontier_sizes());
        prop_assert_eq!(summary.hopeless, dense.hopeless_states().len() as u64);
        prop_assert_eq!(summary.min_k(), dense.min_k());
    }

    /// Compressed adversarial level sets equal the dense min-max value
    /// iteration's level histogram.
    #[test]
    fn compressed_adversarial_frontiers_match_dense(
        n_bits in 6usize..11,
        need_gap in 1usize..4,
        damage in 1usize..3,
        threads in 1usize..4,
    ) {
        let need = n_bits - need_gap.min(n_bits - 1);
        let env = AtLeastOnes::new(n_bits, need);
        let dense = analyze_bit_dcsp_adversarial(n_bits, &env, damage, 1);
        let summary = analyze_bit_dcsp_adversarial_frontiers(n_bits, &env, damage, threads);
        prop_assert_eq!(&summary.frontier_sizes, &dense.frontier_sizes());
        prop_assert_eq!(summary.hopeless, dense.hopeless_states().len() as u64);
    }
}

/// The 2^12–2^20 band the dense engine still reaches: the compressed
/// path must agree exactly at every size, and the auto router must
/// produce the same summary from either branch.
#[test]
fn compressed_frontiers_match_dense_at_scale() {
    for (n_bits, need) in [(12usize, 7usize), (16, 10), (20, 13)] {
        let env = AtLeastOnes::new(n_bits, need);
        let dense = analyze_bit_dcsp(n_bits, &env);
        for threads in [1usize, 4] {
            let summary = analyze_bit_dcsp_frontiers(n_bits, &env, threads);
            assert_eq!(
                summary.frontier_sizes,
                dense.frontier_sizes(),
                "n={n_bits} threads={threads}"
            );
            assert_eq!(summary.hopeless, dense.hopeless_states().len() as u64);
        }
        let auto = analyze_bit_dcsp_auto(n_bits, &env, 4);
        assert_eq!(auto.frontier_sizes, dense.frontier_sizes(), "n={n_bits}");
    }
}

/// Chaos fault injection in the run context (panics, delays, poisoned
/// slots, all recoverable) must not perturb verification output: the
/// symmetric and exhaustive parallel checkers stay bit-identical to an
/// unsupervised run at every thread count.
#[test]
fn chaos_supervision_leaves_verification_bit_identical() {
    let cfg = FaultConfig::parse(
        "seed=11,panic=0.2,delay=0.05,delay_ms=1,poison=0.15,times=2,retries=3,backoff_ms=1",
    )
    .expect("valid chaos spec");
    let start = Config::ones(10);
    let env = AllOnes::new(10);
    let clean_sym = is_k_recoverable_symmetric(
        &start,
        &env,
        &GreedyRepair::new(),
        3,
        3,
        &RunContext::with_threads(0, 2),
    )
    .expect("symmetric");
    let clean_full = is_k_recoverable_exhaustive(&start, &env, &GreedyRepair::new(), 3, 3);
    for threads in [1usize, 2, 4] {
        let ctx = RunContext::with_threads(0, threads)
            .supervised(Supervision::new("symmetry-chaos", cfg.clone()));
        let sym = is_k_recoverable_symmetric(&start, &env, &GreedyRepair::new(), 3, 3, &ctx)
            .expect("symmetric");
        assert_eq!(sym, clean_sym, "symmetric threads={threads}");
        let ctx = RunContext::with_threads(0, threads)
            .supervised(Supervision::new("exhaustive-chaos", cfg.clone()));
        let full =
            is_k_recoverable_exhaustive_parallel(&start, &env, &GreedyRepair::new(), 3, 3, &ctx);
        assert_eq!(full, clean_full, "exhaustive threads={threads}");
    }
}

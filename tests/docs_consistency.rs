//! The documentation and the code must not drift apart: DESIGN.md's
//! experiment index, the bench registry, and README's example list all
//! describe the same artifacts.

use resilience_bench::experiments::registry;

const DESIGN: &str = include_str!("../DESIGN.md");
const README: &str = include_str!("../README.md");

/// DESIGN.md's index label for a registry id: numbered experiments
/// (`e7`) appear as `| E7`, everything else (`cluster_attack`) under
/// its uppercased id (`| CLUSTER_ATTACK`).
fn index_label(id: &str) -> String {
    match id.strip_prefix('e') {
        Some(digits) if digits.chars().all(|c| c.is_ascii_digit()) => format!("| E{digits}"),
        _ => format!("| {}", id.to_ascii_uppercase()),
    }
}

#[test]
fn every_registered_experiment_is_indexed_in_design_md() {
    for (id, _) in registry() {
        assert!(
            DESIGN.contains(&index_label(id)),
            "DESIGN.md is missing the index row for {id}"
        );
    }
}

#[test]
fn design_md_does_not_index_unregistered_experiments() {
    let last = registry()
        .iter()
        .filter(|(id, _)| index_label(id).starts_with("| E"))
        .count();
    let phantom = format!("| E{}", last + 1);
    assert!(
        !DESIGN.contains(&phantom),
        "DESIGN.md indexes E{} but the numbered registry stops at E{last}",
        last + 1
    );
}

#[test]
fn readme_lists_every_example_binary() {
    let examples = std::fs::read_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/examples"))
        .expect("examples directory exists");
    for entry in examples {
        let name = entry.expect("readable").file_name();
        let name = name.to_string_lossy();
        if let Some(stem) = name.strip_suffix(".rs") {
            assert!(
                README.contains(&format!("`{stem}`")),
                "README.md does not document the `{stem}` example"
            );
        }
    }
}

#[test]
fn design_md_crate_inventory_matches_workspace() {
    for package in [
        "resilience-core",
        "resilience-dcsp",
        "resilience-ecology",
        "resilience-agents",
        "resilience-networks",
        "resilience-stats",
        "resilience-engineering",
    ] {
        assert!(
            DESIGN.contains(package),
            "DESIGN.md inventory is missing {package}"
        );
        let manifest = format!(
            "{}/crates/{}/Cargo.toml",
            env!("CARGO_MANIFEST_DIR"),
            package.trim_start_matches("resilience-")
        );
        assert!(
            std::path::Path::new(&manifest).exists(),
            "workspace is missing {manifest}"
        );
    }
}

//! The documentation and the code must not drift apart: DESIGN.md's
//! experiment index, the bench registry, and README's example list all
//! describe the same artifacts.

use resilience_bench::experiments::registry;

const DESIGN: &str = include_str!("../DESIGN.md");
const README: &str = include_str!("../README.md");

#[test]
fn every_registered_experiment_is_indexed_in_design_md() {
    for (id, _) in registry() {
        let label = format!("| E{}", id.trim_start_matches('e'));
        assert!(
            DESIGN.contains(&label),
            "DESIGN.md is missing the index row for {id}"
        );
    }
}

#[test]
fn design_md_does_not_index_unregistered_experiments() {
    let last = registry().len();
    let phantom = format!("| E{}", last + 1);
    assert!(
        !DESIGN.contains(&phantom),
        "DESIGN.md indexes E{} but the registry stops at E{last}",
        last + 1
    );
}

#[test]
fn readme_lists_every_example_binary() {
    let examples = std::fs::read_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/examples"))
        .expect("examples directory exists");
    for entry in examples {
        let name = entry.expect("readable").file_name();
        let name = name.to_string_lossy();
        if let Some(stem) = name.strip_suffix(".rs") {
            assert!(
                README.contains(&format!("`{stem}`")),
                "README.md does not document the `{stem}` example"
            );
        }
    }
}

#[test]
fn design_md_crate_inventory_matches_workspace() {
    for package in [
        "resilience-core",
        "resilience-dcsp",
        "resilience-ecology",
        "resilience-agents",
        "resilience-networks",
        "resilience-stats",
        "resilience-engineering",
    ] {
        assert!(
            DESIGN.contains(package),
            "DESIGN.md inventory is missing {package}"
        );
        let manifest = format!(
            "{}/crates/{}/Cargo.toml",
            env!("CARGO_MANIFEST_DIR"),
            package.trim_start_matches("resilience-")
        );
        assert!(
            std::path::Path::new(&manifest).exists(),
            "workspace is missing {manifest}"
        );
    }
}

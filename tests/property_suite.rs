//! Cross-crate property-based tests: invariants that must hold for
//! arbitrary parameters, not just the hand-picked cases in unit tests.

use proptest::prelude::*;

use systems_resilience::core::{seeded_rng, AllOnes, AtLeastOnes, Config, Constraint, ShockKind};
use systems_resilience::dcsp::recoverability::is_k_recoverable_exhaustive;
use systems_resilience::dcsp::repair::{BfsRepair, GreedyRepair, RepairStrategy};
use systems_resilience::engineering::nversion::{DesignStrategy, NVersionController};
use systems_resilience::engineering::storage::StorageArray;
use systems_resilience::networks::generators::erdos_renyi;
use systems_resilience::networks::percolation::removal_curve;
use systems_resilience::stats::ews::kendall_tau;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// k-recoverability is monotone in the repair budget k.
    #[test]
    fn recoverability_monotone_in_k(n in 4usize..9, damage in 1usize..4) {
        let start = Config::ones(n);
        let env = AllOnes::new(n);
        let mut prev_recovered = 0usize;
        for k in 0..=damage {
            let report = is_k_recoverable_exhaustive(&start, &env, &GreedyRepair::new(), damage, k);
            prop_assert!(report.recovered_within_k >= prev_recovered,
                "k={k}: {} < {prev_recovered}", report.recovered_within_k);
            prev_recovered = report.recovered_within_k;
        }
        // And at k = damage the system is fully recoverable.
        let full = is_k_recoverable_exhaustive(&start, &env, &GreedyRepair::new(), damage, damage);
        prop_assert!(full.is_k_recoverable());
    }

    /// BFS never needs more flips than greedy on any AllOnes instance
    /// (both are optimal there), and on AtLeastOnes BFS ≤ greedy.
    #[test]
    fn bfs_is_no_worse_than_greedy(n in 4usize..10, need_frac in 0.3f64..1.0, seed in any::<u64>()) {
        let need = ((n as f64) * need_frac).ceil() as usize;
        let env = AtLeastOnes::new(n, need.min(n));
        let mut rng = seeded_rng(seed);
        let mut state = Config::random(n, &mut rng);
        // Greedy steps.
        let mut greedy_state = state.clone();
        let greedy = GreedyRepair::new();
        let mut greedy_steps = 0;
        while !env.is_fit(&greedy_state) && greedy_steps <= n {
            match greedy.propose_flip(&greedy_state, &env) {
                Some(b) => { greedy_state.flip(b); greedy_steps += 1; }
                None => break,
            }
        }
        // BFS plan.
        let plan = BfsRepair::new(n).shortest_plan(&state, &env);
        if let Some(plan) = plan {
            prop_assert!(plan.len() <= greedy_steps || !env.is_fit(&greedy_state));
            // Executing the plan really repairs.
            for b in plan { state.flip(b); }
            prop_assert!(env.is_fit(&state));
        }
    }

    /// Every shock kind damages at most its declared worst case.
    #[test]
    fn shock_damage_within_worst_case(n in 1usize..80, flips in 0usize..20, seed in any::<u64>()) {
        let mut rng = seeded_rng(seed);
        for kind in [
            ShockKind::BitDamage { flips },
            ShockKind::BoundedBitDamage { max_flips: flips },
            ShockKind::ComponentLoss { count: flips },
        ] {
            let mut state = Config::random(n, &mut rng);
            let shock = kind.strike(&mut state, &mut rng);
            if let Some(worst) = kind.worst_case_damage(n) {
                prop_assert!(shock.magnitude() <= worst, "{kind:?}");
            }
        }
    }

    /// Removal curves are monotone non-increasing for arbitrary random
    /// graphs and removal prefixes.
    #[test]
    fn removal_curves_monotone(n in 5usize..60, p in 0.0f64..0.3, removals_frac in 0.0f64..1.0, seed in any::<u64>()) {
        let mut rng = seeded_rng(seed);
        let g = erdos_renyi(n, p, &mut rng);
        let k = ((n as f64) * removals_frac) as usize;
        let order: Vec<usize> = (0..k).collect();
        let curve = removal_curve(&g, &order);
        prop_assert_eq!(curve.len(), k + 1);
        for w in curve.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-12);
        }
        prop_assert!(curve.iter().all(|&f| (0.0..=1.0).contains(&f)));
    }

    /// N-version analytic failure probabilities are proper probabilities,
    /// and adding diverse units never hurts.
    #[test]
    fn nversion_analytic_sane(flaw in 0.0f64..0.5, hw in 0.0f64..0.5) {
        for units in [1usize, 3, 5, 7] {
            for strategy in [DesignStrategy::Identical, DesignStrategy::Diverse] {
                let c = NVersionController::new(units, strategy, flaw, hw);
                let p = c.analytic_failure_probability();
                prop_assert!((0.0..=1.0 + 1e-12).contains(&p), "{units} {strategy:?}: {p}");
            }
        }
        let d3 = NVersionController::new(3, DesignStrategy::Diverse, flaw, hw)
            .analytic_failure_probability();
        let d5 = NVersionController::new(5, DesignStrategy::Diverse, flaw, hw)
            .analytic_failure_probability();
        // More diverse redundancy helps whenever units are better than
        // coin flips.
        if (1.0 - (1.0 - flaw) * (1.0 - hw)) < 0.5 {
            prop_assert!(d5 <= d3 + 1e-12, "d5 {d5} vs d3 {d3}");
        }
    }

    /// Snapshot data-loss probability is monotone in the per-disk failure
    /// probability and anti-monotone in parity.
    #[test]
    fn storage_snapshot_monotonicity(p1 in 0.0f64..1.0, p2 in 0.0f64..1.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let array = StorageArray::new(6, 2, 0.0, 1);
        prop_assert!(array.snapshot_loss_probability(lo) <= array.snapshot_loss_probability(hi) + 1e-12);
        let less_parity = StorageArray::new(6, 1, 0.0, 1);
        prop_assert!(array.snapshot_loss_probability(lo) <= less_parity.snapshot_loss_probability(lo) + 1e-12);
    }

    /// Kendall τ is antisymmetric under negating one argument and
    /// symmetric under swapping.
    #[test]
    fn kendall_tau_symmetries(values in proptest::collection::vec(-100.0f64..100.0, 3..40)) {
        let time: Vec<f64> = (0..values.len()).map(|i| i as f64).collect();
        let tau = kendall_tau(&time, &values);
        let negated: Vec<f64> = values.iter().map(|v| -v).collect();
        let tau_neg = kendall_tau(&time, &negated);
        prop_assert!((tau + tau_neg).abs() < 1e-12);
        let tau_swapped = kendall_tau(&values, &time);
        prop_assert!((tau - tau_swapped).abs() < 1e-12);
        prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&tau));
    }

    /// Bruneau loss is invariant under padding with full-quality samples,
    /// provided the trajectory already starts and ends at full quality
    /// (otherwise the junction trapezoid adds area, as it should).
    #[test]
    fn bruneau_invariant_under_healthy_padding(values in proptest::collection::vec(0.0f64..100.0, 2..40), pad in 0usize..20) {
        use systems_resilience::core::{resilience_loss, QualityTrajectory};
        let mut episode = vec![100.0];
        episode.extend(values);
        episode.push(100.0);
        let base = QualityTrajectory::from_samples(1.0, episode.clone());
        let mut padded_values = vec![100.0; pad];
        padded_values.extend(episode);
        padded_values.extend(vec![100.0; pad]);
        let padded = QualityTrajectory::from_samples(1.0, padded_values);
        prop_assert!((resilience_loss(&base) - resilience_loss(&padded)).abs() < 1e-9);
    }

    /// The diversity index never exceeds richness.
    #[test]
    fn diversity_bounded_by_richness(pops in proptest::collection::vec(0.0f64..1e5, 1..30)) {
        use systems_resilience::ecology::{diversity_index, richness};
        if pops.iter().sum::<f64>() > 0.0 {
            let g = diversity_index(&pops).unwrap();
            prop_assert!(g <= richness(&pops) as f64 + 1e-9);
        }
    }
}

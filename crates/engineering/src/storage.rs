//! Redundant disk arrays (the paper's §3.1.2).
//!
//! "Mission-critical storage systems use RAID (Redundant Arrays of
//! Inexpensive Disks) so that the system can continue to function even
//! though one or more disks fail."
//!
//! Model: an array of `data + parity` disks tolerates up to `parity`
//! simultaneous failures (erasure-coding abstraction: RAID-5 ↦ parity 1,
//! RAID-6 ↦ parity 2). Disks fail independently per step with probability
//! `fail_rate`; a failed disk is rebuilt after `rebuild_steps` steps. Data
//! is lost the moment more than `parity` disks are simultaneously down.

use rand::Rng;
use resilience_core::RunContext;

/// A redundant storage array.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageArray {
    /// Number of data disks.
    pub data_disks: usize,
    /// Number of parity (redundant) disks.
    pub parity_disks: usize,
    /// Per-disk, per-step failure probability.
    pub fail_rate: f64,
    /// Steps to rebuild a failed disk onto a spare.
    pub rebuild_steps: usize,
}

/// Result of a storage simulation batch.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageOutcome {
    /// Trials run.
    pub trials: usize,
    /// Trials that lost data within the horizon.
    pub data_losses: usize,
    /// Mean steps to data loss among lossy trials (`None` if no losses).
    pub mean_steps_to_loss: Option<f64>,
}

impl StorageOutcome {
    /// Probability of surviving the horizon without data loss.
    pub fn survival_probability(&self) -> f64 {
        if self.trials == 0 {
            1.0
        } else {
            1.0 - self.data_losses as f64 / self.trials as f64
        }
    }
}

impl StorageArray {
    /// New array.
    ///
    /// # Panics
    ///
    /// Panics if there are no data disks or `fail_rate ∉ [0, 1]`.
    pub fn new(
        data_disks: usize,
        parity_disks: usize,
        fail_rate: f64,
        rebuild_steps: usize,
    ) -> Self {
        assert!(data_disks > 0, "array needs at least one data disk");
        assert!(
            (0.0..=1.0).contains(&fail_rate),
            "failure rate must be in [0,1]"
        );
        StorageArray {
            data_disks,
            parity_disks,
            fail_rate,
            rebuild_steps,
        }
    }

    /// Total disks.
    pub fn total_disks(&self) -> usize {
        self.data_disks + self.parity_disks
    }

    /// Simulate one array lifetime; returns the step at which data was
    /// lost, or `None` if it survived `horizon` steps.
    pub fn simulate_to_loss<R: Rng + ?Sized>(&self, horizon: usize, rng: &mut R) -> Option<usize> {
        let n = self.total_disks();
        // remaining rebuild time per disk; 0 = healthy.
        let mut down: Vec<usize> = vec![0; n];
        for t in 1..=horizon {
            // Rebuild progress.
            for d in down.iter_mut() {
                if *d > 0 {
                    *d -= 1;
                }
            }
            // New failures.
            for d in down.iter_mut() {
                if *d == 0 && rng.gen_bool(self.fail_rate) {
                    *d = self.rebuild_steps.max(1);
                }
            }
            let failed = down.iter().filter(|&&d| d > 0).count();
            if failed > self.parity_disks {
                return Some(t);
            }
        }
        None
    }

    /// Monte-Carlo batch over `trials` lifetimes of `horizon` steps.
    pub fn run_trials<R: Rng + ?Sized>(
        &self,
        horizon: usize,
        trials: usize,
        rng: &mut R,
    ) -> StorageOutcome {
        let mut losses = 0;
        let mut loss_steps = 0usize;
        for _ in 0..trials {
            if let Some(t) = self.simulate_to_loss(horizon, rng) {
                losses += 1;
                loss_steps += t;
            }
        }
        StorageOutcome {
            trials,
            data_losses: losses,
            mean_steps_to_loss: (losses > 0).then(|| loss_steps as f64 / losses as f64),
        }
    }

    /// Monte-Carlo batch distributed over the context's thread budget.
    ///
    /// Trial `i` runs on its own rng derived from `(master_seed, i)`, so
    /// the outcome is a pure function of `master_seed` no matter how many
    /// threads execute it (unlike [`StorageArray::run_trials`], which
    /// threads one rng through every trial).
    pub fn run_trials_par(
        &self,
        horizon: usize,
        trials: usize,
        master_seed: u64,
        ctx: &RunContext,
    ) -> StorageOutcome {
        let (losses, loss_steps) = ctx.run_trials(
            trials as u64,
            master_seed,
            |_, rng| self.simulate_to_loss(horizon, rng),
            (0usize, 0usize),
            |(losses, steps), outcome| match outcome {
                Some(t) => (losses + 1, steps + t),
                None => (losses, steps),
            },
        );
        StorageOutcome {
            trials,
            data_losses: losses,
            mean_steps_to_loss: (losses > 0).then(|| loss_steps as f64 / losses as f64),
        }
    }

    /// Exact probability that more than `parity` of the disks are down in
    /// a single *independent snapshot* where each disk is down with
    /// probability `p_down` — a closed-form cross-check for the
    /// no-rebuild limiting case.
    pub fn snapshot_loss_probability(&self, p_down: f64) -> f64 {
        let n = self.total_disks();
        let k = self.parity_disks;
        // 1 − Σ_{i=0..k} C(n,i) p^i (1−p)^(n−i)
        let mut survive = 0.0;
        for i in 0..=k.min(n) {
            survive += binom(n, i) * p_down.powi(i as i32) * (1.0 - p_down).powi((n - i) as i32);
        }
        1.0 - survive
    }
}

fn binom(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut r = 1.0;
    for i in 0..k {
        r = r * (n - i) as f64 / (i + 1) as f64;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::seeded_rng;

    #[test]
    fn no_failures_means_survival() {
        let mut rng = seeded_rng(151);
        let a = StorageArray::new(8, 1, 0.0, 10);
        assert_eq!(a.simulate_to_loss(1_000, &mut rng), None);
        let out = a.run_trials(1_000, 50, &mut rng);
        assert_eq!(out.survival_probability(), 1.0);
        assert_eq!(out.mean_steps_to_loss, None);
    }

    #[test]
    fn zero_parity_loses_on_first_failure() {
        let mut rng = seeded_rng(152);
        let a = StorageArray::new(4, 0, 1.0, 10);
        assert_eq!(a.simulate_to_loss(10, &mut rng), Some(1));
    }

    /// The E8(a) reproduction: more parity ⇒ strictly better survival.
    #[test]
    fn parity_ladder_improves_survival() {
        let mut rng = seeded_rng(153);
        let mut survival = Vec::new();
        for parity in 0..=3 {
            let a = StorageArray::new(8, parity, 0.002, 2);
            let out = a.run_trials(300, 400, &mut rng);
            survival.push(out.survival_probability());
        }
        for w in survival.windows(2) {
            assert!(w[1] >= w[0], "ladder {survival:?}");
        }
        assert!(survival[0] < 0.05, "no redundancy dies: {}", survival[0]);
        assert!(survival[3] > 0.6, "triple parity thrives: {}", survival[3]);
    }

    #[test]
    fn faster_rebuild_improves_survival() {
        let mut rng = seeded_rng(154);
        let slow = StorageArray::new(8, 1, 0.003, 10).run_trials(100, 400, &mut rng);
        let fast = StorageArray::new(8, 1, 0.003, 1).run_trials(100, 400, &mut rng);
        assert!(
            fast.survival_probability() > slow.survival_probability() + 0.1,
            "fast {} vs slow {}",
            fast.survival_probability(),
            slow.survival_probability()
        );
    }

    #[test]
    fn snapshot_formula_matches_binomial() {
        let a = StorageArray::new(3, 1, 0.0, 1);
        // n=4, k=1, p=0.5: survive = C(4,0)·0.0625 + C(4,1)·0.0625 =
        // 0.0625 + 0.25 = 0.3125 ⇒ loss 0.6875.
        let loss = a.snapshot_loss_probability(0.5);
        assert!((loss - 0.6875).abs() < 1e-12);
        // p=0 ⇒ no loss; p=1 ⇒ certain loss (n > k).
        assert_eq!(a.snapshot_loss_probability(0.0), 0.0);
        assert!((a.snapshot_loss_probability(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_loss_decreases_with_parity() {
        let p = 0.1;
        let mut prev = 1.0;
        for parity in 0..4 {
            let a = StorageArray::new(6, parity, 0.0, 1);
            let loss = a.snapshot_loss_probability(p);
            assert!(loss < prev);
            prev = loss;
        }
    }

    #[test]
    #[should_panic(expected = "data disk")]
    fn rejects_empty_array() {
        let _ = StorageArray::new(0, 1, 0.1, 1);
    }

    #[test]
    fn parallel_batch_is_thread_count_invariant() {
        let a = StorageArray::new(8, 1, 0.004, 2);
        let serial = a.run_trials_par(200, 300, 42, &RunContext::new(7));
        let parallel = a.run_trials_par(200, 300, 42, &RunContext::with_threads(7, 4));
        assert_eq!(serial, parallel);
        assert!(
            serial.survival_probability() < 1.0,
            "failures expected at this rate"
        );
    }
}

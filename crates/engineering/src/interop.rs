//! Interoperability as redundancy (the paper's §3.1.3).
//!
//! "When the United States was attacked … the police departments, the fire
//! departments, and the secret service had difficulty in communication and
//! coordination due to the lack of interoperability between their
//! communication equipments. Interoperability enables one component to
//! function as a back-up of another component. Thus, interoperability is a
//! form of redundancy in this context."
//!
//! Model: `n` agencies each run their own communication service. Each
//! service fails independently per step. An agency is *operational* if its
//! own service is up, or — when interoperability is enabled — if any other
//! agency's service is up (at reduced effectiveness). The mission needs at
//! least `quorum` operational agencies.

use rand::Rng;
use resilience_core::RunContext;

/// The interoperability scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct InteropModel {
    /// Number of agencies/services.
    pub agencies: usize,
    /// Per-service, per-step failure probability.
    pub failure_rate: f64,
    /// Whether agencies can use each other's surviving services.
    pub interoperable: bool,
    /// Minimum operational agencies for the joint mission.
    pub quorum: usize,
}

/// Outcome of an interoperability batch.
#[derive(Debug, Clone, PartialEq)]
pub struct InteropOutcome {
    /// Steps evaluated.
    pub steps: usize,
    /// Steps on which the mission had quorum.
    pub mission_capable_steps: usize,
}

impl InteropOutcome {
    /// Fraction of steps with quorum.
    pub fn availability(&self) -> f64 {
        if self.steps == 0 {
            1.0
        } else {
            self.mission_capable_steps as f64 / self.steps as f64
        }
    }
}

impl InteropModel {
    /// New scenario.
    ///
    /// # Panics
    ///
    /// Panics if `agencies == 0`, `quorum > agencies`, or the rate is
    /// outside `[0, 1]`.
    pub fn new(agencies: usize, failure_rate: f64, interoperable: bool, quorum: usize) -> Self {
        assert!(agencies > 0, "need at least one agency");
        assert!(quorum <= agencies, "quorum cannot exceed agency count");
        assert!(
            (0.0..=1.0).contains(&failure_rate),
            "failure rate must be in [0,1]"
        );
        InteropModel {
            agencies,
            failure_rate,
            interoperable,
            quorum,
        }
    }

    /// Simulate `steps` independent steps.
    pub fn run<R: Rng + ?Sized>(&self, steps: usize, rng: &mut R) -> InteropOutcome {
        let mut capable = 0;
        for _ in 0..steps {
            let up: Vec<bool> = (0..self.agencies)
                .map(|_| !rng.gen_bool(self.failure_rate))
                .collect();
            let any_up = up.iter().any(|&u| u);
            let operational = up
                .iter()
                .filter(|&&own| own || (self.interoperable && any_up))
                .count();
            if operational >= self.quorum {
                capable += 1;
            }
        }
        InteropOutcome {
            steps,
            mission_capable_steps: capable,
        }
    }

    /// Simulate `steps` independent steps distributed over the context's
    /// thread budget. Steps are i.i.d., so each one is its own trial with
    /// an rng derived from `(master_seed, step)`; the outcome is a pure
    /// function of `master_seed` for every thread count.
    pub fn run_par(&self, steps: usize, master_seed: u64, ctx: &RunContext) -> InteropOutcome {
        let capable = ctx.run_trials(
            steps as u64,
            master_seed,
            |_, rng| {
                let up: Vec<bool> = (0..self.agencies)
                    .map(|_| !rng.gen_bool(self.failure_rate))
                    .collect();
                let any_up = up.iter().any(|&u| u);
                let operational = up
                    .iter()
                    .filter(|&&own| own || (self.interoperable && any_up))
                    .count();
                operational >= self.quorum
            },
            0usize,
            |capable, met| capable + usize::from(met),
        );
        InteropOutcome {
            steps,
            mission_capable_steps: capable,
        }
    }

    /// Closed-form per-step quorum probability.
    pub fn analytic_availability(&self) -> f64 {
        let n = self.agencies;
        let p_up = 1.0 - self.failure_rate;
        if self.interoperable {
            // With interop, every agency is operational as long as ANY
            // service survives; quorum met unless all services fail
            // (quorum 0 is always met).
            if self.quorum == 0 {
                1.0
            } else {
                1.0 - self.failure_rate.powi(n as i32)
            }
        } else {
            // P(at least quorum of n services up).
            let mut p = 0.0;
            for k in self.quorum..=n {
                p += binom(n, k) * p_up.powi(k as i32) * self.failure_rate.powi((n - k) as i32);
            }
            p
        }
    }
}

fn binom(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut r = 1.0;
    for i in 0..k {
        r = r * (n - i) as f64 / (i + 1) as f64;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::seeded_rng;

    /// The E8(d) reproduction: interoperability turns n fragile silos into
    /// an n-way redundant system.
    #[test]
    fn interoperability_boosts_availability() {
        let mut rng = seeded_rng(191);
        let silo = InteropModel::new(3, 0.2, false, 3);
        let interop = InteropModel::new(3, 0.2, true, 3);
        let silo_out = silo.run(50_000, &mut rng);
        let interop_out = interop.run(50_000, &mut rng);
        // Silos: all three must be up: 0.8³ = 0.512.
        assert!((silo_out.availability() - 0.512).abs() < 0.02);
        // Interop: any service up suffices: 1 − 0.2³ = 0.992.
        assert!((interop_out.availability() - 0.992).abs() < 0.01);
        assert!(interop_out.availability() > silo_out.availability() + 0.4);
    }

    #[test]
    fn analytic_matches_simulation() {
        let mut rng = seeded_rng(192);
        for interop in [false, true] {
            let m = InteropModel::new(4, 0.3, interop, 2);
            let sim = m.run(100_000, &mut rng).availability();
            let exact = m.analytic_availability();
            assert!(
                (sim - exact).abs() < 0.01,
                "interop={interop}: sim {sim} vs exact {exact}"
            );
        }
    }

    #[test]
    fn quorum_zero_is_always_met() {
        let mut rng = seeded_rng(193);
        let m = InteropModel::new(2, 1.0, true, 0);
        assert_eq!(m.run(100, &mut rng).availability(), 1.0);
        assert_eq!(m.analytic_availability(), 1.0);
    }

    #[test]
    fn certain_failure_without_interop() {
        let m = InteropModel::new(3, 1.0, false, 1);
        assert_eq!(m.analytic_availability(), 0.0);
    }

    #[test]
    #[should_panic(expected = "quorum")]
    fn rejects_impossible_quorum() {
        let _ = InteropModel::new(2, 0.1, true, 3);
    }

    #[test]
    fn parallel_batch_is_thread_count_invariant() {
        let m = InteropModel::new(4, 0.3, false, 2);
        let serial = m.run_par(5_000, 21, &RunContext::new(9));
        let parallel = m.run_par(5_000, 21, &RunContext::with_threads(9, 4));
        assert_eq!(serial, parallel);
        assert!((serial.availability() - m.analytic_availability()).abs() < 0.03);
    }
}

//! Investment diversification (the paper's §3.2.3).
//!
//! "To invest all the money on the stock with the highest expected return
//! is the optimal solution if [maximizing expected return] is the goal. It
//! is also a risky strategy because the investor loses all the money if
//! the invested company bankrupts. By diversifying the investments, the
//! investor can significantly reduce the risk of catastrophic loss in
//! exchange for a slightly lower expected return."
//!
//! Model: `n` risky assets. Each period an asset returns a Gaussian gain
//! unless its issuer goes bankrupt (probability `bankruptcy` per period),
//! in which case that holding goes to zero permanently. Compare all-in on
//! the best asset vs. an equal-weight portfolio.

use rand::Rng;
use resilience_core::RunContext;

/// A universe of i.i.d.-ish risky assets; asset `0` has the highest drift.
#[derive(Debug, Clone, PartialEq)]
pub struct Portfolio {
    /// Number of assets held (1 = concentrated).
    pub holdings: usize,
    /// Per-period expected return of the best asset (e.g. 0.08).
    pub best_drift: f64,
    /// Drift penalty per additional asset (diversified assets are slightly
    /// worse than the single best one; e.g. 0.002).
    pub drift_spread: f64,
    /// Per-period return volatility.
    pub volatility: f64,
    /// Per-period, per-asset bankruptcy probability.
    pub bankruptcy: f64,
}

/// Outcome of a wealth-trajectory batch.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioOutcome {
    /// Trials run.
    pub trials: usize,
    /// Mean final wealth (initial = 1).
    pub mean_wealth: f64,
    /// Trials ending below 10% of initial wealth (catastrophic loss).
    pub catastrophic_losses: usize,
}

impl PortfolioOutcome {
    /// Probability of catastrophic loss.
    pub fn ruin_probability(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.catastrophic_losses as f64 / self.trials as f64
        }
    }
}

impl Portfolio {
    /// Concentrated bet on the single best asset.
    pub fn concentrated(best_drift: f64, volatility: f64, bankruptcy: f64) -> Self {
        Portfolio {
            holdings: 1,
            best_drift,
            drift_spread: 0.0,
            volatility,
            bankruptcy,
        }
    }

    /// Equal-weight portfolio over `holdings` assets.
    ///
    /// # Panics
    ///
    /// Panics if `holdings == 0`.
    pub fn diversified(
        holdings: usize,
        best_drift: f64,
        drift_spread: f64,
        volatility: f64,
        bankruptcy: f64,
    ) -> Self {
        assert!(holdings > 0, "a portfolio needs at least one holding");
        Portfolio {
            holdings,
            best_drift,
            drift_spread,
            volatility,
            bankruptcy,
        }
    }

    /// Expected per-period portfolio return (ignoring bankruptcy).
    pub fn expected_return(&self) -> f64 {
        // Asset i has drift best − i·spread; equal weights.
        let n = self.holdings as f64;
        self.best_drift - self.drift_spread * (n - 1.0) / 2.0
    }

    /// Simulate one wealth trajectory over `periods`; returns final wealth
    /// (initial 1.0).
    pub fn simulate<R: Rng + ?Sized>(&self, periods: usize, rng: &mut R) -> f64 {
        let n = self.holdings;
        let weight = 1.0 / n as f64;
        let mut values: Vec<f64> = vec![weight; n];
        let mut bankrupt = vec![false; n];
        for _ in 0..periods {
            for i in 0..n {
                if bankrupt[i] {
                    continue;
                }
                if rng.gen_bool(self.bankruptcy) {
                    bankrupt[i] = true;
                    values[i] = 0.0;
                    continue;
                }
                let drift = self.best_drift - self.drift_spread * i as f64;
                let z = gauss(rng);
                values[i] *= (1.0 + drift + self.volatility * z).max(0.0);
            }
        }
        values.iter().sum()
    }

    /// Run a batch of trials over `periods`.
    pub fn run_trials<R: Rng + ?Sized>(
        &self,
        periods: usize,
        trials: usize,
        rng: &mut R,
    ) -> PortfolioOutcome {
        let mut wealth_sum = 0.0;
        let mut catastrophic = 0;
        for _ in 0..trials {
            let w = self.simulate(periods, rng);
            wealth_sum += w;
            if w < 0.1 {
                catastrophic += 1;
            }
        }
        PortfolioOutcome {
            trials,
            mean_wealth: wealth_sum / trials.max(1) as f64,
            catastrophic_losses: catastrophic,
        }
    }

    /// Run a batch of trials distributed over the context's thread
    /// budget; trajectory `i` runs on an rng derived from
    /// `(master_seed, i)`, so the outcome only depends on `master_seed`.
    pub fn run_trials_par(
        &self,
        periods: usize,
        trials: usize,
        master_seed: u64,
        ctx: &RunContext,
    ) -> PortfolioOutcome {
        let (wealth_sum, catastrophic) = ctx.run_trials(
            trials as u64,
            master_seed,
            |_, rng| self.simulate(periods, rng),
            (0.0f64, 0usize),
            |(sum, cat), w| (sum + w, cat + usize::from(w < 0.1)),
        );
        PortfolioOutcome {
            trials,
            mean_wealth: wealth_sum / trials.max(1) as f64,
            catastrophic_losses: catastrophic,
        }
    }
}

fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::seeded_rng;

    #[test]
    fn expected_return_ordering() {
        let conc = Portfolio::concentrated(0.08, 0.1, 0.01);
        let div = Portfolio::diversified(10, 0.08, 0.002, 0.1, 0.01);
        assert!((conc.expected_return() - 0.08).abs() < 1e-12);
        // 0.08 − 0.002·4.5 = 0.071: slightly lower, as the paper says.
        assert!((div.expected_return() - 0.071).abs() < 1e-12);
        assert!(div.expected_return() < conc.expected_return());
        assert!(div.expected_return() > 0.8 * conc.expected_return());
    }

    /// The E10(a) reproduction: diversification trades a sliver of return
    /// for an order of magnitude less ruin.
    #[test]
    fn diversification_slashes_ruin_probability() {
        let mut rng = seeded_rng(211);
        let periods = 30;
        let trials = 4_000;
        let conc = Portfolio::concentrated(0.08, 0.15, 0.01).run_trials(periods, trials, &mut rng);
        let div = Portfolio::diversified(10, 0.08, 0.002, 0.15, 0.01)
            .run_trials(periods, trials, &mut rng);
        // Concentrated: ruin ≈ 1 − 0.99³⁰ ≈ 0.26.
        assert!(
            conc.ruin_probability() > 0.15,
            "concentrated ruin {}",
            conc.ruin_probability()
        );
        // Diversified: losing ≥ 90% needs ~9/10 bankruptcies — essentially
        // never.
        assert!(
            div.ruin_probability() < 0.02,
            "diversified ruin {}",
            div.ruin_probability()
        );
        assert!(div.ruin_probability() < 0.2 * conc.ruin_probability());
    }

    #[test]
    fn no_bankruptcy_no_ruin() {
        let mut rng = seeded_rng(212);
        let p = Portfolio::concentrated(0.05, 0.05, 0.0);
        let out = p.run_trials(20, 500, &mut rng);
        assert_eq!(out.ruin_probability(), 0.0);
        assert!(out.mean_wealth > 1.5); // compounding drift
    }

    #[test]
    fn bankruptcy_zeroes_the_holding() {
        let mut rng = seeded_rng(213);
        let p = Portfolio::concentrated(0.05, 0.05, 1.0);
        assert_eq!(p.simulate(1, &mut rng), 0.0);
    }

    #[test]
    fn wealth_is_nonnegative() {
        let mut rng = seeded_rng(214);
        let p = Portfolio::diversified(5, 0.0, 0.0, 0.8, 0.05);
        for _ in 0..200 {
            assert!(p.simulate(50, &mut rng) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one holding")]
    fn rejects_empty_portfolio() {
        let _ = Portfolio::diversified(0, 0.1, 0.0, 0.1, 0.0);
    }

    #[test]
    fn parallel_batch_is_thread_count_invariant() {
        let p = Portfolio::diversified(5, 0.05, 0.002, 0.15, 0.01);
        let serial = p.run_trials_par(30, 400, 17, &RunContext::new(1));
        let parallel = p.run_trials_par(30, 400, 17, &RunContext::with_threads(1, 4));
        assert_eq!(serial, parallel);
    }
}

//! The MAPE autonomic-computing loop (the paper's §3.3.2).
//!
//! "IBM proposed the concept of Autonomic Computing in 2003. This
//! architecture is based on so-called the MAPE (Monitor - Analyze - Plan -
//! Execute) cycles. … the fundamental strategy is to make the system more
//! adaptable — it senses the changes and reacts automatically to handle
//! the situations."
//!
//! Model: the environment demands a target configuration that drifts over
//! time; the managed system runs a MAPE cycle each step — **M**onitor the
//! target through a (possibly noisy) sensor, **A**nalyze the mismatch,
//! **P**lan which bits to fix, **E**xecute up to `adaptation_rate` flips.
//! Adaptability is exactly the paper's "relative speed of the system's
//! capability to adapt against environmental changes": the race between
//! `adaptation_rate` and the drift rate.

use rand::Rng;

use resilience_core::{Config, TimeSeries};

/// A MAPE-managed system tracking a drifting target.
#[derive(Debug, Clone, PartialEq)]
pub struct MapeLoop {
    /// Configuration length.
    pub n_bits: usize,
    /// Bits the Execute phase can flip per cycle (the adaptability knob).
    pub adaptation_rate: usize,
    /// Probability that Monitor misreads a bit of the target per cycle.
    pub sensor_noise: f64,
}

/// Result of a tracking run.
#[derive(Debug, Clone, PartialEq)]
pub struct MapeOutcome {
    /// Hamming mismatch to the true target per step.
    pub error: TimeSeries,
    /// Steps on which the system matched the target exactly.
    pub steps_in_sync: usize,
    /// Steps simulated.
    pub steps: usize,
}

impl MapeOutcome {
    /// Mean tracking error.
    pub fn mean_error(&self) -> f64 {
        self.error.mean()
    }

    /// Fraction of steps exactly in sync.
    pub fn sync_fraction(&self) -> f64 {
        if self.steps == 0 {
            1.0
        } else {
            self.steps_in_sync as f64 / self.steps as f64
        }
    }
}

impl MapeLoop {
    /// New loop.
    ///
    /// # Panics
    ///
    /// Panics if `n_bits == 0` or `sensor_noise ∉ [0, 1]`.
    pub fn new(n_bits: usize, adaptation_rate: usize, sensor_noise: f64) -> Self {
        assert!(n_bits > 0, "need at least one managed variable");
        assert!(
            (0.0..=1.0).contains(&sensor_noise),
            "sensor noise must be in [0,1]"
        );
        MapeLoop {
            n_bits,
            adaptation_rate,
            sensor_noise,
        }
    }

    /// Run `steps` MAPE cycles against a target that flips `drift_rate`
    /// random bits per cycle.
    pub fn track_drift<R: Rng + ?Sized>(
        &self,
        steps: usize,
        drift_rate: usize,
        rng: &mut R,
    ) -> MapeOutcome {
        let mut target = Config::random(self.n_bits, rng);
        let mut state = target.clone(); // start in sync
        let mut error = TimeSeries::new();
        let mut steps_in_sync = 0;
        for _ in 0..steps {
            // Environment drifts.
            target.flip_random(drift_rate, rng);
            // Monitor: sense the target with noise.
            let mut sensed = target.clone();
            if self.sensor_noise > 0.0 {
                sensed.mutate(self.sensor_noise, rng);
            }
            // Analyze: diff sensed target against state.
            let mismatched = state
                .differing_bits(&sensed)
                .expect("lengths match by construction");
            // Plan: fix the first `adaptation_rate` mismatches.
            // Execute.
            for &bit in mismatched.iter().take(self.adaptation_rate) {
                state.flip(bit);
            }
            let err = state.hamming(&target).expect("lengths match");
            error.push(err as f64);
            if err == 0 {
                steps_in_sync += 1;
            }
        }
        MapeOutcome {
            error,
            steps_in_sync,
            steps,
        }
    }

    /// Recovery drill: the system starts `displacement` bits away from a
    /// *static* target; returns the number of cycles to full sync (`None`
    /// if not reached within `max_steps` — only possible with sensor
    /// noise).
    pub fn recovery_time<R: Rng + ?Sized>(
        &self,
        displacement: usize,
        max_steps: usize,
        rng: &mut R,
    ) -> Option<usize> {
        let target = Config::random(self.n_bits, rng);
        let mut state = target.clone();
        state.flip_random(displacement, rng);
        for t in 1..=max_steps {
            let mut sensed = target.clone();
            if self.sensor_noise > 0.0 {
                sensed.mutate(self.sensor_noise, rng);
            }
            let mismatched = state.differing_bits(&sensed).expect("lengths match");
            for &bit in mismatched.iter().take(self.adaptation_rate) {
                state.flip(bit);
            }
            if state == target {
                return Some(t);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::seeded_rng;

    #[test]
    fn static_target_perfect_sensor_stays_synced() {
        let mut rng = seeded_rng(201);
        let m = MapeLoop::new(32, 4, 0.0);
        let out = m.track_drift(200, 0, &mut rng);
        assert_eq!(out.sync_fraction(), 1.0);
        assert_eq!(out.mean_error(), 0.0);
    }

    /// The E11 reproduction: adaptation must outpace the drift.
    #[test]
    fn adaptation_rate_races_drift_rate() {
        let mut rng = seeded_rng(202);
        let drift = 3;
        // Slower than drift: error grows to saturation (half the bits).
        let slow = MapeLoop::new(64, 1, 0.0).track_drift(2_000, drift, &mut rng);
        // Faster than drift: error stays near drift size.
        let fast = MapeLoop::new(64, 8, 0.0).track_drift(2_000, drift, &mut rng);
        assert!(
            slow.mean_error() > 20.0,
            "slow adaptation drowns: {}",
            slow.mean_error()
        );
        assert!(
            fast.mean_error() < 4.0,
            "fast adaptation tracks: {}",
            fast.mean_error()
        );
        assert!(fast.sync_fraction() > slow.sync_fraction());
    }

    #[test]
    fn recovery_time_is_ceil_displacement_over_rate() {
        let mut rng = seeded_rng(203);
        for (disp, rate, expect) in [(8usize, 2usize, 4usize), (9, 2, 5), (5, 5, 1), (1, 3, 1)] {
            let m = MapeLoop::new(32, rate, 0.0);
            assert_eq!(
                m.recovery_time(disp, 100, &mut rng),
                Some(expect),
                "disp {disp} rate {rate}"
            );
        }
    }

    #[test]
    fn zero_adaptation_never_recovers() {
        let mut rng = seeded_rng(204);
        let m = MapeLoop::new(16, 0, 0.0);
        assert_eq!(m.recovery_time(3, 200, &mut rng), None);
    }

    #[test]
    fn sensor_noise_degrades_tracking() {
        let mut rng = seeded_rng(205);
        let clean = MapeLoop::new(64, 8, 0.0).track_drift(2_000, 2, &mut rng);
        let noisy = MapeLoop::new(64, 8, 0.1).track_drift(2_000, 2, &mut rng);
        assert!(
            noisy.mean_error() > clean.mean_error(),
            "noisy {} vs clean {}",
            noisy.mean_error(),
            clean.mean_error()
        );
    }

    #[test]
    #[should_panic(expected = "managed variable")]
    fn rejects_zero_bits() {
        let _ = MapeLoop::new(0, 1, 0.0);
    }
}

//! Engineered-system resilience models (the paper's §3.1.2, §3.1.3,
//! §3.2.2, §3.2.3, §3.3.2).
//!
//! Each module is an executable version of one of the paper's engineering
//! case studies:
//!
//! * [`storage`] — RAID-style redundant disk arrays (§3.1.2, Patterson et
//!   al.): survival under disk failures as a function of parity count.
//! * [`grid`] — the Japanese-grid reserve-margin story (§3.1.2): excess
//!   capacity lets the system lose a third of generation without blackout.
//! * [`supply_chain`] — monetary reserve as universal redundancy (§3.1.3):
//!   firms survive a revenue outage iff reserves cover the burn.
//! * [`interop`] — interoperability as mutual backup (§3.1.3, the 9/11
//!   communication story).
//! * [`nversion`] — Boeing-777-style N-version design diversity (§3.2.2):
//!   identical designs share design-flaw failures; diverse designs don't.
//! * [`portfolio`] — investment diversification (§3.2.3): slightly lower
//!   expected return, drastically lower catastrophic-loss risk.
//! * [`mape`] — the MAPE (Monitor–Analyze–Plan–Execute) autonomic loop
//!   (§3.3.2, Kephart & Chess): adaptability as tracking speed.
//! * [`response`] — emergency response structures (§3.4.3, ISO 22320):
//!   centralized dispatch vs. empowered on-site teams.
//! * [`regulation`] — regulatory adaptability (§3.3.3): slow top-down
//!   legislation vs. fast co-regulation.
//!
//! # Example
//!
//! ```
//! use resilience_engineering::{DesignStrategy, NVersionController};
//!
//! // The Boeing 777 story: identical designs share common-mode flaws.
//! let identical = NVersionController::new(3, DesignStrategy::Identical, 0.01, 0.01);
//! let diverse = NVersionController::new(3, DesignStrategy::Diverse, 0.01, 0.01);
//! assert!(diverse.analytic_failure_probability() < identical.analytic_failure_probability());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod interop;
pub mod mape;
pub mod nversion;
pub mod portfolio;
pub mod regulation;
pub mod response;
pub mod storage;
pub mod supply_chain;

pub use grid::{GridOutcome, PowerGrid};
pub use interop::{InteropModel, InteropOutcome};
pub use mape::{MapeLoop, MapeOutcome};
pub use nversion::{DesignStrategy, NVersionController, NVersionOutcome};
pub use portfolio::{Portfolio, PortfolioOutcome};
pub use regulation::{track_environment, RegulationOutcome, RegulatoryRegime};
pub use response::{respond, CommandStructure, ResponseOutcome};
pub use storage::{StorageArray, StorageOutcome};
pub use supply_chain::{SupplyChain, SupplyChainOutcome};

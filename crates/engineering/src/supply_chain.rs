//! Monetary reserve as universal redundancy (the paper's §3.1.3).
//!
//! "Despite the unprecedented scale of damage they suffered, every major
//! auto company in Japan survived the crisis. One of the reasons of their
//! survival was their monetary reserve that could compensate the temporary
//! loss of the revenue. Electricity and money can be considered to be
//! universal resource, and having extra universal resource in reserve is a
//! good strategy for preparing unseen threats."
//!
//! Model: a firm earns `revenue` and pays `fixed_costs` per period. A
//! disruption stops revenue for a random duration; the firm survives while
//! `reserve ≥ 0`.

use rand::Rng;
use resilience_core::RunContext;

/// A firm in a disruptable supply chain.
#[derive(Debug, Clone, PartialEq)]
pub struct SupplyChain {
    /// Revenue per period while suppliers deliver.
    pub revenue: f64,
    /// Fixed costs per period, paid no matter what.
    pub fixed_costs: f64,
    /// Monetary reserve at the start (the redundancy investment).
    pub initial_reserve: f64,
}

/// Outcome of a disruption batch.
#[derive(Debug, Clone, PartialEq)]
pub struct SupplyChainOutcome {
    /// Trials run.
    pub trials: usize,
    /// Trials in which the firm stayed solvent.
    pub survived: usize,
    /// Mean reserve remaining among survivors.
    pub mean_final_reserve: f64,
}

impl SupplyChainOutcome {
    /// Fraction of trials survived.
    pub fn survival_probability(&self) -> f64 {
        if self.trials == 0 {
            1.0
        } else {
            self.survived as f64 / self.trials as f64
        }
    }
}

impl SupplyChain {
    /// New firm.
    ///
    /// # Panics
    ///
    /// Panics if revenue or costs are negative/non-finite, or the reserve
    /// is negative.
    pub fn new(revenue: f64, fixed_costs: f64, initial_reserve: f64) -> Self {
        assert!(
            revenue.is_finite() && revenue >= 0.0,
            "revenue must be non-negative"
        );
        assert!(
            fixed_costs.is_finite() && fixed_costs >= 0.0,
            "costs must be non-negative"
        );
        assert!(
            initial_reserve.is_finite() && initial_reserve >= 0.0,
            "reserve must be non-negative"
        );
        SupplyChain {
            revenue,
            fixed_costs,
            initial_reserve,
        }
    }

    /// Deterministic survival horizon of a total revenue outage: the
    /// number of whole periods the reserve covers the burn.
    pub fn runway_periods(&self) -> usize {
        if self.fixed_costs <= 0.0 {
            return usize::MAX;
        }
        (self.initial_reserve / self.fixed_costs).floor() as usize
    }

    /// Simulate one episode: normal operation for `lead_in` periods, a
    /// revenue outage of `outage` periods, then recovery for `tail`
    /// periods. Returns the final reserve, or `None` if the firm went
    /// insolvent.
    pub fn simulate_outage(&self, lead_in: usize, outage: usize, tail: usize) -> Option<f64> {
        let mut reserve = self.initial_reserve;
        let phases = [(lead_in, self.revenue), (outage, 0.0), (tail, self.revenue)];
        for (periods, income) in phases {
            for _ in 0..periods {
                reserve += income - self.fixed_costs;
                if reserve < 0.0 {
                    return None;
                }
            }
        }
        Some(reserve)
    }

    /// Monte-Carlo batch: outage durations are geometric with mean
    /// `mean_outage` periods.
    pub fn run_trials<R: Rng + ?Sized>(
        &self,
        mean_outage: f64,
        trials: usize,
        rng: &mut R,
    ) -> SupplyChainOutcome {
        assert!(mean_outage > 0.0, "mean outage must be positive");
        let p = 1.0 / mean_outage;
        let mut survived = 0;
        let mut reserve_sum = 0.0;
        for _ in 0..trials {
            // Geometric duration (number of failures before first success).
            let mut outage = 0usize;
            while !rng.gen_bool(p.clamp(1e-9, 1.0)) && outage < 100_000 {
                outage += 1;
            }
            if let Some(r) = self.simulate_outage(4, outage, 4) {
                survived += 1;
                reserve_sum += r;
            }
        }
        SupplyChainOutcome {
            trials,
            survived,
            mean_final_reserve: if survived > 0 {
                reserve_sum / survived as f64
            } else {
                0.0
            },
        }
    }

    /// Monte-Carlo batch distributed over the context's thread budget;
    /// trial `i` draws its outage from an rng derived from
    /// `(master_seed, i)`, so the outcome only depends on `master_seed`.
    pub fn run_trials_par(
        &self,
        mean_outage: f64,
        trials: usize,
        master_seed: u64,
        ctx: &RunContext,
    ) -> SupplyChainOutcome {
        assert!(mean_outage > 0.0, "mean outage must be positive");
        let p = 1.0 / mean_outage;
        let (survived, reserve_sum) = ctx.run_trials(
            trials as u64,
            master_seed,
            |_, rng| {
                let mut outage = 0usize;
                while !rng.gen_bool(p.clamp(1e-9, 1.0)) && outage < 100_000 {
                    outage += 1;
                }
                self.simulate_outage(4, outage, 4)
            },
            (0usize, 0.0f64),
            |(survived, sum), outcome| match outcome {
                Some(r) => (survived + 1, sum + r),
                None => (survived, sum),
            },
        );
        SupplyChainOutcome {
            trials,
            survived,
            mean_final_reserve: if survived > 0 {
                reserve_sum / survived as f64
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::seeded_rng;

    #[test]
    fn runway_formula() {
        let firm = SupplyChain::new(10.0, 5.0, 50.0);
        assert_eq!(firm.runway_periods(), 10);
        let costless = SupplyChain::new(10.0, 0.0, 0.0);
        assert_eq!(costless.runway_periods(), usize::MAX);
    }

    #[test]
    fn outage_within_runway_is_survivable() {
        // Reserve 50, burn 5/period ⇒ runway 10 periods.
        let firm = SupplyChain::new(10.0, 5.0, 50.0);
        // Lead-in earns 4·5 = 20 extra; outage of 14 burns 70 ⇒ reserve
        // ends at 0 at the edge… survive.
        assert!(firm.simulate_outage(4, 14, 0).is_some());
        // One more period of outage sinks it.
        assert!(firm.simulate_outage(4, 15, 0).is_none());
    }

    #[test]
    fn profitable_firm_recovers_reserve() {
        let firm = SupplyChain::new(10.0, 5.0, 20.0);
        let end = firm.simulate_outage(0, 2, 10).unwrap();
        // 20 − 2·5 + 10·5 = 60.
        assert!((end - 60.0).abs() < 1e-12);
    }

    /// The E8(c) reproduction: survival probability rises with reserve.
    #[test]
    fn reserve_ladder_improves_survival() {
        let mut rng = seeded_rng(181);
        let mut survival = Vec::new();
        for reserve in [0.0, 20.0, 60.0, 150.0] {
            let firm = SupplyChain::new(10.0, 5.0, reserve);
            let out = firm.run_trials(10.0, 2_000, &mut rng);
            survival.push(out.survival_probability());
        }
        for w in survival.windows(2) {
            assert!(w[1] >= w[0] - 0.02, "ladder {survival:?}");
        }
        assert!(survival[0] < 0.7, "no reserve is fragile: {}", survival[0]);
        assert!(survival[3] > 0.9, "deep reserve survives: {}", survival[3]);
    }

    #[test]
    fn unprofitable_firm_dies_even_without_outage() {
        let firm = SupplyChain::new(4.0, 5.0, 10.0);
        assert!(firm.simulate_outage(20, 0, 0).is_none());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_reserve() {
        let _ = SupplyChain::new(1.0, 1.0, -5.0);
    }

    #[test]
    fn parallel_batch_is_thread_count_invariant() {
        let firm = SupplyChain::new(10.0, 5.0, 40.0);
        let serial = firm.run_trials_par(10.0, 500, 11, &RunContext::new(3));
        let parallel = firm.run_trials_par(10.0, 500, 11, &RunContext::with_threads(3, 4));
        assert_eq!(serial, parallel);
    }
}

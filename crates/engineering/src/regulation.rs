//! Regulatory adaptability (the paper's §3.3.3).
//!
//! "A legal system is usually very rigid. Laws take a long time to be
//! discussed at the parliament/diet and once they are passed they stay the
//! same for many years. However, there are other regulatory approaches …
//! co-regulation combining top-down guidances and bottom-up
//! self-regulations. Ikegai argues that co-regulation is more flexible and
//! faster to adapt to the environment change."
//!
//! Model: a scalar social norm must track a drifting environment (e.g.
//! what Internet services exist to be regulated). **Top-down** law is
//! revised only every `review_period` steps and lands `deliberation_delay`
//! steps later (parliament is slow), but each revision jumps exactly onto
//! the target as observed at revision time. **Co-regulation** nudges the
//! norm a fraction of the gap every step.

use rand::Rng;

use resilience_core::TimeSeries;

/// How the regulatory norm is updated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RegulatoryRegime {
    /// Parliament: full corrections on a slow cadence, with delay.
    TopDown {
        /// Steps between revisions.
        review_period: usize,
        /// Steps from a revision being drafted to taking effect.
        deliberation_delay: usize,
    },
    /// Stakeholder self-/co-regulation: small corrections every step.
    CoRegulation {
        /// Fraction of the current gap closed per step, in `(0, 1]`.
        step_fraction: f64,
    },
}

/// Result of a regulation-tracking run.
#[derive(Debug, Clone, PartialEq)]
pub struct RegulationOutcome {
    /// |norm − environment| per step.
    pub gap: TimeSeries,
}

impl RegulationOutcome {
    /// Mean regulatory gap over the run.
    pub fn mean_gap(&self) -> f64 {
        self.gap.mean()
    }

    /// Worst regulatory gap over the run.
    pub fn max_gap(&self) -> f64 {
        self.gap.max()
    }
}

/// Track an environment performing a Gaussian random walk with per-step
/// standard deviation `drift` for `steps` steps.
///
/// # Panics
///
/// Panics on invalid regime parameters (`step_fraction ∉ (0, 1]` or
/// `review_period == 0`).
pub fn track_environment<R: Rng + ?Sized>(
    regime: RegulatoryRegime,
    drift: f64,
    steps: usize,
    rng: &mut R,
) -> RegulationOutcome {
    match regime {
        RegulatoryRegime::TopDown { review_period, .. } => {
            assert!(review_period > 0, "review period must be positive");
        }
        RegulatoryRegime::CoRegulation { step_fraction } => {
            assert!(
                step_fraction > 0.0 && step_fraction <= 1.0,
                "step fraction must be in (0, 1]"
            );
        }
    }
    let mut environment = 0.0f64;
    let mut norm = 0.0f64;
    let mut gap = TimeSeries::new();
    // Pending top-down revision: (effective_at, new_value).
    let mut pending: Option<(usize, f64)> = None;
    for t in 0..steps {
        // Environment drifts.
        environment += drift * gaussian(rng);
        match regime {
            RegulatoryRegime::TopDown {
                review_period,
                deliberation_delay,
            } => {
                if t % review_period == 0 {
                    // Draft a bill matching today's environment…
                    pending = Some((t + deliberation_delay, environment));
                }
                if let Some((when, value)) = pending {
                    // …which becomes law only after deliberation.
                    if t >= when {
                        norm = value;
                        pending = None;
                    }
                }
            }
            RegulatoryRegime::CoRegulation { step_fraction } => {
                norm += step_fraction * (environment - norm);
            }
        }
        gap.push((environment - norm).abs());
    }
    RegulationOutcome { gap }
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::seeded_rng;

    /// The §3.3.3 claim: co-regulation tracks a fast-changing landscape
    /// more closely than slow top-down legislation.
    #[test]
    fn co_regulation_tracks_closer_than_top_down() {
        let mut rng = seeded_rng(701);
        let top_down = track_environment(
            RegulatoryRegime::TopDown {
                review_period: 50,
                deliberation_delay: 10,
            },
            0.5,
            4_000,
            &mut rng,
        );
        let co = track_environment(
            RegulatoryRegime::CoRegulation { step_fraction: 0.3 },
            0.5,
            4_000,
            &mut rng,
        );
        assert!(
            co.mean_gap() * 2.0 < top_down.mean_gap(),
            "co {} vs top-down {}",
            co.mean_gap(),
            top_down.mean_gap()
        );
        assert!(co.max_gap() < top_down.max_gap());
    }

    #[test]
    fn static_environment_needs_no_regulation_speed() {
        let mut rng = seeded_rng(702);
        let top_down = track_environment(
            RegulatoryRegime::TopDown {
                review_period: 100,
                deliberation_delay: 20,
            },
            0.0,
            1_000,
            &mut rng,
        );
        assert_eq!(top_down.mean_gap(), 0.0);
    }

    #[test]
    fn faster_review_cycles_shrink_the_gap() {
        let mut rng = seeded_rng(703);
        let slow = track_environment(
            RegulatoryRegime::TopDown {
                review_period: 200,
                deliberation_delay: 10,
            },
            0.5,
            4_000,
            &mut rng,
        );
        let fast = track_environment(
            RegulatoryRegime::TopDown {
                review_period: 20,
                deliberation_delay: 10,
            },
            0.5,
            4_000,
            &mut rng,
        );
        assert!(fast.mean_gap() < slow.mean_gap());
    }

    #[test]
    fn full_step_co_regulation_has_only_drift_noise() {
        let mut rng = seeded_rng(704);
        let co = track_environment(
            RegulatoryRegime::CoRegulation { step_fraction: 1.0 },
            0.5,
            2_000,
            &mut rng,
        );
        // Closing the whole gap each step leaves only the one-step drift.
        assert!(co.mean_gap() < 0.6);
    }

    #[test]
    #[should_panic(expected = "step fraction")]
    fn rejects_zero_step_fraction() {
        let mut rng = seeded_rng(705);
        let _ = track_environment(
            RegulatoryRegime::CoRegulation { step_fraction: 0.0 },
            0.1,
            10,
            &mut rng,
        );
    }
}

//! Emergency response structures (the paper's §3.4.3).
//!
//! "ISO 22320 … stresses the importance of empowering the employees in the
//! bottom of the hierarchy who are dealing with the situation at first
//! hand. They need to make tough decisions. They need to improvise."
//!
//! Model: a disaster damages `n` sites, each with some units of damage.
//! A **centralized** command dispatches a repair capacity of
//! `central_capacity` unit-fixes per step from headquarters, paying a
//! `dispatch_delay` of steps every time it redirects effort to a site it
//! has not yet visited (situation assessment, approvals). **Empowered**
//! local teams fix `local_capacity` units per step at every damaged site
//! simultaneously, with no dispatch overhead — but improvisation botches a
//! fix with probability `improvisation_error` (the fix must be redone).

use rand::Rng;

/// The command structure coordinating the response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CommandStructure {
    /// All repair decisions flow through headquarters.
    Centralized {
        /// Unit-fixes per step of the central team.
        capacity: usize,
        /// Steps of overhead each time a new site is engaged.
        dispatch_delay: usize,
    },
    /// On-site teams act on their own authority.
    Empowered {
        /// Unit-fixes per step per site.
        local_capacity: usize,
        /// Probability a fix fails and must be redone (improvisation
        /// risk).
        improvisation_error: f64,
    },
}

/// Result of one response simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseOutcome {
    /// Steps until every site was fully repaired (or the step cap).
    pub recovery_steps: usize,
    /// Whether recovery completed within the cap.
    pub completed: bool,
}

/// Simulate a response to `damage` (units per site) under `structure`,
/// capped at `max_steps`.
///
/// # Panics
///
/// Panics on zero capacities or an error probability outside `[0, 1)`.
pub fn respond<R: Rng + ?Sized>(
    damage: &[usize],
    structure: CommandStructure,
    max_steps: usize,
    rng: &mut R,
) -> ResponseOutcome {
    match structure {
        CommandStructure::Centralized {
            capacity,
            dispatch_delay,
        } => {
            assert!(capacity > 0, "central capacity must be positive");
            let mut remaining: Vec<usize> = damage.to_vec();
            let mut steps = 0usize;
            let mut engaged = vec![false; damage.len()];
            'outer: for _ in 0..max_steps {
                // Work the most-damaged unengaged or engaged site.
                let site = match remaining
                    .iter()
                    .enumerate()
                    .filter(|(_, &d)| d > 0)
                    .max_by_key(|(_, &d)| d)
                {
                    Some((i, _)) => i,
                    None => break 'outer,
                };
                if !engaged[site] {
                    engaged[site] = true;
                    steps += dispatch_delay;
                    if steps >= max_steps {
                        steps = max_steps;
                        break 'outer;
                    }
                }
                remaining[site] = remaining[site].saturating_sub(capacity);
                steps += 1;
                if steps >= max_steps {
                    break;
                }
            }
            let completed = remaining.iter().all(|&d| d == 0);
            ResponseOutcome {
                recovery_steps: steps.min(max_steps),
                completed,
            }
        }
        CommandStructure::Empowered {
            local_capacity,
            improvisation_error,
        } => {
            assert!(local_capacity > 0, "local capacity must be positive");
            assert!(
                (0.0..1.0).contains(&improvisation_error),
                "error probability must be in [0, 1)"
            );
            let mut remaining: Vec<usize> = damage.to_vec();
            let mut steps = 0usize;
            while remaining.iter().any(|&d| d > 0) && steps < max_steps {
                steps += 1;
                for site in remaining.iter_mut() {
                    for _ in 0..local_capacity {
                        if *site == 0 {
                            break;
                        }
                        if !rng.gen_bool(improvisation_error) {
                            *site -= 1;
                        }
                    }
                }
            }
            ResponseOutcome {
                recovery_steps: steps,
                completed: remaining.iter().all(|&d| d == 0),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::seeded_rng;

    #[test]
    fn centralized_serial_time_is_total_damage_plus_dispatch() {
        let mut rng = seeded_rng(601);
        let damage = [3usize, 2, 1];
        let out = respond(
            &damage,
            CommandStructure::Centralized {
                capacity: 1,
                dispatch_delay: 2,
            },
            100,
            &mut rng,
        );
        assert!(out.completed);
        // 6 unit-fixes + 3 dispatches × 2 steps = 12.
        assert_eq!(out.recovery_steps, 12);
    }

    #[test]
    fn empowered_parallel_time_is_max_damage() {
        let mut rng = seeded_rng(602);
        let damage = [3usize, 2, 1];
        let out = respond(
            &damage,
            CommandStructure::Empowered {
                local_capacity: 1,
                improvisation_error: 0.0,
            },
            100,
            &mut rng,
        );
        assert!(out.completed);
        assert_eq!(out.recovery_steps, 3);
    }

    /// The §3.4.3 claim: for distributed damage, empowered response beats
    /// the centralized queue even though improvisation wastes some effort.
    #[test]
    fn empowerment_wins_on_distributed_damage() {
        let mut rng = seeded_rng(603);
        let damage = vec![4usize; 12]; // a disaster touching many sites
        let central = respond(
            &damage,
            CommandStructure::Centralized {
                capacity: 2,
                dispatch_delay: 1,
            },
            1_000,
            &mut rng,
        );
        let empowered = respond(
            &damage,
            CommandStructure::Empowered {
                local_capacity: 1,
                improvisation_error: 0.2,
            },
            1_000,
            &mut rng,
        );
        assert!(central.completed && empowered.completed);
        assert!(
            empowered.recovery_steps * 3 < central.recovery_steps,
            "empowered {} vs central {}",
            empowered.recovery_steps,
            central.recovery_steps
        );
    }

    #[test]
    fn centralized_wins_on_a_single_deep_site() {
        // Concentrated damage is where the big central team shines.
        let mut rng = seeded_rng(604);
        let damage = [30usize];
        let central = respond(
            &damage,
            CommandStructure::Centralized {
                capacity: 5,
                dispatch_delay: 1,
            },
            1_000,
            &mut rng,
        );
        let empowered = respond(
            &damage,
            CommandStructure::Empowered {
                local_capacity: 1,
                improvisation_error: 0.1,
            },
            1_000,
            &mut rng,
        );
        assert!(central.recovery_steps < empowered.recovery_steps);
    }

    #[test]
    fn no_damage_is_instant() {
        let mut rng = seeded_rng(605);
        for structure in [
            CommandStructure::Centralized {
                capacity: 1,
                dispatch_delay: 5,
            },
            CommandStructure::Empowered {
                local_capacity: 1,
                improvisation_error: 0.0,
            },
        ] {
            let out = respond(&[0, 0], structure, 10, &mut rng);
            assert!(out.completed);
            assert_eq!(out.recovery_steps, 0);
        }
    }

    #[test]
    fn step_cap_is_respected() {
        let mut rng = seeded_rng(606);
        let out = respond(
            &[1_000],
            CommandStructure::Centralized {
                capacity: 1,
                dispatch_delay: 0,
            },
            10,
            &mut rng,
        );
        assert!(!out.completed);
        assert_eq!(out.recovery_steps, 10);
    }

    #[test]
    #[should_panic(expected = "error probability")]
    fn bad_error_rate_rejected() {
        let mut rng = seeded_rng(607);
        let _ = respond(
            &[1],
            CommandStructure::Empowered {
                local_capacity: 1,
                improvisation_error: 1.0,
            },
            10,
            &mut rng,
        );
    }
}

//! N-version design diversity (the paper's §3.2.2).
//!
//! "The Boeing 777 … signals are controlled by a redundant system
//! consisting of three computers … based on different hardware and software
//! developed by independent vendors. If these three computers share the
//! same design, a design flaw would make all the computers fail at the same
//! time. By having diversity in its designs, Boeing 777 can withstand a
//! computer failure caused by a design flaw of a single computer."
//!
//! Model: each flight presents scenarios; a *design flaw* manifests in a
//! scenario with probability `flaw_rate` per design, and every unit sharing
//! that design fails together (common-mode). Independent *hardware* faults
//! strike units individually. The controller votes: it functions while a
//! majority of units agree (i.e. while at most `⌊(n−1)/2⌋` units are
//! faulty).

use rand::Rng;

/// Whether the redundant units share one design or use independent ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignStrategy {
    /// All units run the same design: redundancy without diversity.
    Identical,
    /// Every unit has an independently developed design: redundancy with
    /// diversity.
    Diverse,
}

/// A majority-voting redundant controller.
#[derive(Debug, Clone, PartialEq)]
pub struct NVersionController {
    /// Number of redundant units (e.g. 3 for the 777).
    pub units: usize,
    /// The design strategy.
    pub strategy: DesignStrategy,
    /// Probability per scenario that a given design's latent flaw
    /// manifests (common-mode failure of every unit with that design).
    pub flaw_rate: f64,
    /// Probability per scenario of an independent hardware fault per unit.
    pub hardware_fault_rate: f64,
}

/// Outcome of a mission batch.
#[derive(Debug, Clone, PartialEq)]
pub struct NVersionOutcome {
    /// Scenarios evaluated.
    pub scenarios: usize,
    /// Scenarios in which the voter lost its majority.
    pub system_failures: usize,
}

impl NVersionOutcome {
    /// Per-scenario system failure probability.
    pub fn failure_probability(&self) -> f64 {
        if self.scenarios == 0 {
            0.0
        } else {
            self.system_failures as f64 / self.scenarios as f64
        }
    }
}

impl NVersionController {
    /// New controller.
    ///
    /// # Panics
    ///
    /// Panics if `units == 0` or the rates are outside `[0, 1]`.
    pub fn new(
        units: usize,
        strategy: DesignStrategy,
        flaw_rate: f64,
        hardware_fault_rate: f64,
    ) -> Self {
        assert!(units > 0, "need at least one unit");
        assert!((0.0..=1.0).contains(&flaw_rate), "flaw rate in [0,1]");
        assert!(
            (0.0..=1.0).contains(&hardware_fault_rate),
            "hardware fault rate in [0,1]"
        );
        NVersionController {
            units,
            strategy,
            flaw_rate,
            hardware_fault_rate,
        }
    }

    /// Maximum simultaneous unit failures the voter tolerates.
    pub fn fault_tolerance(&self) -> usize {
        (self.units - 1) / 2
    }

    /// Simulate one scenario; `true` = system failed.
    pub fn scenario_fails<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        let mut failed = 0usize;
        match self.strategy {
            DesignStrategy::Identical => {
                // One design: its flaw takes out every unit at once.
                if rng.gen_bool(self.flaw_rate) {
                    failed = self.units;
                } else {
                    for _ in 0..self.units {
                        if rng.gen_bool(self.hardware_fault_rate) {
                            failed += 1;
                        }
                    }
                }
            }
            DesignStrategy::Diverse => {
                for _ in 0..self.units {
                    if rng.gen_bool(self.flaw_rate) || rng.gen_bool(self.hardware_fault_rate) {
                        failed += 1;
                    }
                }
            }
        }
        failed > self.fault_tolerance()
    }

    /// Run a batch of scenarios.
    pub fn run<R: Rng + ?Sized>(&self, scenarios: usize, rng: &mut R) -> NVersionOutcome {
        let failures = (0..scenarios).filter(|_| self.scenario_fails(rng)).count();
        NVersionOutcome {
            scenarios,
            system_failures: failures,
        }
    }

    /// Closed-form failure probability (per scenario).
    pub fn analytic_failure_probability(&self) -> f64 {
        let n = self.units;
        let t = self.fault_tolerance();
        let unit_fail = match self.strategy {
            DesignStrategy::Identical => self.hardware_fault_rate,
            DesignStrategy::Diverse => {
                1.0 - (1.0 - self.flaw_rate) * (1.0 - self.hardware_fault_rate)
            }
        };
        // P(more than t of n independent unit failures).
        let mut p_majority_lost = 0.0;
        for k in (t + 1)..=n {
            p_majority_lost +=
                binom(n, k) * unit_fail.powi(k as i32) * (1.0 - unit_fail).powi((n - k) as i32);
        }
        match self.strategy {
            DesignStrategy::Identical => {
                // Flaw (all fail) OR independent hardware majority loss.
                self.flaw_rate + (1.0 - self.flaw_rate) * p_majority_lost
            }
            DesignStrategy::Diverse => p_majority_lost,
        }
    }
}

fn binom(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut r = 1.0;
    for i in 0..k {
        r = r * (n - i) as f64 / (i + 1) as f64;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::seeded_rng;

    #[test]
    fn fault_tolerance_of_tmr() {
        let c = NVersionController::new(3, DesignStrategy::Diverse, 0.0, 0.0);
        assert_eq!(c.fault_tolerance(), 1);
        let c5 = NVersionController::new(5, DesignStrategy::Diverse, 0.0, 0.0);
        assert_eq!(c5.fault_tolerance(), 2);
        let c1 = NVersionController::new(1, DesignStrategy::Identical, 0.0, 0.0);
        assert_eq!(c1.fault_tolerance(), 0);
    }

    /// The E9 reproduction: design diversity beats identical redundancy
    /// when design flaws dominate.
    #[test]
    fn diversity_beats_identical_redundancy() {
        let mut rng = seeded_rng(161);
        let flaw = 0.01;
        let hw = 0.01;
        let identical = NVersionController::new(3, DesignStrategy::Identical, flaw, hw);
        let diverse = NVersionController::new(3, DesignStrategy::Diverse, flaw, hw);
        let id_out = identical.run(100_000, &mut rng);
        let div_out = diverse.run(100_000, &mut rng);
        // Identical: ≈ flaw_rate (0.01). Diverse: ≈ 3·(0.02)² ≈ 0.0012.
        assert!(
            div_out.failure_probability() < 0.3 * id_out.failure_probability(),
            "diverse {} vs identical {}",
            div_out.failure_probability(),
            id_out.failure_probability()
        );
    }

    #[test]
    fn simulation_matches_analytic() {
        let mut rng = seeded_rng(162);
        for strategy in [DesignStrategy::Identical, DesignStrategy::Diverse] {
            let c = NVersionController::new(3, strategy, 0.05, 0.08);
            let sim = c.run(200_000, &mut rng).failure_probability();
            let exact = c.analytic_failure_probability();
            assert!(
                (sim - exact).abs() < 0.005,
                "{strategy:?}: sim {sim} vs exact {exact}"
            );
        }
    }

    #[test]
    fn analytic_extremes() {
        // No faults at all.
        let c = NVersionController::new(3, DesignStrategy::Diverse, 0.0, 0.0);
        assert_eq!(c.analytic_failure_probability(), 0.0);
        // Certain flaw, identical: always fails.
        let c = NVersionController::new(3, DesignStrategy::Identical, 1.0, 0.0);
        assert!((c.analytic_failure_probability() - 1.0).abs() < 1e-12);
        // Certain flaw, diverse: all units fail independently-but-surely.
        let c = NVersionController::new(3, DesignStrategy::Diverse, 1.0, 0.0);
        assert!((c.analytic_failure_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn more_units_help_only_against_independent_faults() {
        // Against common-mode flaws, piling on identical units is useless
        // (the paper's point about shared designs).
        let flaw = 0.02;
        let id3 = NVersionController::new(3, DesignStrategy::Identical, flaw, 0.001);
        let id7 = NVersionController::new(7, DesignStrategy::Identical, flaw, 0.001);
        assert!(
            (id7.analytic_failure_probability() - id3.analytic_failure_probability()).abs() < 1e-3,
            "identical redundancy saturates at the flaw rate"
        );
        // Against independent faults, more diverse units help.
        let div3 = NVersionController::new(3, DesignStrategy::Diverse, flaw, 0.001);
        let div5 = NVersionController::new(5, DesignStrategy::Diverse, flaw, 0.001);
        assert!(div5.analytic_failure_probability() < div3.analytic_failure_probability());
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn rejects_zero_units() {
        let _ = NVersionController::new(0, DesignStrategy::Diverse, 0.1, 0.1);
    }
}

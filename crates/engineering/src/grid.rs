//! Power-grid reserve margins (the paper's §3.1.2).
//!
//! "Within 14 months after the earthquake, every one of Japan's 50 nuclear
//! power stations went into maintenance cycles … Although Japan has lost
//! almost a third of its electric generation capacity, Japan has never
//! experienced major blackout during this period. … Japanese electricity
//! systems have had a huge excessive capacity."
//!
//! Model: a grid with `capacity = demand_peak · (1 + reserve_margin)`.
//! Demand fluctuates; a shock removes a fraction of capacity for a
//! duration. Blackout occurs whenever demand exceeds available capacity.

use rand::Rng;

use resilience_core::{resilience_loss, QualityTrajectory};

/// A power grid with a reserve margin.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerGrid {
    /// Peak demand (MW, nominal units).
    pub demand_peak: f64,
    /// Reserve margin as a fraction of peak demand (0.1 = 10% spare).
    pub reserve_margin: f64,
    /// Demand fluctuation amplitude as a fraction of peak (daily swing).
    pub demand_swing: f64,
}

/// Result of a grid stress simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct GridOutcome {
    /// Steps simulated.
    pub steps: usize,
    /// Steps with unserved demand.
    pub blackout_steps: usize,
    /// Total unserved energy (demand above available capacity, summed).
    pub unserved_energy: f64,
    /// Served-fraction quality trajectory (for Bruneau analysis).
    pub quality: QualityTrajectory,
}

impl GridOutcome {
    /// Whether the grid rode through without any blackout.
    pub fn rode_through(&self) -> bool {
        self.blackout_steps == 0
    }

    /// Bruneau resilience loss of the served-demand quality curve.
    pub fn resilience_loss(&self) -> f64 {
        resilience_loss(&self.quality)
    }
}

impl PowerGrid {
    /// New grid.
    ///
    /// # Panics
    ///
    /// Panics if `demand_peak ≤ 0`, `reserve_margin < 0`, or
    /// `demand_swing ∉ [0, 1]`.
    pub fn new(demand_peak: f64, reserve_margin: f64, demand_swing: f64) -> Self {
        assert!(demand_peak > 0.0, "peak demand must be positive");
        assert!(reserve_margin >= 0.0, "reserve margin cannot be negative");
        assert!(
            (0.0..=1.0).contains(&demand_swing),
            "demand swing must be in [0,1]"
        );
        PowerGrid {
            demand_peak,
            reserve_margin,
            demand_swing,
        }
    }

    /// Installed capacity.
    pub fn capacity(&self) -> f64 {
        self.demand_peak * (1.0 + self.reserve_margin)
    }

    /// Simulate `steps` steps. At step `shock_at`, a fraction
    /// `capacity_loss` of capacity goes offline for `outage_duration`
    /// steps (the nuclear-fleet shutdown). Demand per step is
    /// `peak · (1 − swing·u)` with `u ~ U(0,1)` plus a sinusoidal daily
    /// cycle.
    pub fn simulate_shock<R: Rng + ?Sized>(
        &self,
        steps: usize,
        shock_at: usize,
        capacity_loss: f64,
        outage_duration: usize,
        rng: &mut R,
    ) -> GridOutcome {
        let capacity = self.capacity();
        let mut blackout_steps = 0;
        let mut unserved = 0.0;
        let mut quality = QualityTrajectory::new(1.0);
        for t in 0..steps {
            let available = if t >= shock_at && t < shock_at + outage_duration {
                capacity * (1.0 - capacity_loss.clamp(0.0, 1.0))
            } else {
                capacity
            };
            let cycle = 0.5 + 0.5 * ((t as f64) * std::f64::consts::TAU / 24.0).sin();
            let noise: f64 = rng.gen_range(0.0..1.0);
            let demand =
                self.demand_peak * (1.0 - self.demand_swing * (0.7 * (1.0 - cycle) + 0.3 * noise));
            if demand > available {
                blackout_steps += 1;
                unserved += demand - available;
                quality.push(100.0 * available / demand);
            } else {
                quality.push(100.0);
            }
        }
        GridOutcome {
            steps,
            blackout_steps,
            unserved_energy: unserved,
            quality,
        }
    }

    /// The minimum reserve margin that rides through a loss of
    /// `capacity_loss` at full peak demand (deterministic worst case):
    /// `(1 + m)(1 − loss) ≥ 1 ⇔ m ≥ loss/(1 − loss)`.
    pub fn required_margin(capacity_loss: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&capacity_loss),
            "loss fraction must be in [0,1)"
        );
        capacity_loss / (1.0 - capacity_loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::seeded_rng;

    #[test]
    fn capacity_includes_margin() {
        let g = PowerGrid::new(100.0, 0.5, 0.2);
        assert!((g.capacity() - 150.0).abs() < 1e-12);
    }

    /// The E8(b) reproduction: a ~33% generation loss is survivable iff
    /// the reserve margin is large enough.
    #[test]
    fn big_margin_rides_through_nuclear_shutdown() {
        let mut rng = seeded_rng(171);
        // Japan's story: lose 1/3 of capacity.
        let loss = 1.0 / 3.0;
        let lean = PowerGrid::new(100.0, 0.1, 0.2);
        let fat = PowerGrid::new(100.0, PowerGrid::required_margin(loss) + 0.05, 0.2);
        let lean_out = lean.simulate_shock(24 * 30, 100, loss, 24 * 14, &mut rng);
        let fat_out = fat.simulate_shock(24 * 30, 100, loss, 24 * 14, &mut rng);
        assert!(!lean_out.rode_through(), "lean grid must black out");
        assert!(fat_out.rode_through(), "fat grid must ride through");
        assert!(fat_out.resilience_loss() < lean_out.resilience_loss());
        assert!(lean_out.unserved_energy > 0.0);
    }

    #[test]
    fn required_margin_formula() {
        assert!((PowerGrid::required_margin(1.0 / 3.0) - 0.5).abs() < 1e-12);
        assert_eq!(PowerGrid::required_margin(0.0), 0.0);
        // Sanity: (1 + 0.5)(1 − 1/3) = 1.0 exactly.
        let m = PowerGrid::required_margin(1.0 / 3.0);
        assert!(((1.0 + m) * (1.0 - 1.0 / 3.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_shock_no_blackout() {
        let mut rng = seeded_rng(172);
        let g = PowerGrid::new(100.0, 0.05, 0.3);
        let out = g.simulate_shock(500, 1_000, 0.5, 10, &mut rng); // shock after horizon
        assert!(out.rode_through());
        assert_eq!(out.resilience_loss(), 0.0);
    }

    #[test]
    fn margin_ladder_reduces_unserved_energy() {
        let mut rng = seeded_rng(173);
        let loss = 0.4;
        let mut prev = f64::INFINITY;
        for margin in [0.0, 0.2, 0.4, 0.7] {
            let g = PowerGrid::new(100.0, margin, 0.2);
            let out = g.simulate_shock(24 * 10, 24, loss, 24 * 5, &mut rng);
            assert!(
                out.unserved_energy <= prev,
                "margin {margin}: unserved {} prev {prev}",
                out.unserved_energy
            );
            prev = out.unserved_energy;
        }
    }

    #[test]
    #[should_panic(expected = "loss fraction")]
    fn required_margin_rejects_total_loss() {
        let _ = PowerGrid::required_margin(1.0);
    }
}

//! The Drossel–Schwabl forest-fire model with suppression policies
//! (the paper's §3.2.3).
//!
//! "In the domain of forest management, it is a common wisdom not to
//! extinguish small forest fires and let the patch of the forest
//! rejuvenate. Otherwise, every part of the forest gets older and dryer,
//! and the risk of a large-scale forest fire would much increase. The
//! diversity of tree ages in a forest is a key to keep the forest
//! resilient."
//!
//! Each step: empty cells sprout with probability `growth`; lightning
//! strikes a random cell with probability `lightning` and burns the whole
//! connected tree cluster. Under [`ForestPolicy::SuppressSmall`], fires
//! below the suppression size are extinguished (only the struck tree is
//! lost) — density then climbs and the rare escaped fire is catastrophic.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Fire-management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ForestPolicy {
    /// Fires burn out naturally (the resilient regime).
    LetBurn,
    /// Fires whose cluster is smaller than `threshold` are stopped after
    /// the first tree; larger fires escape control and burn fully.
    SuppressSmall {
        /// Clusters below this size are extinguished immediately.
        threshold: usize,
    },
}

/// A forest lattice.
#[derive(Debug, Clone, PartialEq)]
pub struct ForestFire {
    width: usize,
    height: usize,
    tree: Vec<bool>,
    growth: f64,
}

/// Outcome of a forest simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForestReport {
    /// Size of every fire that occurred (trees actually burned).
    pub fire_sizes: Vec<usize>,
    /// Tree density at sampling intervals.
    pub density_samples: Vec<f64>,
}

impl ForestReport {
    /// The largest fire.
    pub fn max_fire(&self) -> usize {
        self.fire_sizes.iter().copied().max().unwrap_or(0)
    }

    /// Mean density across samples.
    pub fn mean_density(&self) -> f64 {
        if self.density_samples.is_empty() {
            0.0
        } else {
            self.density_samples.iter().sum::<f64>() / self.density_samples.len() as f64
        }
    }

    /// Fraction of fires at least `size`.
    pub fn tail_fraction(&self, size: usize) -> f64 {
        if self.fire_sizes.is_empty() {
            return 0.0;
        }
        self.fire_sizes.iter().filter(|&&s| s >= size).count() as f64 / self.fire_sizes.len() as f64
    }
}

impl ForestFire {
    /// An empty forest.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero or `growth ∉ [0, 1]`.
    pub fn new(width: usize, height: usize, growth: f64) -> Self {
        assert!(width > 0 && height > 0, "grid must be non-empty");
        assert!((0.0..=1.0).contains(&growth), "growth must be in [0,1]");
        ForestFire {
            width,
            height,
            tree: vec![false; width * height],
            growth,
        }
    }

    /// Current tree density.
    pub fn density(&self) -> f64 {
        self.tree.iter().filter(|&&t| t).count() as f64 / self.tree.len() as f64
    }

    /// One step: growth, then a lightning strike with probability
    /// `lightning`. Returns the fire size if lightning found a tree.
    pub fn step<R: Rng + ?Sized>(
        &mut self,
        lightning: f64,
        policy: ForestPolicy,
        rng: &mut R,
    ) -> Option<usize> {
        // Growth phase.
        for cell in self.tree.iter_mut() {
            if !*cell && rng.gen_bool(self.growth) {
                *cell = true;
            }
        }
        // Lightning phase.
        if !rng.gen_bool(lightning.clamp(0.0, 1.0)) {
            return None;
        }
        let i = rng.gen_range(0..self.tree.len());
        if !self.tree[i] {
            return None;
        }
        let cluster = self.cluster_of(i);
        match policy {
            ForestPolicy::LetBurn => {
                for &c in &cluster {
                    self.tree[c] = false;
                }
                Some(cluster.len())
            }
            ForestPolicy::SuppressSmall { threshold } => {
                if cluster.len() < threshold {
                    // Fire crews stop it: only the struck tree burns.
                    self.tree[i] = false;
                    Some(1)
                } else {
                    // The fire escapes control and burns everything.
                    for &c in &cluster {
                        self.tree[c] = false;
                    }
                    Some(cluster.len())
                }
            }
        }
    }

    /// Flood-fill the tree cluster containing `start`.
    fn cluster_of(&self, start: usize) -> Vec<usize> {
        let mut seen = vec![false; self.tree.len()];
        let mut stack = vec![start];
        let mut cluster = Vec::new();
        seen[start] = true;
        while let Some(i) = stack.pop() {
            cluster.push(i);
            let x = (i % self.width) as isize;
            let y = (i / self.width) as isize;
            for (nx, ny) in [(x - 1, y), (x + 1, y), (x, y - 1), (x, y + 1)] {
                if nx >= 0 && ny >= 0 && (nx as usize) < self.width && (ny as usize) < self.height {
                    let ni = ny as usize * self.width + nx as usize;
                    if self.tree[ni] && !seen[ni] {
                        seen[ni] = true;
                        stack.push(ni);
                    }
                }
            }
        }
        cluster
    }

    /// Run `steps` steps, recording fires and sampling density every
    /// `sample_every` steps.
    pub fn run<R: Rng + ?Sized>(
        &mut self,
        steps: usize,
        lightning: f64,
        policy: ForestPolicy,
        sample_every: usize,
        rng: &mut R,
    ) -> ForestReport {
        let mut fire_sizes = Vec::new();
        let mut density_samples = Vec::new();
        let sample_every = sample_every.max(1);
        for t in 1..=steps {
            if let Some(size) = self.step(lightning, policy, rng) {
                fire_sizes.push(size);
            }
            if t % sample_every == 0 {
                density_samples.push(self.density());
            }
        }
        ForestReport {
            fire_sizes,
            density_samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::seeded_rng;

    #[test]
    fn growth_fills_empty_forest() {
        let mut rng = seeded_rng(141);
        let mut f = ForestFire::new(20, 20, 0.5);
        assert_eq!(f.density(), 0.0);
        f.step(0.0, ForestPolicy::LetBurn, &mut rng);
        assert!(f.density() > 0.3);
        f.step(0.0, ForestPolicy::LetBurn, &mut rng);
        assert!(f.density() > 0.6);
    }

    #[test]
    fn lightning_burns_whole_cluster_under_let_burn() {
        let mut rng = seeded_rng(142);
        let mut f = ForestFire::new(10, 10, 0.0);
        // Hand-plant a full forest.
        for c in f.tree.iter_mut() {
            *c = true;
        }
        let size = f.step(1.0, ForestPolicy::LetBurn, &mut rng).unwrap();
        assert_eq!(size, 100);
        assert_eq!(f.density(), 0.0);
    }

    #[test]
    fn suppression_stops_small_fires() {
        let mut rng = seeded_rng(143);
        let mut f = ForestFire::new(10, 10, 0.0);
        for c in f.tree.iter_mut() {
            *c = true;
        }
        // Cluster (100) ≥ threshold (1000)? No wait: threshold larger than
        // cluster ⇒ suppressed: only 1 tree burns.
        let size = f
            .step(
                1.0,
                ForestPolicy::SuppressSmall { threshold: 1_000 },
                &mut rng,
            )
            .unwrap();
        assert_eq!(size, 1);
        assert!((f.density() - 0.99).abs() < 1e-9);
        // Threshold below the cluster size ⇒ the fire escapes.
        let size = f
            .step(1.0, ForestPolicy::SuppressSmall { threshold: 10 }, &mut rng)
            .unwrap();
        assert!(size > 10);
    }

    /// The E10(b) reproduction: suppression raises density and makes the
    /// worst fire worse.
    #[test]
    fn suppression_builds_fuel_for_catastrophe() {
        // Frequent lightning keeps the natural forest's clusters young and
        // small; suppression (everything short of a 1000-cell cluster is
        // stopped) lets fuel accumulate until a spanning fire escapes.
        let steps = 6_000;
        let lightning = 1.0;
        let growth = 0.005;

        let mut rng = seeded_rng(144);
        let mut natural = ForestFire::new(50, 50, growth);
        let natural_report = natural.run(steps, lightning, ForestPolicy::LetBurn, 50, &mut rng);

        let mut rng = seeded_rng(144);
        let mut managed = ForestFire::new(50, 50, growth);
        let managed_report = managed.run(
            steps,
            lightning,
            ForestPolicy::SuppressSmall { threshold: 1_000 },
            50,
            &mut rng,
        );

        // Suppression keeps the forest denser (fuel accumulates)…
        assert!(
            managed_report.mean_density() > natural_report.mean_density() + 0.05,
            "managed {} vs natural {}",
            managed_report.mean_density(),
            natural_report.mean_density()
        );
        // …and the worst escaped fire dwarfs the natural regime's.
        assert!(
            managed_report.max_fire() as f64 > 2.0 * natural_report.max_fire() as f64,
            "managed max {} vs natural max {}",
            managed_report.max_fire(),
            natural_report.max_fire()
        );
        // Catastrophic (≥500-tree) fires occur only under suppression.
        assert!(managed_report.tail_fraction(500) > natural_report.tail_fraction(500));
    }

    #[test]
    fn report_helpers() {
        let r = ForestReport {
            fire_sizes: vec![1, 5, 20],
            density_samples: vec![0.2, 0.4],
        };
        assert_eq!(r.max_fire(), 20);
        assert!((r.mean_density() - 0.3).abs() < 1e-12);
        assert!((r.tail_fraction(5) - 2.0 / 3.0).abs() < 1e-12);
        let empty = ForestReport {
            fire_sizes: vec![],
            density_samples: vec![],
        };
        assert_eq!(empty.max_fire(), 0);
        assert_eq!(empty.mean_density(), 0.0);
        assert_eq!(empty.tail_fraction(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "growth")]
    fn rejects_bad_growth() {
        let _ = ForestFire::new(5, 5, 1.5);
    }
}

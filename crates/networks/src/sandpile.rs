//! The Bak–Tang–Wiesenfeld sandpile (the paper's §4.5).
//!
//! "Bak shows that many decentralized systems that are modeled based on
//! cellular automaton naturally reach a critical state with minimum
//! stability without carefully choosing initial system parameters and that
//! a small disturbance or noise at the critical state could cause cascading
//! failures of the system leading to a large disaster."
//!
//! A 2-D grid of cells each holding up to 3 grains; adding a fourth topples
//! the cell, sending one grain to each neighbor (grains fall off the
//! boundary). Avalanche sizes at the self-organized critical state follow a
//! power law. [`InterventionPolicy`] implements the paper's suggested
//! "small destructions … centrally coordinated interventions … in order to
//! avoid critical points": proactively relieving near-critical cells.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Cells topple at this many grains.
pub const TOPPLE_AT: u8 = 4;

/// A centrally-coordinated relief policy applied between grain drops.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InterventionPolicy {
    /// Let the pile self-organize (the decentralized baseline).
    None,
    /// Every `period` drops, remove one grain from each of the `budget`
    /// fullest cells (the "prescribed burn" analogue).
    TargetedRelief {
        /// Drops between interventions.
        period: usize,
        /// Cells relieved per intervention.
        budget: usize,
    },
    /// Every `period` drops, remove one grain from each of `budget`
    /// random cells (an unfocused control intervention).
    RandomRelief {
        /// Drops between interventions.
        period: usize,
        /// Cells relieved per intervention.
        budget: usize,
    },
}

/// The sandpile automaton.
///
/// # Example
///
/// ```
/// use resilience_networks::sandpile::Sandpile;
/// let mut pile = Sandpile::new(3, 3);
/// for _ in 0..3 {
///     assert_eq!(pile.drop_at(1, 1), 0); // piling up quietly…
/// }
/// assert_eq!(pile.drop_at(1, 1), 1); // …until the fourth grain topples
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sandpile {
    width: usize,
    height: usize,
    grains: Vec<u8>,
}

/// Statistics from a sandpile run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SandpileReport {
    /// Size (number of topplings) of each avalanche, one entry per drop.
    pub avalanche_sizes: Vec<usize>,
    /// Grains removed by interventions.
    pub grains_relieved: usize,
}

impl SandpileReport {
    /// Largest avalanche observed.
    pub fn max_avalanche(&self) -> usize {
        self.avalanche_sizes.iter().copied().max().unwrap_or(0)
    }

    /// Mean avalanche size.
    pub fn mean_avalanche(&self) -> f64 {
        if self.avalanche_sizes.is_empty() {
            0.0
        } else {
            self.avalanche_sizes.iter().sum::<usize>() as f64 / self.avalanche_sizes.len() as f64
        }
    }

    /// Fraction of avalanches at least `size`.
    pub fn tail_fraction(&self, size: usize) -> f64 {
        if self.avalanche_sizes.is_empty() {
            return 0.0;
        }
        self.avalanche_sizes.iter().filter(|&&s| s >= size).count() as f64
            / self.avalanche_sizes.len() as f64
    }
}

impl Sandpile {
    /// An empty `width × height` pile.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "grid must be non-empty");
        Sandpile {
            width,
            height,
            grains: vec![0; width * height],
        }
    }

    /// Grid width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Grains at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn grains_at(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height);
        self.grains[y * self.width + x]
    }

    /// Total grains on the pile.
    pub fn total_grains(&self) -> usize {
        self.grains.iter().map(|&g| g as usize).sum()
    }

    /// Mean grains per cell — rises toward the critical density ≈ 2.1 as
    /// the pile self-organizes.
    pub fn density(&self) -> f64 {
        self.total_grains() as f64 / self.grains.len() as f64
    }

    /// Drop one grain at `(x, y)` and relax; returns the avalanche size
    /// (number of topplings).
    pub fn drop_at(&mut self, x: usize, y: usize) -> usize {
        assert!(x < self.width && y < self.height);
        let idx = y * self.width + x;
        self.grains[idx] += 1;
        let mut avalanche = 0usize;
        let mut stack = Vec::new();
        if self.grains[idx] >= TOPPLE_AT {
            stack.push(idx);
        }
        let (width, height) = (self.width, self.height);
        // Off-grid grains fall off the edge (open boundary).
        fn spill(
            width: usize,
            height: usize,
            nx: isize,
            ny: isize,
            stack: &mut Vec<usize>,
            grains: &mut [u8],
        ) {
            if nx >= 0 && ny >= 0 && (nx as usize) < width && (ny as usize) < height {
                let ni = ny as usize * width + nx as usize;
                grains[ni] += 1;
                if grains[ni] >= TOPPLE_AT {
                    stack.push(ni);
                }
            }
        }
        while let Some(i) = stack.pop() {
            if self.grains[i] < TOPPLE_AT {
                continue;
            }
            self.grains[i] -= TOPPLE_AT;
            avalanche += 1;
            let x = (i % width) as isize;
            let y = (i / width) as isize;
            spill(width, height, x - 1, y, &mut stack, &mut self.grains);
            spill(width, height, x + 1, y, &mut stack, &mut self.grains);
            spill(width, height, x, y - 1, &mut stack, &mut self.grains);
            spill(width, height, x, y + 1, &mut stack, &mut self.grains);
        }
        avalanche
    }

    /// Drop one grain at a random cell; returns the avalanche size.
    pub fn drop_random<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        let x = rng.gen_range(0..self.width);
        let y = rng.gen_range(0..self.height);
        self.drop_at(x, y)
    }

    /// Run `drops` random drops under `policy`, recording every avalanche.
    /// Call after [`Sandpile::warm_up`] to measure the critical state.
    pub fn run<R: Rng + ?Sized>(
        &mut self,
        drops: usize,
        policy: InterventionPolicy,
        rng: &mut R,
    ) -> SandpileReport {
        let mut avalanche_sizes = Vec::with_capacity(drops);
        let mut grains_relieved = 0usize;
        for t in 1..=drops {
            match policy {
                InterventionPolicy::None => {}
                InterventionPolicy::TargetedRelief { period, budget } => {
                    if period > 0 && t % period == 0 {
                        grains_relieved += self.relieve_fullest(budget, rng);
                    }
                }
                InterventionPolicy::RandomRelief { period, budget } => {
                    if period > 0 && t % period == 0 {
                        grains_relieved += self.relieve_random(budget, rng);
                    }
                }
            }
            avalanche_sizes.push(self.drop_random(rng));
        }
        SandpileReport {
            avalanche_sizes,
            grains_relieved,
        }
    }

    /// Drive the pile to its self-organized critical state by dropping
    /// `drops` grains without recording.
    pub fn warm_up<R: Rng + ?Sized>(&mut self, drops: usize, rng: &mut R) {
        for _ in 0..drops {
            self.drop_random(rng);
        }
    }

    fn relieve_fullest<R: Rng + ?Sized>(&mut self, budget: usize, rng: &mut R) -> usize {
        // Remove one grain from each of the `budget` fullest cells, with
        // random tie-breaking — a deterministic tie-break would relieve
        // the same corner of the grid forever and leave the rest critical.
        let mut order: Vec<usize> = (0..self.grains.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        order.sort_by_key(|&i| std::cmp::Reverse(self.grains[i]));
        let mut removed = 0;
        for &i in order.iter().take(budget) {
            if self.grains[i] > 0 {
                self.grains[i] -= 1;
                removed += 1;
            }
        }
        removed
    }

    fn relieve_random<R: Rng + ?Sized>(&mut self, budget: usize, rng: &mut R) -> usize {
        let mut removed = 0;
        for _ in 0..budget {
            let i = rng.gen_range(0..self.grains.len());
            if self.grains[i] > 0 {
                self.grains[i] -= 1;
                removed += 1;
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::seeded_rng;

    #[test]
    fn single_topple() {
        let mut p = Sandpile::new(3, 3);
        for _ in 0..3 {
            assert_eq!(p.drop_at(1, 1), 0);
        }
        // Fourth grain topples the center onto its 4 neighbors.
        assert_eq!(p.drop_at(1, 1), 1);
        assert_eq!(p.grains_at(1, 1), 0);
        assert_eq!(p.grains_at(0, 1), 1);
        assert_eq!(p.grains_at(2, 1), 1);
        assert_eq!(p.grains_at(1, 0), 1);
        assert_eq!(p.grains_at(1, 2), 1);
        assert_eq!(p.total_grains(), 4);
    }

    #[test]
    fn boundary_loses_grains() {
        let mut p = Sandpile::new(2, 2);
        for _ in 0..3 {
            p.drop_at(0, 0);
        }
        assert_eq!(p.drop_at(0, 0), 1);
        // Corner topple: 2 grains stay (right, down), 2 fall off.
        assert_eq!(p.total_grains(), 2);
    }

    #[test]
    fn chain_reaction() {
        let mut p = Sandpile::new(3, 1);
        // Fill all three cells to 3 grains.
        for x in 0..3 {
            for _ in 0..3 {
                p.drop_at(x, 0);
            }
        }
        // One more grain in the middle cascades through the row.
        let avalanche = p.drop_at(1, 0);
        assert!(avalanche >= 3, "avalanche {avalanche}");
    }

    #[test]
    fn density_self_organizes_to_critical_value() {
        let mut rng = seeded_rng(131);
        let mut p = Sandpile::new(30, 30);
        p.warm_up(60_000, &mut rng);
        let d = p.density();
        // BTW critical density ≈ 2.12 in 2-D.
        assert!((1.9..2.3).contains(&d), "density {d}");
    }

    /// The E16 reproduction, part 1: power-law avalanches at criticality.
    #[test]
    fn avalanche_sizes_are_heavy_tailed() {
        let mut rng = seeded_rng(132);
        let mut p = Sandpile::new(40, 40);
        p.warm_up(80_000, &mut rng);
        let report = p.run(30_000, InterventionPolicy::None, &mut rng);
        // Many zero/small avalanches…
        assert!(report.tail_fraction(1) < 0.8);
        // …but some spanning hundreds of topplings.
        assert!(
            report.max_avalanche() > 300,
            "max {}",
            report.max_avalanche()
        );
        // Log-log CCDF slope of positive sizes is shallow (power-law-ish):
        let sizes: Vec<f64> = report
            .avalanche_sizes
            .iter()
            .filter(|&&s| s > 0)
            .map(|&s| s as f64)
            .collect();
        let slope = resilience_stats::tail::loglog_slope(&sizes, 0.2).unwrap();
        assert!(
            (-2.5..-0.4).contains(&slope),
            "slope {slope} should look like a power law"
        );
    }

    /// The E16 reproduction, part 2: targeted relief suppresses the
    /// largest cascades.
    #[test]
    fn targeted_relief_caps_large_avalanches() {
        let mut rng = seeded_rng(133);
        let mut baseline = Sandpile::new(30, 30);
        baseline.warm_up(50_000, &mut rng);
        let base_report = baseline.run(20_000, InterventionPolicy::None, &mut rng);

        let mut relieved = Sandpile::new(30, 30);
        relieved.warm_up(50_000, &mut rng);
        let relief_report = relieved.run(
            20_000,
            InterventionPolicy::TargetedRelief {
                period: 5,
                budget: 40,
            },
            &mut rng,
        );
        assert!(relief_report.grains_relieved > 0);
        // The intervention trims the extreme tail.
        let base_tail = base_report.tail_fraction(100);
        let relief_tail = relief_report.tail_fraction(100);
        assert!(
            relief_tail < 0.5 * base_tail,
            "relief tail {relief_tail} vs baseline {base_tail}"
        );
    }

    #[test]
    fn report_helpers() {
        let r = SandpileReport {
            avalanche_sizes: vec![0, 2, 10],
            grains_relieved: 0,
        };
        assert_eq!(r.max_avalanche(), 10);
        assert!((r.mean_avalanche() - 4.0).abs() < 1e-12);
        assert!((r.tail_fraction(2) - 2.0 / 3.0).abs() < 1e-12);
        let empty = SandpileReport {
            avalanche_sizes: vec![],
            grains_relieved: 0,
        };
        assert_eq!(empty.max_avalanche(), 0);
        assert_eq!(empty.mean_avalanche(), 0.0);
        assert_eq!(empty.tail_fraction(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_grid_rejected() {
        let _ = Sandpile::new(0, 3);
    }
}

//! Random-failure vs. targeted-attack experiments (the paper's §5.1).
//!
//! "Network-based systems that possess the scale-free property are
//! extremely robust against random failures of system components. However,
//! when we consider … a spreading virus that is deliberately designed to
//! attack the hubs of the network, such connectivity becomes a
//! vulnerability of the system."

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::graph::Graph;
use crate::percolation::removal_curve;

/// How nodes are chosen for removal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackStrategy {
    /// Uniformly random failures.
    Random,
    /// Remove highest-degree nodes first (hub attack).
    TargetedByDegree,
}

/// A percolation curve under an attack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackCurve {
    /// The strategy used.
    pub strategy: AttackStrategy,
    /// `giant[k]` = giant-component fraction after removing `k` nodes.
    pub giant: Vec<f64>,
}

impl AttackCurve {
    /// Fraction of nodes that must be removed before the giant component
    /// first drops below `threshold` (1.0 if it never does).
    pub fn collapse_point(&self, threshold: f64) -> f64 {
        let n = (self.giant.len() - 1).max(1);
        match self.giant.iter().position(|&f| f < threshold) {
            Some(k) => k as f64 / n as f64,
            None => 1.0,
        }
    }

    /// Area under the curve (mean giant fraction over the removal sweep) —
    /// a scalar robustness score (Schneider et al.'s R measure).
    pub fn robustness(&self) -> f64 {
        if self.giant.is_empty() {
            return 0.0;
        }
        self.giant.iter().sum::<f64>() / self.giant.len() as f64
    }
}

/// Remove up to `max_removals` nodes by `strategy`, recording the
/// giant-component fraction after every removal.
pub fn attack_sweep<R: Rng + ?Sized>(
    graph: &Graph,
    strategy: AttackStrategy,
    max_removals: usize,
    rng: &mut R,
) -> AttackCurve {
    let n = graph.len();
    let max_removals = max_removals.min(n);
    let order: Vec<usize> = match strategy {
        AttackStrategy::Random => {
            let mut nodes: Vec<usize> = (0..n).collect();
            nodes.shuffle(rng);
            nodes.truncate(max_removals);
            nodes
        }
        AttackStrategy::TargetedByDegree => {
            let mut nodes = graph.nodes_by_degree_desc();
            nodes.truncate(max_removals);
            nodes
        }
    };
    AttackCurve {
        strategy,
        giant: removal_curve(graph, &order),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{barabasi_albert, erdos_renyi};
    use resilience_core::seeded_rng;

    /// The E15 reproduction: BA robust to random failure, fragile to hub
    /// attack; ER degrades comparably under both.
    #[test]
    fn scale_free_robust_random_fragile_targeted() {
        let mut rng = seeded_rng(111);
        let n = 2_000;
        let ba = barabasi_albert(n, 2, &mut rng);
        let er = erdos_renyi(n, 4.0 / n as f64, &mut rng);
        let removals = n / 2;

        let ba_random = attack_sweep(&ba, AttackStrategy::Random, removals, &mut rng);
        let ba_target = attack_sweep(&ba, AttackStrategy::TargetedByDegree, removals, &mut rng);
        let er_random = attack_sweep(&er, AttackStrategy::Random, removals, &mut rng);
        let er_target = attack_sweep(&er, AttackStrategy::TargetedByDegree, removals, &mut rng);

        // BA under random failure keeps a large giant component even at
        // 50% removal.
        assert!(
            *ba_random.giant.last().unwrap() > 0.25,
            "BA giant after random removals: {}",
            ba_random.giant.last().unwrap()
        );
        // Hub attack shatters BA far earlier.
        assert!(
            ba_target.robustness() < 0.55 * ba_random.robustness(),
            "targeted {} vs random {}",
            ba_target.robustness(),
            ba_random.robustness()
        );
        // The attack gap is much larger for BA than for ER.
        let ba_gap = ba_random.robustness() - ba_target.robustness();
        let er_gap = er_random.robustness() - er_target.robustness();
        assert!(ba_gap > 1.5 * er_gap, "BA gap {ba_gap} vs ER gap {er_gap}");
    }

    #[test]
    fn collapse_point_semantics() {
        let curve = AttackCurve {
            strategy: AttackStrategy::Random,
            giant: vec![1.0, 0.9, 0.4, 0.1],
        };
        assert!((curve.collapse_point(0.5) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(curve.collapse_point(0.05), 1.0);
        assert!((curve.robustness() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn sweep_respects_bounds() {
        let mut rng = seeded_rng(112);
        let g = erdos_renyi(50, 0.1, &mut rng);
        let c = attack_sweep(&g, AttackStrategy::Random, 500, &mut rng);
        assert_eq!(c.giant.len(), 51); // clamped to n
        let c2 = attack_sweep(&g, AttackStrategy::TargetedByDegree, 10, &mut rng);
        assert_eq!(c2.giant.len(), 11);
    }

    #[test]
    fn targeted_removes_hubs_first() {
        let mut rng = seeded_rng(113);
        let mut g = Graph::new(5);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        g.add_edge(0, 4);
        // Star: removing the hub disconnects everything.
        let c = attack_sweep(&g, AttackStrategy::TargetedByDegree, 1, &mut rng);
        assert!((c.giant[0] - 1.0).abs() < 1e-12);
        assert!((c.giant[1] - 0.2).abs() < 1e-12); // singletons remain
    }

    use crate::graph::Graph;
}

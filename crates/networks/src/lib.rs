//! Network and lattice substrates for the Systems Resilience project
//! (the paper's §4.5 and §5.1).
//!
//! * [`graph`] / [`generators`] — compact undirected graphs;
//!   Barabási–Albert preferential attachment (scale-free) and Erdős–Rényi
//!   G(n, p) generators, plus lattices.
//! * [`percolation`] / [`attack`] — "network-based systems that possess the
//!   scale-free property are extremely robust against random failures …
//!   However, … a spreading virus deliberately designed to attack the hubs
//!   … such connectivity becomes a vulnerability" (Barabási, §5.1).
//!   Giant-component tracking under random vs. targeted node removal.
//! * [`cascade`] — Watts-style threshold cascades and SIR epidemics with
//!   hub-targeted vs. random immunization.
//! * [`sandpile`] — the Bak–Tang–Wiesenfeld sandpile: "many decentralized
//!   systems … naturally reach a critical state … a small disturbance …
//!   could cause cascading failures" (§4.5). Includes centrally-coordinated
//!   relief interventions (the "small destructions" the paper suggests).
//! * [`forest_fire`] — the Drossel–Schwabl forest-fire model with fire
//!   suppression: "it is a common wisdom not to extinguish small forest
//!   fires … otherwise … the risk of a large-scale forest fire would much
//!   increase" (§3.2.3).
//!
//! # Example
//!
//! ```
//! use resilience_networks::{attack_sweep, barabasi_albert, AttackStrategy};
//! use resilience_core::seeded_rng;
//!
//! let mut rng = seeded_rng(1);
//! let graph = barabasi_albert(500, 2, &mut rng);
//! let random = attack_sweep(&graph, AttackStrategy::Random, 250, &mut rng);
//! let targeted = attack_sweep(&graph, AttackStrategy::TargetedByDegree, 250, &mut rng);
//! // Hub attacks hurt a scale-free network far more than random failures.
//! assert!(targeted.robustness() < random.robustness());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod cascade;
pub mod forest_fire;
pub mod generators;
pub mod graph;
pub mod percolation;
pub mod sandpile;
pub mod union_find;

pub use attack::{attack_sweep, AttackCurve, AttackStrategy};
pub use cascade::{CascadeOutcome, SirOutcome, ThresholdCascade};
pub use forest_fire::{ForestFire, ForestPolicy, ForestReport};
pub use generators::{
    barabasi_albert, complete, erdos_renyi, planted_partition, ring_lattice, watts_strogatz,
};
pub use graph::Graph;
pub use percolation::{giant_component_fraction, giant_component_size};
pub use sandpile::{InterventionPolicy, Sandpile, SandpileReport};
pub use union_find::UnionFind;

//! Failure cascades and epidemics on networks.
//!
//! Two processes from the paper's discussion:
//!
//! * [`ThresholdCascade`] — Watts-style load redistribution: a node fails
//!   once the fraction of failed neighbors exceeds its threshold. This is
//!   the "cascading failures of the system leading to a large disaster,
//!   such as Northeast blackout of 2003" mechanism (§4.5).
//! * [`sir_epidemic`] — a discrete SIR "spreading virus" (§5.1) with
//!   optional immunization, comparing random vs. hub-targeted vaccine
//!   allocation.

use std::collections::VecDeque;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::graph::Graph;

/// Watts threshold cascade: node `v` fails when
/// `failed_neighbors(v) / degree(v) ≥ threshold`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdCascade {
    /// Failure threshold in `(0, 1]`.
    pub threshold: f64,
}

/// Outcome of a cascade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CascadeOutcome {
    /// Total failed nodes (including the seeds).
    pub failed: usize,
    /// Rounds until the cascade stopped.
    pub rounds: usize,
}

impl ThresholdCascade {
    /// New cascade model.
    ///
    /// # Panics
    ///
    /// Panics if `threshold ∉ (0, 1]`.
    pub fn new(threshold: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "threshold must be in (0, 1]"
        );
        ThresholdCascade { threshold }
    }

    /// Run the cascade from `seeds` on `graph`.
    pub fn run(&self, graph: &Graph, seeds: &[usize]) -> CascadeOutcome {
        let n = graph.len();
        let mut failed = vec![false; n];
        let mut failed_neighbors = vec![0usize; n];
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut failed_count = 0;
        for &s in seeds {
            if s < n && !failed[s] {
                failed[s] = true;
                failed_count += 1;
                queue.push_back(s);
            }
        }
        let mut rounds = 0;
        while !queue.is_empty() {
            rounds += 1;
            for _ in 0..queue.len() {
                let v = queue.pop_front().expect("nonempty");
                for &w in graph.neighbors(v) {
                    let w = w as usize;
                    if failed[w] {
                        continue;
                    }
                    failed_neighbors[w] += 1;
                    let deg = graph.degree(w).max(1);
                    if failed_neighbors[w] as f64 / deg as f64 >= self.threshold {
                        failed[w] = true;
                        failed_count += 1;
                        queue.push_back(w);
                    }
                }
            }
        }
        CascadeOutcome {
            failed: failed_count,
            rounds,
        }
    }
}

/// Outcome of an SIR epidemic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SirOutcome {
    /// Nodes ever infected.
    pub total_infected: usize,
    /// Rounds until no infectious nodes remained.
    pub rounds: usize,
}

/// How vaccine doses are allocated before the outbreak.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Immunization {
    /// No vaccination.
    None,
    /// `count` random nodes immunized.
    Random {
        /// Doses available.
        count: usize,
    },
    /// The `count` highest-degree nodes immunized — protecting the hubs
    /// that §5.1 identifies as the scale-free network's weak point.
    Hubs {
        /// Doses available.
        count: usize,
    },
}

/// Discrete-time SIR: each round every infectious node infects each
/// susceptible neighbor with probability `beta`, then recovers.
pub fn sir_epidemic<R: Rng + ?Sized>(
    graph: &Graph,
    beta: f64,
    seed_count: usize,
    immunization: Immunization,
    rng: &mut R,
) -> SirOutcome {
    assert!(
        (0.0..=1.0).contains(&beta),
        "infection rate must be in [0,1]"
    );
    let n = graph.len();
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Susceptible,
        Infectious,
        Recovered,
        Immune,
    }
    let mut state = vec![State::Susceptible; n];
    match immunization {
        Immunization::None => {}
        Immunization::Random { count } => {
            let mut nodes: Vec<usize> = (0..n).collect();
            nodes.shuffle(rng);
            for &v in nodes.iter().take(count.min(n)) {
                state[v] = State::Immune;
            }
        }
        Immunization::Hubs { count } => {
            for &v in graph.nodes_by_degree_desc().iter().take(count.min(n)) {
                state[v] = State::Immune;
            }
        }
    }
    // Seed among the still-susceptible.
    let susceptible: Vec<usize> = (0..n).filter(|&v| state[v] == State::Susceptible).collect();
    let mut infectious: Vec<usize> = susceptible
        .choose_multiple(rng, seed_count.min(susceptible.len()))
        .copied()
        .collect();
    for &v in &infectious {
        state[v] = State::Infectious;
    }
    let mut total_infected = infectious.len();
    let mut rounds = 0;
    while !infectious.is_empty() {
        rounds += 1;
        let mut next = Vec::new();
        for &v in &infectious {
            for &w in graph.neighbors(v) {
                let w = w as usize;
                if state[w] == State::Susceptible && rng.gen_bool(beta) {
                    state[w] = State::Infectious;
                    next.push(w);
                    total_infected += 1;
                }
            }
        }
        for &v in &infectious {
            state[v] = State::Recovered;
        }
        infectious = next;
    }
    SirOutcome {
        total_infected,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{barabasi_albert, complete, ring_lattice};
    use resilience_core::seeded_rng;

    #[test]
    fn low_threshold_cascades_globally() {
        // Ring with k=2: each node has 4 neighbors; threshold 0.25 means
        // a single failed neighbor suffices — the whole ring falls.
        let g = ring_lattice(100, 2);
        let c = ThresholdCascade::new(0.25);
        let out = c.run(&g, &[0]);
        assert_eq!(out.failed, 100);
        assert!(out.rounds > 10); // propagates outward, not instantly
    }

    #[test]
    fn high_threshold_contains_cascade() {
        let g = ring_lattice(100, 2);
        let c = ThresholdCascade::new(0.6); // needs 3 of 4 neighbors
        let out = c.run(&g, &[0]);
        assert_eq!(out.failed, 1, "cascade must not spread");
    }

    #[test]
    fn duplicate_and_out_of_range_seeds() {
        let g = complete(5);
        let c = ThresholdCascade::new(1.0);
        let out = c.run(&g, &[2, 2, 99]);
        assert_eq!(out.failed, 1);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_zero_threshold() {
        let _ = ThresholdCascade::new(0.0);
    }

    #[test]
    fn denser_seeding_fails_more() {
        let g = ring_lattice(60, 1);
        let c = ThresholdCascade::new(0.5);
        let one = c.run(&g, &[0]);
        let many = c.run(&g, &[0, 20, 40]);
        assert!(many.failed >= one.failed);
    }

    #[test]
    fn epidemic_spreads_on_dense_graph() {
        let mut rng = seeded_rng(121);
        let g = complete(60);
        let out = sir_epidemic(&g, 0.2, 1, Immunization::None, &mut rng);
        assert!(out.total_infected > 50, "infected {}", out.total_infected);
    }

    #[test]
    fn zero_beta_never_spreads() {
        let mut rng = seeded_rng(122);
        let g = complete(30);
        let out = sir_epidemic(&g, 0.0, 2, Immunization::None, &mut rng);
        assert_eq!(out.total_infected, 2);
        assert_eq!(out.rounds, 1);
    }

    /// The §5.1 countermeasure: on a scale-free graph, hub immunization
    /// beats random immunization with the same number of doses.
    #[test]
    fn hub_immunization_beats_random_on_scale_free() {
        let mut rng = seeded_rng(123);
        let g = barabasi_albert(1_500, 2, &mut rng);
        let doses = 150; // 10%
        let trials = 30;
        let mut hub_total = 0usize;
        let mut rand_total = 0usize;
        for _ in 0..trials {
            hub_total += sir_epidemic(&g, 0.35, 3, Immunization::Hubs { count: doses }, &mut rng)
                .total_infected;
            rand_total +=
                sir_epidemic(&g, 0.35, 3, Immunization::Random { count: doses }, &mut rng)
                    .total_infected;
        }
        assert!(
            (hub_total as f64) < 0.6 * rand_total as f64,
            "hubs {hub_total} vs random {rand_total}"
        );
    }
}

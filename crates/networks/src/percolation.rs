//! Giant-component analysis under node removal.
//!
//! Removing nodes and asking how large the biggest connected cluster
//! remains is the standard robustness probe for the §5.1 claims. Removal
//! curves are computed *additively*: nodes are inserted in reverse removal
//! order into a union–find, so a whole sweep costs near-linear time.

use crate::graph::Graph;
use crate::union_find::UnionFind;

/// Size of the largest connected component among the `alive` nodes.
pub fn giant_component_size(graph: &Graph, alive: &[bool]) -> usize {
    assert_eq!(alive.len(), graph.len(), "alive mask must cover every node");
    let mut uf = UnionFind::new(graph.len());
    let mut any_alive = false;
    for v in 0..graph.len() {
        if !alive[v] {
            continue;
        }
        any_alive = true;
        for &w in graph.neighbors(v) {
            let w = w as usize;
            if w < v && alive[w] {
                uf.union(v, w);
            }
        }
    }
    if !any_alive {
        return 0;
    }
    (0..graph.len())
        .filter(|&v| alive[v])
        .map(|v| uf.component_size(v))
        .max()
        .unwrap_or(0)
}

/// Largest-component size as a *fraction* of all nodes.
pub fn giant_component_fraction(graph: &Graph, alive: &[bool]) -> f64 {
    if graph.is_empty() {
        return 0.0;
    }
    giant_component_size(graph, alive) as f64 / graph.len() as f64
}

/// Giant-component fraction after removing each prefix of `removal_order`:
/// `result[k]` = fraction with the first `k` nodes removed. Computed by
/// adding nodes in reverse order (O((n + m) α(n)) total).
pub fn removal_curve(graph: &Graph, removal_order: &[usize]) -> Vec<f64> {
    let n = graph.len();
    assert!(
        removal_order.len() <= n,
        "cannot remove more nodes than exist"
    );
    let mut uf = UnionFind::new(n);
    // Insert the never-removed nodes first.
    let mut giant = 0usize;
    let insert = |uf: &mut UnionFind, alive: &mut Vec<bool>, v: usize, giant: &mut usize| {
        alive[v] = true;
        *giant = (*giant).max(1);
        for &w in graph.neighbors(v) {
            let w = w as usize;
            if alive[w] {
                uf.union(v, w);
            }
        }
        *giant = (*giant).max(uf.component_size(v));
    };
    {
        let survivors: Vec<usize> = (0..n).filter(|&v| !removal_order.contains(&v)).collect();
        let mut alive2 = vec![false; n];
        for &v in &survivors {
            insert(&mut uf, &mut alive2, v, &mut giant);
        }
        // Replay removals backwards, recording the curve back-to-front.
        let mut curve = vec![0.0; removal_order.len() + 1];
        let denom = n.max(1) as f64;
        curve[removal_order.len()] = giant as f64 / denom;
        for (k, &v) in removal_order.iter().enumerate().rev() {
            insert(&mut uf, &mut alive2, v, &mut giant);
            curve[k] = giant as f64 / denom;
        }
        curve
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, ring_lattice};

    #[test]
    fn intact_complete_graph_is_one_component() {
        let g = complete(6);
        let alive = vec![true; 6];
        assert_eq!(giant_component_size(&g, &alive), 6);
        assert!((giant_component_fraction(&g, &alive) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dead_nodes_break_components() {
        // Path 0-1-2-3 (ring minus nothing: use a ring of 4, k=1).
        let g = ring_lattice(5, 1);
        let mut alive = vec![true; 5];
        alive[0] = false;
        // Remaining path 1-2-3-4.
        assert_eq!(giant_component_size(&g, &alive), 4);
        alive[2] = false;
        // {1}, {3,4}.
        assert_eq!(giant_component_size(&g, &alive), 2);
    }

    #[test]
    fn all_dead_is_zero() {
        let g = complete(4);
        assert_eq!(giant_component_size(&g, &[false; 4]), 0);
        assert_eq!(giant_component_fraction(&g, &[false; 4]), 0.0);
    }

    #[test]
    fn removal_curve_is_monotone_decreasing() {
        let g = complete(8);
        let order: Vec<usize> = (0..5).collect();
        let curve = removal_curve(&g, &order);
        assert_eq!(curve.len(), 6);
        assert!((curve[0] - 1.0).abs() < 1e-12);
        for w in curve.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        // After removing 5 of 8: 3 nodes remain fully connected.
        assert!((curve[5] - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn removal_curve_matches_direct_computation() {
        let g = ring_lattice(12, 2);
        let order = vec![0, 3, 7, 9, 1];
        let curve = removal_curve(&g, &order);
        for k in 0..=order.len() {
            let mut alive = vec![true; 12];
            for &v in &order[..k] {
                alive[v] = false;
            }
            let direct = giant_component_fraction(&g, &alive);
            assert!(
                (curve[k] - direct).abs() < 1e-12,
                "k={k}: curve {} vs direct {direct}",
                curve[k]
            );
        }
    }

    #[test]
    #[should_panic(expected = "alive mask")]
    fn mask_length_checked() {
        let g = complete(3);
        let _ = giant_component_size(&g, &[true; 2]);
    }
}

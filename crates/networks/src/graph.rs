//! A compact undirected graph.

use serde::{Deserialize, Serialize};

/// An undirected graph stored as adjacency lists over `u32` node ids.
///
/// Parallel edges are permitted by the representation but the provided
/// generators avoid them; self-loops are rejected.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    adj: Vec<Vec<u32>>,
    edges: usize,
}

impl Graph {
    /// An edgeless graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Add an undirected edge.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or a self-loop.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert!(
            a < self.adj.len() && b < self.adj.len(),
            "endpoint out of range"
        );
        assert_ne!(a, b, "self-loops are not allowed");
        self.adj[a].push(b as u32);
        self.adj[b].push(a as u32);
        self.edges += 1;
    }

    /// Whether an edge `a—b` exists.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        a < self.adj.len() && self.adj[a].iter().any(|&x| x as usize == b)
    }

    /// Neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adj[v]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// All degrees.
    pub fn degrees(&self) -> Vec<usize> {
        self.adj.iter().map(Vec::len).collect()
    }

    /// Mean degree (`0` for an empty graph).
    pub fn mean_degree(&self) -> f64 {
        if self.adj.is_empty() {
            0.0
        } else {
            2.0 * self.edges as f64 / self.adj.len() as f64
        }
    }

    /// Nodes sorted by descending degree (hubs first) — the targeted-attack
    /// order of §5.1.
    pub fn nodes_by_degree_desc(&self) -> Vec<usize> {
        let mut nodes: Vec<usize> = (0..self.adj.len()).collect();
        nodes.sort_by_key(|&v| std::cmp::Reverse(self.adj[v].len()));
        nodes
    }

    /// Degree distribution as `(degree, count)` pairs, ascending.
    pub fn degree_distribution(&self) -> Vec<(usize, usize)> {
        let mut counts = std::collections::BTreeMap::new();
        for v in 0..self.adj.len() {
            *counts.entry(self.degree(v)).or_insert(0usize) += 1;
        }
        counts.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!((g.mean_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_endpoint() {
        let mut g = Graph::new(2);
        g.add_edge(0, 5);
    }

    #[test]
    fn hubs_first_ordering() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        g.add_edge(1, 2);
        let order = g.nodes_by_degree_desc();
        assert_eq!(order[0], 0); // the hub
        assert_eq!(*order.last().unwrap(), 3); // the leaf
    }

    #[test]
    fn degree_distribution_counts() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        let dist = g.degree_distribution();
        assert_eq!(dist, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert!(g.is_empty());
        assert_eq!(g.mean_degree(), 0.0);
        assert!(g.nodes_by_degree_desc().is_empty());
    }
}

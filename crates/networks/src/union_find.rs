//! Disjoint-set union (union–find) with path halving and union by size —
//! the workhorse of the percolation analyses.

/// A union–find structure over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
    largest: usize,
}

impl UnionFind {
    /// `n` singleton components.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
            largest: usize::from(n > 0),
        }
    }

    /// Representative of `x`'s component.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            // Path halving.
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x as usize
    }

    /// Merge the components of `a` and `b`; returns `true` if they were
    /// distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        self.largest = self.largest.max(self.size[ra] as usize);
        true
    }

    /// Whether `a` and `b` are in the same component.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of `x`'s component.
    pub fn component_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Size of the largest component (0 for an empty structure).
    pub fn largest_component(&self) -> usize {
        self.largest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        assert_eq!(uf.largest_component(), 1);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.component_size(3), 1);
    }

    #[test]
    fn unions_merge() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0)); // already merged
        assert!(uf.union(0, 2));
        assert!(uf.connected(1, 3));
        assert_eq!(uf.component_size(3), 4);
        assert_eq!(uf.component_count(), 3); // {0,1,2,3}, {4}, {5}
        assert_eq!(uf.largest_component(), 4);
    }

    #[test]
    fn empty_structure() {
        let uf = UnionFind::new(0);
        assert_eq!(uf.component_count(), 0);
        assert_eq!(uf.largest_component(), 0);
    }

    proptest! {
        #[test]
        fn prop_component_sizes_sum_to_n(n in 1usize..80, ops in proptest::collection::vec((0usize..80, 0usize..80), 0..160)) {
            let mut uf = UnionFind::new(n);
            for (a, b) in ops {
                if a % n != b % n {
                    uf.union(a % n, b % n);
                }
            }
            let mut seen = std::collections::HashSet::new();
            let mut total = 0;
            for x in 0..n {
                let r = uf.find(x);
                if seen.insert(r) {
                    total += uf.component_size(r);
                }
            }
            prop_assert_eq!(total, n);
            prop_assert_eq!(seen.len(), uf.component_count());
        }
    }
}

//! Graph generators: Barabási–Albert scale-free networks, Erdős–Rényi
//! random graphs, and reference lattices.

use rand::Rng;

use crate::graph::Graph;

/// Barabási–Albert preferential attachment: start from a small complete
/// seed of `m + 1` nodes, then attach each new node to `m` distinct
/// existing nodes chosen with probability proportional to degree (via the
/// repeated-endpoint trick). Produces the power-law degree distribution
/// behind §5.1's scale-free robustness claims.
///
/// # Panics
///
/// Panics if `m == 0` or `n < m + 1`.
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    assert!(m > 0, "attachment count m must be positive");
    assert!(n > m, "need more nodes than the seed size");
    let mut g = Graph::new(n);
    // Complete seed on m+1 nodes.
    let seed = m + 1;
    // Endpoint multiset: each edge contributes both endpoints, so sampling
    // uniformly from it is degree-proportional sampling.
    let mut endpoints: Vec<u32> = Vec::with_capacity(4 * n * m);
    for a in 0..seed {
        for b in (a + 1)..seed {
            g.add_edge(a, b);
            endpoints.push(a as u32);
            endpoints.push(b as u32);
        }
    }
    for v in seed..n {
        let mut targets = Vec::with_capacity(m);
        while targets.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())] as usize;
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            g.add_edge(v, t);
            endpoints.push(v as u32);
            endpoints.push(t as u32);
        }
    }
    g
}

/// Erdős–Rényi `G(n, p)`: each pair independently connected with
/// probability `p`.
///
/// # Panics
///
/// Panics if `p ∉ [0, 1]`.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!(
        (0.0..=1.0).contains(&p),
        "edge probability must be in [0,1]"
    );
    let mut g = Graph::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(a, b);
            }
        }
    }
    g
}

/// A ring lattice where each node connects to its `k` nearest neighbors on
/// each side.
///
/// # Panics
///
/// Panics if `2k ≥ n` (the ring would wrap onto itself).
pub fn ring_lattice(n: usize, k: usize) -> Graph {
    assert!(
        n > 2 * k,
        "ring of {n} nodes cannot host {k} neighbors per side"
    );
    let mut g = Graph::new(n);
    for v in 0..n {
        for d in 1..=k {
            let w = (v + d) % n;
            g.add_edge(v, w);
        }
    }
    g
}

/// Watts–Strogatz small world: a ring lattice with each edge's far
/// endpoint rewired to a uniformly random node with probability `beta`
/// (avoiding self-loops; rewiring avoids duplicating an existing pair
/// where possible). `beta = 0` is the lattice; `beta = 1` approaches a
/// random graph. The edge count is always exactly `n·k` — in the rare
/// collision where a rewired edge already claimed a lattice pair, the
/// pair is kept as a parallel edge rather than dropped.
///
/// # Panics
///
/// Panics if `2k ≥ n` or `beta ∉ [0, 1]`.
pub fn watts_strogatz<R: Rng + ?Sized>(n: usize, k: usize, beta: f64, rng: &mut R) -> Graph {
    assert!(
        n > 2 * k,
        "ring of {n} nodes cannot host {k} neighbors per side"
    );
    assert!(
        (0.0..=1.0).contains(&beta),
        "rewiring probability must be in [0,1]"
    );
    let mut g = Graph::new(n);
    for v in 0..n {
        for d in 1..=k {
            let w = (v + d) % n;
            if beta > 0.0 && rng.gen_bool(beta) {
                // Rewire the far endpoint.
                let mut attempts = 0;
                loop {
                    let t = rng.gen_range(0..n);
                    if t != v && !g.has_edge(v, t) {
                        g.add_edge(v, t);
                        break;
                    }
                    attempts += 1;
                    if attempts > 4 * n {
                        // Dense corner case: fall back to the lattice edge.
                        g.add_edge(v, w);
                        break;
                    }
                }
            } else {
                g.add_edge(v, w);
            }
        }
    }
    g
}

/// Planted-partition (stochastic block) graph: `blocks` equal communities
/// over `n` nodes; within-community pairs connect with probability `p_in`,
/// cross-community pairs with `p_out`. With `p_in ≫ p_out` this is the
/// *modularized* architecture §4.5 recommends for damage containment.
///
/// # Panics
///
/// Panics if `blocks == 0` or either probability is outside `[0, 1]`.
pub fn planted_partition<R: Rng + ?Sized>(
    n: usize,
    blocks: usize,
    p_in: f64,
    p_out: f64,
    rng: &mut R,
) -> Graph {
    assert!(blocks > 0, "need at least one block");
    assert!((0.0..=1.0).contains(&p_in), "p_in must be in [0,1]");
    assert!((0.0..=1.0).contains(&p_out), "p_out must be in [0,1]");
    let mut g = Graph::new(n);
    let block_of = |v: usize| v * blocks / n.max(1);
    for a in 0..n {
        for b in (a + 1)..n {
            let p = if block_of(a) == block_of(b) {
                p_in
            } else {
                p_out
            };
            if p > 0.0 && rng.gen_bool(p) {
                g.add_edge(a, b);
            }
        }
    }
    g
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            g.add_edge(a, b);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::seeded_rng;

    #[test]
    fn ba_node_and_edge_counts() {
        let mut rng = seeded_rng(101);
        let n = 500;
        let m = 3;
        let g = barabasi_albert(n, m, &mut rng);
        assert_eq!(g.len(), n);
        // Seed: C(m+1, 2) edges; each later node adds m.
        let expected = m * (m + 1) / 2 + (n - m - 1) * m;
        assert_eq!(g.edge_count(), expected);
        // Minimum degree is m.
        assert!(g.degrees().iter().all(|&d| d >= m));
    }

    #[test]
    fn ba_produces_hubs() {
        let mut rng = seeded_rng(102);
        let g = barabasi_albert(2_000, 2, &mut rng);
        let max_deg = *g.degrees().iter().max().unwrap();
        let mean = g.mean_degree();
        // Scale-free: the largest hub dwarfs the mean degree.
        assert!(max_deg as f64 > 8.0 * mean, "max {max_deg} vs mean {mean}");
    }

    #[test]
    fn ba_degree_distribution_is_heavy_tailed() {
        let mut rng = seeded_rng(103);
        let g = barabasi_albert(3_000, 2, &mut rng);
        let degrees: Vec<f64> = g.degrees().iter().map(|&d| d as f64).collect();
        // Hill tail-index of a BA network's degree sequence ≈ 2–3; an ER
        // graph's Poisson degrees give a much larger (thin-tail) value.
        let hill_ba = resilience_stats::hill_estimator(&degrees, 300).unwrap();
        let er = erdos_renyi(3_000, 4.0 / 3_000.0, &mut rng);
        let er_degrees: Vec<f64> = er.degrees().iter().map(|&d| d as f64).collect();
        let hill_er = resilience_stats::hill_estimator(&er_degrees, 300).unwrap();
        assert!(
            hill_ba < 4.0 && hill_er > hill_ba,
            "BA {hill_ba} vs ER {hill_er}"
        );
    }

    #[test]
    #[should_panic(expected = "more nodes than the seed")]
    fn ba_rejects_tiny_n() {
        let mut rng = seeded_rng(104);
        let _ = barabasi_albert(3, 3, &mut rng);
    }

    #[test]
    fn er_edge_count_near_expectation() {
        let mut rng = seeded_rng(105);
        let n = 400;
        let p = 0.02;
        let g = erdos_renyi(n, p, &mut rng);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.edge_count() as f64;
        assert!(
            (got - expected).abs() < 0.2 * expected,
            "edges {got} vs expected {expected}"
        );
    }

    #[test]
    fn er_extreme_probabilities() {
        let mut rng = seeded_rng(106);
        assert_eq!(erdos_renyi(20, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(erdos_renyi(20, 1.0, &mut rng).edge_count(), 190);
    }

    #[test]
    fn ring_lattice_regular() {
        let g = ring_lattice(10, 2);
        assert!(g.degrees().iter().all(|&d| d == 4));
        assert_eq!(g.edge_count(), 20);
    }

    #[test]
    fn watts_strogatz_zero_beta_is_the_lattice() {
        let mut rng = seeded_rng(107);
        let ws = watts_strogatz(20, 2, 0.0, &mut rng);
        let ring = ring_lattice(20, 2);
        assert_eq!(ws.edge_count(), ring.edge_count());
        assert!(ws.degrees().iter().all(|&d| d == 4));
    }

    #[test]
    fn watts_strogatz_preserves_edge_count() {
        let mut rng = seeded_rng(108);
        for beta in [0.1, 0.5, 1.0] {
            let ws = watts_strogatz(60, 3, beta, &mut rng);
            assert_eq!(ws.edge_count(), 60 * 3, "beta {beta}");
            // No self-loop panic occurred, degrees stay reasonable.
            assert!(ws.degrees().iter().all(|&d| d >= 1));
        }
    }

    #[test]
    fn watts_strogatz_rewiring_spreads_degrees() {
        let mut rng = seeded_rng(109);
        let rewired = watts_strogatz(200, 2, 1.0, &mut rng);
        let degrees = rewired.degrees();
        let min = *degrees.iter().min().unwrap();
        let max = *degrees.iter().max().unwrap();
        assert!(max > min, "full rewiring breaks the regular lattice");
    }

    #[test]
    #[should_panic(expected = "rewiring probability")]
    fn watts_strogatz_rejects_bad_beta() {
        let mut rng = seeded_rng(110);
        let _ = watts_strogatz(10, 1, 1.5, &mut rng);
    }

    #[test]
    fn planted_partition_density_structure() {
        let mut rng = seeded_rng(111);
        let n = 200;
        let blocks = 4;
        let g = planted_partition(n, blocks, 0.3, 0.01, &mut rng);
        // Count within- vs cross-block edges.
        let block_of = |v: usize| v * blocks / n;
        let mut within = 0usize;
        let mut cross = 0usize;
        for a in 0..n {
            for &b in g.neighbors(a) {
                let b = b as usize;
                if b > a {
                    if block_of(a) == block_of(b) {
                        within += 1;
                    } else {
                        cross += 1;
                    }
                }
            }
        }
        // Expected within ≈ 4·C(50,2)·0.3 = 1470; cross ≈ 7500·0.01 = 75.
        assert!(within > 10 * cross, "within {within} vs cross {cross}");
    }

    #[test]
    fn planted_partition_extremes() {
        let mut rng = seeded_rng(112);
        assert_eq!(planted_partition(30, 3, 0.0, 0.0, &mut rng).edge_count(), 0);
        let full = planted_partition(12, 3, 1.0, 1.0, &mut rng);
        assert_eq!(full.edge_count(), 12 * 11 / 2);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn planted_partition_rejects_zero_blocks() {
        let mut rng = seeded_rng(113);
        let _ = planted_partition(10, 0, 0.1, 0.1, &mut rng);
    }

    #[test]
    fn complete_graph() {
        let g = complete(5);
        assert_eq!(g.edge_count(), 10);
        assert!(g.degrees().iter().all(|&d| d == 4));
    }
}

//! The metrics registry: counters, gauges, and fixed-bucket histograms
//! with Prometheus-style text exposition and a JSON export.
//!
//! Determinism contract: metrics are keyed in a `BTreeMap`, histogram
//! buckets are fixed at first observation, and both expositions render
//! with `{}` float formatting — so two runs that record the same
//! logical values produce byte-identical text, regardless of thread
//! budget or recording order.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A fixed-bucket histogram (Prometheus semantics: `le` buckets are
/// cumulative in exposition, stored here as per-bucket counts plus an
/// implicit `+Inf` overflow bucket).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bounds of the finite buckets, strictly increasing.
    bounds: Vec<f64>,
    /// Per-bucket counts; `counts[bounds.len()]` is the `+Inf` bucket.
    counts: Vec<u64>,
    /// Sum of all observed values.
    sum: f64,
    /// Number of observations.
    count: u64,
}

impl Histogram {
    /// An empty histogram over `bounds` (must be strictly increasing
    /// and finite).
    pub fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Cumulative `(le, count)` pairs, ending with `(+Inf, count)`.
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(self.bounds.len() + 1);
        for (i, &b) in self.bounds.iter().enumerate() {
            acc += self.counts[i];
            out.push((b, acc));
        }
        out.push((f64::INFINITY, self.count));
        out
    }
}

/// The value of one registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter.
    Counter(u64),
    /// Point-in-time value.
    Gauge(f64),
    /// Fixed-bucket histogram.
    Histogram(Histogram),
}

impl MetricValue {
    fn type_name(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Metric {
    help: String,
    value: MetricValue,
}

/// The registry: named metrics in deterministic (lexicographic) order.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add `v` to counter `name`, registering it with `help` on first
    /// use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different type.
    pub fn inc_counter(&mut self, name: &str, help: &str, v: u64) {
        let metric = self.entry(name, help, || MetricValue::Counter(0));
        match &mut metric.value {
            MetricValue::Counter(c) => *c += v,
            other => panic!("metric `{name}` is a {}, not a counter", other.type_name()),
        }
    }

    /// Set gauge `name` to `v`, registering it with `help` on first
    /// use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different type.
    pub fn set_gauge(&mut self, name: &str, help: &str, v: f64) {
        let metric = self.entry(name, help, || MetricValue::Gauge(0.0));
        match &mut metric.value {
            MetricValue::Gauge(g) => *g = v,
            other => panic!("metric `{name}` is a {}, not a gauge", other.type_name()),
        }
    }

    /// Add `delta` to gauge `name` (gauges may move both ways),
    /// registering it with `help` on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different type.
    pub fn add_gauge(&mut self, name: &str, help: &str, delta: f64) {
        let metric = self.entry(name, help, || MetricValue::Gauge(0.0));
        match &mut metric.value {
            MetricValue::Gauge(g) => *g += delta,
            other => panic!("metric `{name}` is a {}, not a gauge", other.type_name()),
        }
    }

    /// Observe `v` into histogram `name`, registering it with `help`
    /// and `bounds` on first use (later calls keep the first bounds).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different type.
    pub fn observe(&mut self, name: &str, help: &str, bounds: &[f64], v: f64) {
        let metric = self.entry(name, help, || {
            MetricValue::Histogram(Histogram::new(bounds))
        });
        match &mut metric.value {
            MetricValue::Histogram(h) => h.observe(v),
            other => panic!(
                "metric `{name}` is a {}, not a histogram",
                other.type_name()
            ),
        }
    }

    /// Look up a registered metric's value.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.get(name).map(|m| &m.value)
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    fn entry(&mut self, name: &str, help: &str, init: impl FnOnce() -> MetricValue) -> &mut Metric {
        self.metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric {
                help: help.to_string(),
                value: init(),
            })
    }

    /// Prometheus text exposition (format version 0.0.4): `# HELP` /
    /// `# TYPE` headers plus samples, families in lexicographic order.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, metric) in &self.metrics {
            let _ = writeln!(out, "# HELP {name} {}", metric.help);
            let _ = writeln!(out, "# TYPE {name} {}", metric.value.type_name());
            match &metric.value {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "{name} {c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "{name} {g}");
                }
                MetricValue::Histogram(h) => {
                    for (le, count) in h.cumulative() {
                        if le.is_finite() {
                            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {count}");
                        } else {
                            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}");
                        }
                    }
                    let _ = writeln!(out, "{name}_sum {}", h.sum());
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }

    /// JSON export: `{"metrics": [{name, help, type, ...}, ...]}` in
    /// the same deterministic order as the Prometheus exposition.
    pub fn to_json_value(&self) -> serde::Value {
        let metrics: Vec<serde::Value> = self
            .metrics
            .iter()
            .map(|(name, metric)| {
                let mut fields = vec![
                    ("name".to_string(), serde::Value::String(name.clone())),
                    (
                        "help".to_string(),
                        serde::Value::String(metric.help.clone()),
                    ),
                    (
                        "type".to_string(),
                        serde::Value::String(metric.value.type_name().to_string()),
                    ),
                ];
                match &metric.value {
                    MetricValue::Counter(c) => {
                        fields.push(("value".to_string(), serde::Value::UInt(*c)));
                    }
                    MetricValue::Gauge(g) => {
                        fields.push(("value".to_string(), serde::Value::Float(*g)));
                    }
                    MetricValue::Histogram(h) => {
                        let buckets: Vec<serde::Value> = h
                            .cumulative()
                            .into_iter()
                            .map(|(le, count)| {
                                serde::Value::Object(vec![
                                    (
                                        "le".to_string(),
                                        if le.is_finite() {
                                            serde::Value::Float(le)
                                        } else {
                                            serde::Value::String("+Inf".to_string())
                                        },
                                    ),
                                    ("count".to_string(), serde::Value::UInt(count)),
                                ])
                            })
                            .collect();
                        fields.push(("buckets".to_string(), serde::Value::Array(buckets)));
                        fields.push(("sum".to_string(), serde::Value::Float(h.sum())));
                        fields.push(("count".to_string(), serde::Value::UInt(h.count())));
                    }
                }
                serde::Value::Object(fields)
            })
            .collect();
        serde::Value::Object(vec![("metrics".to_string(), serde::Value::Array(metrics))])
    }

    /// The JSON export rendered as deterministic pretty text (one
    /// trailing newline), the `--metrics-out` format.
    pub fn to_json(&self) -> String {
        let rendered =
            serde_json::to_string_pretty(&self.to_json_value()).expect("metrics serialize");
        format!("{rendered}\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_is_ordered_and_typed() {
        let mut reg = MetricsRegistry::new();
        reg.inc_counter("zeta_total", "last family", 3);
        reg.set_gauge("alpha_ratio", "first family", 0.5);
        reg.inc_counter("zeta_total", "last family", 2);
        let prom = reg.to_prometheus();
        let alpha = prom.find("alpha_ratio").expect("gauge present");
        let zeta = prom.find("zeta_total").expect("counter present");
        assert!(alpha < zeta, "families must be lexicographic");
        assert!(prom.contains("# TYPE alpha_ratio gauge"));
        assert!(prom.contains("zeta_total 5"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut reg = MetricsRegistry::new();
        for v in [0.5, 1.5, 1.5, 9.0] {
            reg.observe("lat", "latency", &[1.0, 2.0, 4.0], v);
        }
        let prom = reg.to_prometheus();
        assert!(prom.contains("lat_bucket{le=\"1\"} 1"));
        assert!(prom.contains("lat_bucket{le=\"2\"} 3"));
        assert!(prom.contains("lat_bucket{le=\"4\"} 3"));
        assert!(prom.contains("lat_bucket{le=\"+Inf\"} 4"));
        assert!(prom.contains("lat_count 4"));
    }

    #[test]
    fn json_and_prometheus_agree_on_order() {
        let mut reg = MetricsRegistry::new();
        reg.set_gauge("b_gauge", "b", 1.0);
        reg.inc_counter("a_total", "a", 1);
        let json = reg.to_json();
        let a = json.find("a_total").expect("a present");
        let b = json.find("b_gauge").expect("b present");
        assert!(a < b);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn type_confusion_panics() {
        let mut reg = MetricsRegistry::new();
        reg.set_gauge("x", "x", 1.0);
        reg.inc_counter("x", "x", 1);
    }
}

//! Telemetry derivation from supervised-runtime reports.
//!
//! The MAPE-K supervisor runs on its own thread and adjudicates worker
//! events in arrival (wall-clock) order, so emitting trace events
//! *live* from inside the loop would bake scheduling noise into the
//! trace. Instead the runtime retains its logical knowledge base — the
//! attempt log, sorted by `(attempt, trial)` — on the [`RunReport`],
//! and this module replays it after the fact: every retry, plan, and
//! loss event is stamped with the attempt number as its logical tick.
//! The derivation is a pure function of the report, so the trace is
//! bit-identical for any thread budget by construction.

use resilience_core::faults::RunReport;

use crate::metrics::MetricsRegistry;
use crate::trace::{Event, PlanAction, Tracer};
use crate::trajectory::TrajectoryObserver;

/// Replay `report`'s attempt log into `tracer`: one lane per stream
/// segment (lane = segment index + 1; lane 0 stays reserved for the
/// caller), tick = attempt number.
///
/// Quiet attempts (first try, succeeded) emit nothing — they are the
/// overwhelmingly common case and belong in the metrics, not the
/// trace. Emitted events:
///
/// * [`Event::SupervisorPlan`] for every failed attempt — `Retry` if a
///   later attempt of the trial exists in the log, else `GiveUp`;
/// * [`Event::TrialRetried`] for every attempt with `attempt > 0` (a
///   re-dispatch actually executing);
/// * [`Event::TrialLost`] when a trial's terminal failure is
///   adjudicated.
pub fn record_run_events(tracer: &mut Tracer, report: &RunReport) {
    for (seg_idx, segment) in report.segments.iter().enumerate() {
        let mut buf = tracer.lane_buffer(seg_idx as u32 + 1);
        // Which (attempt, trial) pairs exist, to distinguish a failure
        // that was retried from a terminal one. The log is sorted by
        // `(attempt, trial)`, so a sorted key vector built in one pass
        // beats a tree set rebuilt from 50k inserts.
        let keys: Vec<(u32, u64)> = segment.log.iter().map(|r| (r.attempt, r.trial)).collect();
        debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        let mut failures: std::collections::BTreeMap<u64, u32> = std::collections::BTreeMap::new();
        for rec in &segment.log {
            let tick = rec.attempt as u64;
            if rec.attempt > 0 {
                buf.record(
                    tick,
                    Event::TrialRetried {
                        trial: rec.trial,
                        attempt: rec.attempt,
                    },
                );
            }
            if !rec.ok {
                let count = failures.entry(rec.trial).or_insert(0);
                *count += 1;
                let retried = keys.binary_search(&(rec.attempt + 1, rec.trial)).is_ok();
                buf.record(
                    tick,
                    Event::SupervisorPlan {
                        trial: rec.trial,
                        failures: *count,
                        action: if retried {
                            PlanAction::Retry
                        } else {
                            PlanAction::GiveUp
                        },
                    },
                );
                if !retried && segment.lost.binary_search(&rec.trial).is_ok() {
                    let cause = report
                        .lost
                        .iter()
                        .find(|l| l.trial == rec.trial)
                        .map(|l| l.cause.to_string())
                        .unwrap_or_else(|| "unknown".to_string());
                    buf.record(
                        tick,
                        Event::TrialLost {
                            trial: rec.trial,
                            cause,
                        },
                    );
                }
            }
        }
        tracer.absorb(buf);
    }
}

/// Fold `report`'s aggregates into `registry` under the `runtime_`
/// metric family.
pub fn record_run_metrics(registry: &mut MetricsRegistry, report: &RunReport) {
    registry.inc_counter(
        "runtime_trials_total",
        "Trial slots supervised",
        report.trials,
    );
    registry.inc_counter(
        "runtime_attempts_total",
        "Attempts executed (retries included)",
        report.attempts,
    );
    registry.inc_counter(
        "runtime_faults_injected_total",
        "Attempts on which the fault plan fired",
        report.faults_injected,
    );
    registry.inc_counter(
        "runtime_trials_recovered_total",
        "Trials that failed at least once but completed",
        report.recovered,
    );
    registry.inc_counter(
        "runtime_trials_lost_total",
        "Trials abandoned after exhausting the retry budget",
        report.lost.len() as u64,
    );
    registry.add_gauge(
        "runtime_resilience_loss",
        "Bruneau R of the runtime's own health trajectory",
        report.resilience_loss(),
    );
}

/// Rebuild the report's health trajectory as a [`TrajectoryObserver`],
/// attributing each sample's deficit to [`Retry`] (unhealthy trials the
/// supervisor will re-dispatch) vs [`Failed`] (trials lost for good).
/// The observed quality samples are bit-identical to `report.health`.
///
/// [`Retry`]: crate::trajectory::DeficitCause::Retry
/// [`Failed`]: crate::trajectory::DeficitCause::Failed
pub fn trajectory_of_run(report: &RunReport) -> TrajectoryObserver {
    let mut obs = TrajectoryObserver::new(report.health.dt());
    for segment in &report.segments {
        // Mirror `health_from_log`: a leading full-quality sample, then
        // one sample per adjudicated attempt.
        obs.push_full();
        if segment.trials == 0 {
            continue;
        }
        let mut unhealthy: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        // Count lost-and-unhealthy incrementally on set transitions:
        // re-deriving it from the full set every record is quadratic in
        // the failure count under a chaos plan.
        let mut lost_unhealthy: u64 = 0;
        for rec in &segment.log {
            if rec.ok {
                if unhealthy.remove(&rec.trial) && segment.lost.binary_search(&rec.trial).is_ok() {
                    lost_unhealthy -= 1;
                }
            } else if unhealthy.insert(rec.trial) && segment.lost.binary_search(&rec.trial).is_ok()
            {
                lost_unhealthy += 1;
            }
            obs.push_health(
                segment.trials - unhealthy.len() as u64,
                lost_unhealthy,
                segment.trials,
            );
        }
    }
    obs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::DeficitCause;
    use resilience_core::faults::{AttemptRecord, AttemptSegment, FailureCause, LostTrial};

    fn rec(trial: u64, attempt: u32, ok: bool) -> AttemptRecord {
        AttemptRecord { trial, attempt, ok }
    }

    fn sample_report() -> RunReport {
        let mut report = RunReport::new("test");
        report.trials = 4;
        report.attempts = 7;
        report.recovered = 1;
        report.lost = vec![LostTrial {
            stream: 9,
            trial: 2,
            cause: FailureCause::Panicked,
            detail: "boom".to_string(),
        }];
        let mut log = vec![
            rec(0, 0, true),
            rec(1, 0, false),
            rec(2, 0, false),
            rec(3, 0, true),
            rec(1, 1, true),
            rec(2, 1, false),
        ];
        report.health = RunReport::health_from_log(4, &mut log);
        report.segments = vec![AttemptSegment {
            trials: 4,
            log,
            lost: vec![2],
        }];
        report
    }

    #[test]
    fn events_cover_retries_plans_and_losses() {
        let report = sample_report();
        let mut tracer = Tracer::new();
        record_run_events(&mut tracer, &report);
        let events: Vec<Event> = tracer.merged().into_iter().map(|e| e.event).collect();
        assert!(events.contains(&Event::TrialRetried {
            trial: 1,
            attempt: 1
        }));
        assert!(events.contains(&Event::SupervisorPlan {
            trial: 1,
            failures: 1,
            action: PlanAction::Retry
        }));
        assert!(events.contains(&Event::SupervisorPlan {
            trial: 2,
            failures: 2,
            action: PlanAction::GiveUp
        }));
        assert!(events.contains(&Event::TrialLost {
            trial: 2,
            cause: "panicked".to_string()
        }));
        // Quiet attempts (trials 0 and 3) emit nothing.
        assert_eq!(events.len(), 6);
    }

    #[test]
    fn trajectory_matches_report_health_bitwise() {
        let report = sample_report();
        let obs = trajectory_of_run(&report);
        assert_eq!(obs.quality(), &report.health);
        let attr = obs.attribution();
        let sum = attr.components_sum();
        assert!((sum - attr.total).abs() <= 1e-9 * attr.total.max(1.0));
        assert!(attr.failed > 0.0, "lost trial must charge `failed`");
        assert!(attr.retry > 0.0, "recovered trial must charge `retry`");
        assert_eq!(
            obs.cause_series(DeficitCause::Shed).iter().sum::<f64>(),
            0.0
        );
    }

    #[test]
    fn metrics_accumulate_across_reports() {
        let report = sample_report();
        let mut reg = MetricsRegistry::new();
        record_run_metrics(&mut reg, &report);
        record_run_metrics(&mut reg, &report);
        let prom = reg.to_prometheus();
        assert!(prom.contains("runtime_trials_total 8"));
        assert!(prom.contains("runtime_trials_lost_total 2"));
    }
}

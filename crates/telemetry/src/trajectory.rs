//! Live Q(t)/Bruneau scoring with per-cause deficit attribution.
//!
//! A [`TrajectoryObserver`] folds telemetry charges into the quality
//! series *incrementally*, exactly mirroring how the instrumented
//! layer computes its own Q(t): charges accumulate in call order into
//! one running total (so the observed quality sample is bit-identical
//! to the layer's own), while per-cause sub-accumulators split the
//! same deficit by *why* quality was lost — a request shed, a hard
//! failure, a degraded (reduced/cached) response, or a supervisor
//! retry in flight.
//!
//! Integrating each per-cause deficit series with the same trapezoid
//! rule as [`bruneau::resilience_loss`] yields a [`DeficitAttribution`]
//! whose components sum to the run's total Bruneau deficit (up to
//! float-addition association — the trapezoid is linear, so the only
//! discrepancy is summation order; the reconciliation tests bound it
//! at one part in 10⁹).

use resilience_core::bruneau::resilience_loss;
use resilience_core::quality::{QualityTrajectory, FULL_QUALITY};
use serde::Serialize;

/// Why a unit of quality was lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum DeficitCause {
    /// Request turned away at admission.
    Shed,
    /// Hard failure (backend fault with degradation off, or a trial
    /// lost for good).
    Failed,
    /// Served degraded: reduced fidelity or a cached answer.
    Degraded,
    /// Trial unhealthy but still inside its retry budget (the
    /// supervisor will re-dispatch it).
    Retry,
}

impl DeficitCause {
    /// All causes, in attribution-report order.
    pub const ALL: [DeficitCause; 4] = [
        DeficitCause::Shed,
        DeficitCause::Failed,
        DeficitCause::Degraded,
        DeficitCause::Retry,
    ];

    /// Stable lowercase label (metric/JSON key).
    pub fn as_str(self) -> &'static str {
        match self {
            DeficitCause::Shed => "shed",
            DeficitCause::Failed => "failed",
            DeficitCause::Degraded => "degraded",
            DeficitCause::Retry => "retry",
        }
    }

    fn index(self) -> usize {
        match self {
            DeficitCause::Shed => 0,
            DeficitCause::Failed => 1,
            DeficitCause::Degraded => 2,
            DeficitCause::Retry => 3,
        }
    }
}

/// Bruneau deficit split by cause: each component is the trapezoidal
/// integral of that cause's quality-point deficit series, and `total`
/// is `resilience_loss` of the observed trajectory itself.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DeficitAttribution {
    /// Area lost to shed requests.
    pub shed: f64,
    /// Area lost to hard failures / lost trials.
    pub failed: f64,
    /// Area lost to degraded (reduced or cached) responses.
    pub degraded: f64,
    /// Area lost to trials awaiting a supervisor retry.
    pub retry: f64,
    /// `resilience_loss` of the full trajectory.
    pub total: f64,
}

impl DeficitAttribution {
    /// Sum of the four per-cause components (should reconcile with
    /// `total` up to float association).
    pub fn components_sum(&self) -> f64 {
        self.shed + self.failed + self.degraded + self.retry
    }
}

/// Folds per-tick deficit charges into a quality trajectory plus
/// per-cause deficit series, in lock-step with the instrumented layer.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryObserver {
    quality: QualityTrajectory,
    /// Per-cause quality-point deficits, one entry per quality sample.
    series: [Vec<f64>; 4],
    /// Charges accumulated since the last sample, per cause.
    pending: [f64; 4],
    /// Charges accumulated since the last sample, in call order —
    /// mirrors the instrumented layer's own single accumulator so the
    /// derived quality sample is bit-identical to the layer's.
    pending_total: f64,
}

impl TrajectoryObserver {
    /// An empty observer with sample spacing `dt`.
    pub fn new(dt: f64) -> Self {
        TrajectoryObserver {
            quality: QualityTrajectory::new(dt),
            series: [Vec::new(), Vec::new(), Vec::new(), Vec::new()],
            pending: [0.0; 4],
            pending_total: 0.0,
        }
    }

    /// Charge `penalty` (in per-adjudication deficit units, the same
    /// units the layer adds to its own deficit accumulator) to `cause`.
    pub fn charge(&mut self, cause: DeficitCause, penalty: f64) {
        self.pending[cause.index()] += penalty;
        self.pending_total += penalty;
    }

    /// Close the tick: with `adjudicated` decisions this tick, sample
    /// `Q = 100·(1 − deficit/adjudicated)` (or 100 when nothing was
    /// adjudicated) and commit the per-cause split. Returns the sample.
    pub fn end_tick(&mut self, adjudicated: u64) -> f64 {
        let q = if adjudicated == 0 {
            FULL_QUALITY
        } else {
            FULL_QUALITY * (1.0 - self.pending_total / adjudicated as f64)
        };
        self.quality.push(q);
        for (i, series) in self.series.iter_mut().enumerate() {
            let pts = if adjudicated == 0 {
                0.0
            } else {
                FULL_QUALITY * self.pending[i] / adjudicated as f64
            };
            series.push(pts);
        }
        self.pending = [0.0; 4];
        self.pending_total = 0.0;
        q
    }

    /// Push a full-quality sample with no charges (baseline sample or
    /// a demand-free tick).
    pub fn push_full(&mut self) {
        self.quality.push(FULL_QUALITY);
        for series in &mut self.series {
            series.push(0.0);
        }
        self.pending = [0.0; 4];
        self.pending_total = 0.0;
    }

    /// Push a supervised-runtime health sample: `healthy` of `n` trial
    /// slots healthy, of which `lost` are unhealthy-for-good. The
    /// quality sample is `100·healthy/n` — bit-identical to
    /// `RunReport::health_from_log` — with the deficit split between
    /// [`DeficitCause::Failed`] (`100·lost/n`) and
    /// [`DeficitCause::Retry`] (the exact residual, so the per-sample
    /// causes always sum to `100 − Q`).
    pub fn push_health(&mut self, healthy: u64, lost: u64, n: u64) {
        debug_assert!(healthy + lost <= n.max(1));
        if n == 0 {
            self.push_full();
            return;
        }
        let q = FULL_QUALITY * healthy as f64 / n as f64;
        let failed_pts = FULL_QUALITY * lost as f64 / n as f64;
        let retry_pts = (FULL_QUALITY - q) - failed_pts;
        self.quality.push(q);
        self.series[DeficitCause::Shed.index()].push(0.0);
        self.series[DeficitCause::Failed.index()].push(failed_pts);
        self.series[DeficitCause::Degraded.index()].push(0.0);
        self.series[DeficitCause::Retry.index()].push(retry_pts.max(0.0));
        self.pending = [0.0; 4];
        self.pending_total = 0.0;
    }

    /// The observed quality trajectory.
    pub fn quality(&self) -> &QualityTrajectory {
        &self.quality
    }

    /// The per-sample quality-point deficit series for `cause`.
    pub fn cause_series(&self, cause: DeficitCause) -> &[f64] {
        &self.series[cause.index()]
    }

    /// Integrate the attribution: per-cause trapezoidal areas plus the
    /// trajectory's own `resilience_loss` as the authoritative total.
    pub fn attribution(&self) -> DeficitAttribution {
        DeficitAttribution {
            shed: self.cause_area(DeficitCause::Shed),
            failed: self.cause_area(DeficitCause::Failed),
            degraded: self.cause_area(DeficitCause::Degraded),
            retry: self.cause_area(DeficitCause::Retry),
            total: resilience_loss(&self.quality),
        }
    }

    /// Trapezoidal integral of one cause's deficit series, using the
    /// same rule (and the same `dt`) as `bruneau::resilience_loss`.
    fn cause_area(&self, cause: DeficitCause) -> f64 {
        let s = &self.series[cause.index()];
        if s.len() < 2 {
            return 0.0;
        }
        let dt = self.quality.dt();
        let mut area = 0.0;
        for w in s.windows(2) {
            area += 0.5 * (w[0] + w[1]) * dt;
        }
        area
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
    }

    #[test]
    fn attribution_sums_to_total() {
        let mut obs = TrajectoryObserver::new(1.0);
        obs.push_full();
        for tick in 0..50u64 {
            if tick % 3 == 0 {
                obs.charge(DeficitCause::Shed, 1.0);
            }
            if tick % 7 == 0 {
                obs.charge(DeficitCause::Failed, 1.0);
            }
            obs.charge(DeficitCause::Degraded, 0.25);
            obs.charge(DeficitCause::Degraded, 0.5);
            obs.end_tick(4);
        }
        let attr = obs.attribution();
        assert!(attr.total > 0.0);
        assert!(
            close(attr.components_sum(), attr.total),
            "components {} vs total {}",
            attr.components_sum(),
            attr.total
        );
    }

    #[test]
    fn quality_sample_matches_layer_formula() {
        let mut obs = TrajectoryObserver::new(1.0);
        obs.charge(DeficitCause::Shed, 1.0);
        obs.charge(DeficitCause::Degraded, 0.5);
        let q = obs.end_tick(3);
        // Exactly the layer's own expression, same operand order.
        assert_eq!(q, FULL_QUALITY * (1.0 - (1.0 + 0.5) / 3.0));
        assert_eq!(obs.end_tick(0), FULL_QUALITY);
    }

    #[test]
    fn health_samples_match_health_from_log() {
        use resilience_core::faults::{AttemptRecord, RunReport};
        // 4 trials; trial 1 fails then recovers, trial 2 fails twice
        // and is lost.
        let mut log = vec![
            AttemptRecord {
                trial: 0,
                attempt: 0,
                ok: true,
            },
            AttemptRecord {
                trial: 1,
                attempt: 0,
                ok: false,
            },
            AttemptRecord {
                trial: 2,
                attempt: 0,
                ok: false,
            },
            AttemptRecord {
                trial: 3,
                attempt: 0,
                ok: true,
            },
            AttemptRecord {
                trial: 1,
                attempt: 1,
                ok: true,
            },
            AttemptRecord {
                trial: 2,
                attempt: 1,
                ok: false,
            },
        ];
        let health = RunReport::health_from_log(4, &mut log);

        let mut obs = TrajectoryObserver::new(1.0);
        obs.push_full();
        // Replay the sorted log the way the report module does,
        // attributing unhealthy slots to retry vs failed.
        let mut unhealthy = std::collections::BTreeSet::new();
        let lost_trials: std::collections::BTreeSet<u64> = [2u64].into_iter().collect();
        for rec in &log {
            if rec.ok {
                unhealthy.remove(&rec.trial);
            } else {
                unhealthy.insert(rec.trial);
            }
            let lost = unhealthy.intersection(&lost_trials).count() as u64;
            obs.push_health(4 - unhealthy.len() as u64, lost, 4);
        }
        assert_eq!(obs.quality(), &health, "samples must be bit-identical");
        let attr = obs.attribution();
        assert!(close(attr.components_sum(), attr.total));
        assert!(attr.failed > 0.0 && attr.retry > 0.0);
        assert_eq!(attr.shed, 0.0);
    }

    #[test]
    fn empty_observer_attributes_zero() {
        let obs = TrajectoryObserver::new(1.0);
        let attr = obs.attribution();
        assert_eq!(attr.total, 0.0);
        assert_eq!(attr.components_sum(), 0.0);
    }
}

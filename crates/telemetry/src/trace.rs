//! Structured, deterministic event tracing.
//!
//! A trace is a set of [`TraceEvent`]s, each a typed [`Event`] stamped
//! with a *logical* clock position: the tick it happened on, the lane
//! (worker / subsystem) that recorded it, and a per-lane sequence
//! number. Workers record into their own [`TraceBuffer`] — plain owned
//! `Vec` pushes, no locks, no atomics — and the buffers are merged by
//! sorting on `(tick, lane, seq)`. Because every component of the sort
//! key is a pure function of logical state (never of scheduling), the
//! merged trace is bit-identical for any thread budget.
//!
//! Wall-clock time never appears here; durations live in the
//! [`spans`](crate::spans) side channel, which is explicitly excluded
//! from the determinism contract.

use serde::{Deserialize, Serialize};

/// What the supervisor decided to do about a failed attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanAction {
    /// Re-dispatch the trial (budget remaining).
    Retry,
    /// Abandon the trial (budget exhausted).
    GiveUp,
}

/// One typed telemetry event. Variants cover all four instrumented
/// layers: the supervised Monte Carlo runtime, the DCSP verification
/// engine, the serving layer, and the bench drivers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A trial failed an attempt and was re-dispatched by the
    /// supervisor (runtime layer).
    TrialRetried {
        /// Trial index within its stream.
        trial: u64,
        /// The attempt that failed (0-based).
        attempt: u32,
    },
    /// A trial exhausted its retry budget and was dropped from the
    /// fold (runtime layer).
    TrialLost {
        /// Trial index within its stream.
        trial: u64,
        /// Failure cause label (`FailureCause` display form).
        cause: String,
    },
    /// A MAPE-K *plan* step: what the supervisor decided after
    /// analyzing a failed attempt (runtime layer).
    SupervisorPlan {
        /// Trial index within its stream.
        trial: u64,
        /// Failures observed for this trial so far.
        failures: u32,
        /// The planned action.
        action: PlanAction,
    },
    /// A circuit breaker changed state (service layer).
    BreakerTransition {
        /// Family index.
        family: u32,
        /// State before (display form: `closed`/`open`/`half-open`).
        from: String,
        /// State after.
        to: String,
    },
    /// The brownout dimmer moved to a new level (service layer).
    BrownoutLevelChange {
        /// New level (0 = full, 1 = reduced, 2 = cached-only).
        level: u8,
    },
    /// A request passed admission control onto a bulkhead (service
    /// layer).
    RequestAdmitted {
        /// Request id.
        id: u64,
        /// Family index.
        family: u32,
        /// Fidelity admitted at (`full`/`reduced`).
        fidelity: String,
    },
    /// A request was served (service layer).
    RequestServed {
        /// Request id.
        id: u64,
        /// Family index.
        family: u32,
        /// Fidelity served at (`full`/`reduced`/`cached`).
        fidelity: String,
        /// Logical ticks from arrival to adjudication.
        latency: u64,
    },
    /// A request was shed at admission (service layer).
    RequestShed {
        /// Request id.
        id: u64,
        /// Family index.
        family: u32,
        /// Shed reason label.
        reason: String,
    },
    /// A request failed hard — degradation off only (service layer).
    RequestFailed {
        /// Request id.
        id: u64,
        /// Family index.
        family: u32,
        /// Failure cause label.
        cause: String,
    },
    /// A request was answered from the precomputed cache table
    /// (service layer).
    CacheHit {
        /// Family index.
        family: u32,
    },
    /// A request missed the cache and ran the backend computation
    /// (service layer).
    CacheMiss {
        /// Family index.
        family: u32,
    },
    /// A bulkhead's queue occupancy changed (service layer; emitted on
    /// change, not per tick, to keep traces compact).
    BulkheadOccupancy {
        /// Family index.
        family: u32,
        /// Jobs queued after the change.
        queued: u32,
        /// Queue capacity.
        capacity: u32,
    },
    /// One backward-BFS level of the maintainability model checker
    /// (DCSP layer).
    FrontierLevel {
        /// BFS depth (0 = the normal states themselves).
        depth: u32,
        /// States first reached at this depth.
        states: u64,
    },
    /// Transposition-cache summary of one verification run (DCSP
    /// layer; per-probe events would dwarf the trace, so the engine
    /// reports rank-ordered aggregate counts).
    VerifierCacheSummary {
        /// Memo probes that hit a finished entry.
        hits: u64,
        /// Memo probes that missed.
        misses: u64,
        /// Damage cases evaluated.
        states: u64,
    },
    /// A cascade ran to quiescence (cluster layer). Shed load is in
    /// milli-units so the streamed JSON fast path stays integer-only.
    ClusterCascade {
        /// Nodes dead at the trigger (exogenous kills plus surge
        /// overloads).
        trigger: u64,
        /// Nodes toppled by overload during propagation.
        toppled: u64,
        /// Propagation waves until quiescence.
        waves: u32,
        /// Load dropped from the system, in milli-units.
        shed_milli: u64,
    },
    /// Cross-node recovery summary of a cluster run (cluster layer).
    ClusterRecovery {
        /// Nodes revived by the MAPE-K supervisor.
        revived: u64,
        /// Nodes dead for good (retry budget exhausted or condemned).
        lost: u64,
    },
    /// Prescribed-burn summary of a cluster run (cluster layer).
    ClusterBurn {
        /// Burn firings.
        burns: u64,
        /// Nodes relieved across all burns.
        nodes: u64,
        /// Excess load removed, in milli-units.
        relieved_milli: u64,
    },
    /// The early-warning composite score changed (anticipation layer;
    /// emitted on change, not per tick, to keep traces compact).
    WarningScore {
        /// Composite warning score in milli-units (0–1000).
        score_milli: u64,
    },
    /// The anticipation loop switched operating mode (anticipation
    /// layer).
    ModeTransition {
        /// Mode left (display form: `normal`/`alert`/`emergency`).
        from: String,
        /// Mode entered.
        to: String,
        /// Warning score at the switch, in milli-units.
        score_milli: u64,
    },
    /// Per-tick census of cluster node operating modes (cluster layer;
    /// emitted on change only).
    ClusterModeCensus {
        /// Nodes in Alert.
        alert: u64,
        /// Nodes in Emergency.
        emergency: u64,
    },
}

/// An [`Event`] stamped with its logical position. The triple
/// `(tick, lane, seq)` is the total order of the merged trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Logical tick the event happened on (trial attempt number,
    /// service tick, or BFS depth — whatever the layer's clock is).
    pub tick: u64,
    /// Recording lane: a worker id or a subsystem id. Lanes only
    /// disambiguate concurrent recorders; they carry no wall-time.
    pub lane: u32,
    /// Per-lane monotonic sequence number.
    pub seq: u32,
    /// The event itself.
    pub event: Event,
}

impl TraceEvent {
    /// The deterministic merge key.
    pub fn key(&self) -> (u64, u32, u32) {
        (self.tick, self.lane, self.seq)
    }
}

/// A per-worker event buffer: owned by exactly one recorder, so pushes
/// are plain `Vec` appends — no locks on the hot path.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    lane: u32,
    next_seq: u32,
    events: Vec<TraceEvent>,
}

impl TraceBuffer {
    /// An empty buffer recording on `lane`.
    pub fn new(lane: u32) -> Self {
        TraceBuffer {
            lane,
            next_seq: 0,
            events: Vec::new(),
        }
    }

    /// The buffer's lane id.
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// Record `event` at logical `tick`. Events within a lane must be
    /// recorded in non-decreasing tick order for the merged trace to be
    /// totally ordered; the recorder's own logical clock guarantees
    /// this at every call site.
    pub fn record(&mut self, tick: u64, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(TraceEvent {
            tick,
            lane: self.lane,
            seq,
            event,
        });
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// The trace collector: hands out per-worker [`TraceBuffer`]s, absorbs
/// them back, and produces the deterministically merged event list.
#[derive(Debug, Default)]
pub struct Tracer {
    absorbed: Vec<TraceEvent>,
    /// Lane 0: the single-threaded recorder used by tick loops and
    /// post-run derivations.
    root: Option<TraceBuffer>,
}

impl Tracer {
    /// An empty tracer.
    pub fn new() -> Self {
        Tracer {
            absorbed: Vec::new(),
            root: Some(TraceBuffer::new(0)),
        }
    }

    /// Record on the tracer's own lane 0 (for single-threaded call
    /// sites: tick loops, post-run log walks).
    pub fn record(&mut self, tick: u64, event: Event) {
        self.root
            .get_or_insert_with(|| TraceBuffer::new(0))
            .record(tick, event);
    }

    /// A fresh buffer for worker `lane` (lane 0 is reserved for
    /// [`Tracer::record`]).
    pub fn lane_buffer(&self, lane: u32) -> TraceBuffer {
        TraceBuffer::new(lane)
    }

    /// Fold a worker's finished buffer back into the trace.
    pub fn absorb(&mut self, buffer: TraceBuffer) {
        self.absorbed.extend(buffer.events);
    }

    /// Total events recorded so far.
    pub fn len(&self) -> usize {
        self.absorbed.len() + self.root.as_ref().map_or(0, TraceBuffer::len)
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The merged trace, sorted by `(tick, lane, seq)` — bit-identical
    /// for any assignment of work to lanes as long as each lane's
    /// logical content is unchanged.
    pub fn merged(&self) -> Vec<TraceEvent> {
        let mut all = self.absorbed.clone();
        if let Some(root) = &self.root {
            all.extend(root.events.iter().cloned());
        }
        all.sort_by_key(TraceEvent::key);
        all
    }

    /// The merged trace rendered as deterministic compact JSON (one
    /// trailing newline), the `--trace-out` format. Compact, not
    /// pretty: traces are large machine-read artifacts, and rendering
    /// them is on the overhead budget `bench_smoke telemetry` enforces.
    ///
    /// Events are streamed straight into the output string instead of
    /// going through an intermediate `Value` tree — byte-identical to
    /// `serde_json::to_string` of the merged trace (pinned by test),
    /// at a fraction of the allocation traffic.
    pub fn to_json(&self) -> String {
        let merged = self.merged();
        let mut out = String::with_capacity(merged.len() * 128 + 16);
        if merged.is_empty() {
            out.push_str("[]");
        } else {
            out.push('[');
            for (i, ev) in merged.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_event_json(&mut out, ev);
            }
            out.push(']');
        }
        out.push('\n');
        out
    }
}

/// Stream one [`TraceEvent`] as compact JSON, byte-identical to the
/// generic `serde_json::to_string` rendering of its `Serialize` tree
/// (same field order, same escaping — the
/// `streamed_json_matches_the_generic_serializer` test pins this).
fn write_event_json(out: &mut String, ev: &TraceEvent) {
    use serde_json::{write_json_string as jstr, write_json_u64 as ju64};
    out.push_str("{\"tick\":");
    ju64(out, ev.tick);
    out.push_str(",\"lane\":");
    ju64(out, ev.lane as u64);
    out.push_str(",\"seq\":");
    ju64(out, ev.seq as u64);
    out.push_str(",\"event\":");
    match &ev.event {
        Event::TrialRetried { trial, attempt } => {
            out.push_str("{\"TrialRetried\":{\"trial\":");
            ju64(out, *trial);
            out.push_str(",\"attempt\":");
            ju64(out, *attempt as u64);
            out.push_str("}}");
        }
        Event::TrialLost { trial, cause } => {
            out.push_str("{\"TrialLost\":{\"trial\":");
            ju64(out, *trial);
            out.push_str(",\"cause\":");
            jstr(out, cause);
            out.push_str("}}");
        }
        Event::SupervisorPlan {
            trial,
            failures,
            action,
        } => {
            out.push_str("{\"SupervisorPlan\":{\"trial\":");
            ju64(out, *trial);
            out.push_str(",\"failures\":");
            ju64(out, *failures as u64);
            out.push_str(",\"action\":");
            jstr(
                out,
                match action {
                    PlanAction::Retry => "Retry",
                    PlanAction::GiveUp => "GiveUp",
                },
            );
            out.push_str("}}");
        }
        Event::BreakerTransition { family, from, to } => {
            out.push_str("{\"BreakerTransition\":{\"family\":");
            ju64(out, *family as u64);
            out.push_str(",\"from\":");
            jstr(out, from);
            out.push_str(",\"to\":");
            jstr(out, to);
            out.push_str("}}");
        }
        Event::BrownoutLevelChange { level } => {
            out.push_str("{\"BrownoutLevelChange\":{\"level\":");
            ju64(out, *level as u64);
            out.push_str("}}");
        }
        Event::RequestAdmitted {
            id,
            family,
            fidelity,
        } => {
            out.push_str("{\"RequestAdmitted\":{\"id\":");
            ju64(out, *id);
            out.push_str(",\"family\":");
            ju64(out, *family as u64);
            out.push_str(",\"fidelity\":");
            jstr(out, fidelity);
            out.push_str("}}");
        }
        Event::RequestServed {
            id,
            family,
            fidelity,
            latency,
        } => {
            out.push_str("{\"RequestServed\":{\"id\":");
            ju64(out, *id);
            out.push_str(",\"family\":");
            ju64(out, *family as u64);
            out.push_str(",\"fidelity\":");
            jstr(out, fidelity);
            out.push_str(",\"latency\":");
            ju64(out, *latency);
            out.push_str("}}");
        }
        Event::RequestShed { id, family, reason } => {
            out.push_str("{\"RequestShed\":{\"id\":");
            ju64(out, *id);
            out.push_str(",\"family\":");
            ju64(out, *family as u64);
            out.push_str(",\"reason\":");
            jstr(out, reason);
            out.push_str("}}");
        }
        Event::RequestFailed { id, family, cause } => {
            out.push_str("{\"RequestFailed\":{\"id\":");
            ju64(out, *id);
            out.push_str(",\"family\":");
            ju64(out, *family as u64);
            out.push_str(",\"cause\":");
            jstr(out, cause);
            out.push_str("}}");
        }
        Event::CacheHit { family } => {
            out.push_str("{\"CacheHit\":{\"family\":");
            ju64(out, *family as u64);
            out.push_str("}}");
        }
        Event::CacheMiss { family } => {
            out.push_str("{\"CacheMiss\":{\"family\":");
            ju64(out, *family as u64);
            out.push_str("}}");
        }
        Event::BulkheadOccupancy {
            family,
            queued,
            capacity,
        } => {
            out.push_str("{\"BulkheadOccupancy\":{\"family\":");
            ju64(out, *family as u64);
            out.push_str(",\"queued\":");
            ju64(out, *queued as u64);
            out.push_str(",\"capacity\":");
            ju64(out, *capacity as u64);
            out.push_str("}}");
        }
        Event::FrontierLevel { depth, states } => {
            out.push_str("{\"FrontierLevel\":{\"depth\":");
            ju64(out, *depth as u64);
            out.push_str(",\"states\":");
            ju64(out, *states);
            out.push_str("}}");
        }
        Event::VerifierCacheSummary {
            hits,
            misses,
            states,
        } => {
            out.push_str("{\"VerifierCacheSummary\":{\"hits\":");
            ju64(out, *hits);
            out.push_str(",\"misses\":");
            ju64(out, *misses);
            out.push_str(",\"states\":");
            ju64(out, *states);
            out.push_str("}}");
        }
        Event::ClusterCascade {
            trigger,
            toppled,
            waves,
            shed_milli,
        } => {
            out.push_str("{\"ClusterCascade\":{\"trigger\":");
            ju64(out, *trigger);
            out.push_str(",\"toppled\":");
            ju64(out, *toppled);
            out.push_str(",\"waves\":");
            ju64(out, *waves as u64);
            out.push_str(",\"shed_milli\":");
            ju64(out, *shed_milli);
            out.push_str("}}");
        }
        Event::ClusterRecovery { revived, lost } => {
            out.push_str("{\"ClusterRecovery\":{\"revived\":");
            ju64(out, *revived);
            out.push_str(",\"lost\":");
            ju64(out, *lost);
            out.push_str("}}");
        }
        Event::ClusterBurn {
            burns,
            nodes,
            relieved_milli,
        } => {
            out.push_str("{\"ClusterBurn\":{\"burns\":");
            ju64(out, *burns);
            out.push_str(",\"nodes\":");
            ju64(out, *nodes);
            out.push_str(",\"relieved_milli\":");
            ju64(out, *relieved_milli);
            out.push_str("}}");
        }
        Event::WarningScore { score_milli } => {
            out.push_str("{\"WarningScore\":{\"score_milli\":");
            ju64(out, *score_milli);
            out.push_str("}}");
        }
        Event::ModeTransition {
            from,
            to,
            score_milli,
        } => {
            out.push_str("{\"ModeTransition\":{\"from\":");
            jstr(out, from);
            out.push_str(",\"to\":");
            jstr(out, to);
            out.push_str(",\"score_milli\":");
            ju64(out, *score_milli);
            out.push_str("}}");
        }
        Event::ClusterModeCensus { alert, emergency } => {
            out.push_str("{\"ClusterModeCensus\":{\"alert\":");
            ju64(out, *alert);
            out.push_str(",\"emergency\":");
            ju64(out, *emergency);
            out.push_str("}}");
        }
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trial: u64, attempt: u32) -> Event {
        Event::TrialRetried { trial, attempt }
    }

    /// One event of every variant, with strings that exercise escaping.
    fn one_of_each() -> Vec<Event> {
        vec![
            Event::TrialRetried {
                trial: 7,
                attempt: 2,
            },
            Event::TrialLost {
                trial: u64::MAX,
                cause: "panicked: \"boom\"\n\ttab\\slash".to_string(),
            },
            Event::SupervisorPlan {
                trial: 3,
                failures: 1,
                action: PlanAction::Retry,
            },
            Event::SupervisorPlan {
                trial: 4,
                failures: 9,
                action: PlanAction::GiveUp,
            },
            Event::BreakerTransition {
                family: 0,
                from: "closed".to_string(),
                to: "open".to_string(),
            },
            Event::BrownoutLevelChange { level: 2 },
            Event::RequestAdmitted {
                id: 10,
                family: 1,
                fidelity: "full".to_string(),
            },
            Event::RequestServed {
                id: 11,
                family: 1,
                fidelity: "reduced".to_string(),
                latency: 5,
            },
            Event::RequestShed {
                id: 12,
                family: 2,
                reason: "queue-full".to_string(),
            },
            Event::RequestFailed {
                id: 13,
                family: 3,
                cause: "\u{1} control".to_string(),
            },
            Event::CacheHit { family: 4 },
            Event::CacheMiss { family: 5 },
            Event::BulkheadOccupancy {
                family: 6,
                queued: 3,
                capacity: 16,
            },
            Event::FrontierLevel {
                depth: 0,
                states: 64,
            },
            Event::VerifierCacheSummary {
                hits: 100,
                misses: 50,
                states: 75,
            },
            Event::ClusterCascade {
                trigger: 40,
                toppled: 17,
                waves: 3,
                shed_milli: 12_500,
            },
            Event::ClusterRecovery {
                revived: 30,
                lost: 4,
            },
            Event::ClusterBurn {
                burns: 5,
                nodes: 60,
                relieved_milli: 9_001,
            },
            Event::WarningScore { score_milli: 437 },
            Event::ModeTransition {
                from: "normal".to_string(),
                to: "alert".to_string(),
                score_milli: 512,
            },
            Event::ClusterModeCensus {
                alert: 12,
                emergency: 3,
            },
        ]
    }

    #[test]
    fn streamed_json_matches_the_generic_serializer() {
        let mut tracer = Tracer::new();
        for (i, event) in one_of_each().into_iter().enumerate() {
            tracer.record(i as u64, event);
        }
        let generic =
            serde_json::to_string(&tracer.merged()).expect("trace serializes generically");
        assert_eq!(
            tracer.to_json(),
            format!("{generic}\n"),
            "streamed rendering must be byte-identical to the derive path"
        );
        assert_eq!(Tracer::new().to_json(), "[]\n");
    }

    #[test]
    fn merge_is_partition_invariant() {
        // The same logical events recorded through 1 lane vs split
        // across 3 lanes in scrambled absorb order merge identically
        // when lane assignment is itself logical (here: trial % lanes).
        let mut one = Tracer::new();
        let mut buf = one.lane_buffer(1);
        for t in 0..30u64 {
            buf.record(t / 3, ev(t, 0));
        }
        one.absorb(buf);

        let mut three = Tracer::new();
        let mut bufs: Vec<TraceBuffer> = (1..=1).map(|l| three.lane_buffer(l)).collect();
        for t in 0..30u64 {
            bufs[0].record(t / 3, ev(t, 0));
        }
        for b in bufs.into_iter().rev() {
            three.absorb(b);
        }
        assert_eq!(one.to_json(), three.to_json());
    }

    #[test]
    fn merge_orders_by_tick_then_lane_then_seq() {
        let mut tr = Tracer::new();
        let mut a = tr.lane_buffer(2);
        a.record(5, ev(0, 0));
        a.record(7, ev(1, 0));
        let mut b = tr.lane_buffer(1);
        b.record(5, ev(2, 0));
        b.record(6, ev(3, 0));
        tr.absorb(a);
        tr.absorb(b);
        tr.record(5, ev(4, 0));
        let keys: Vec<_> = tr.merged().iter().map(TraceEvent::key).collect();
        assert_eq!(
            keys,
            vec![(5, 0, 0), (5, 1, 0), (5, 2, 0), (6, 1, 1), (7, 2, 1)]
        );
    }

    #[test]
    fn json_round_trips() {
        let mut tr = Tracer::new();
        tr.record(
            3,
            Event::RequestShed {
                id: 9,
                family: 1,
                reason: "queue-full".to_string(),
            },
        );
        let json = tr.to_json();
        let back: Vec<TraceEvent> = serde_json::from_str(json.trim()).expect("trace parses");
        assert_eq!(back, tr.merged());
    }
}

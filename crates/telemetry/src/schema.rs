//! A minimal, offline JSON-Schema-subset validator.
//!
//! CI validates the `--metrics-out` document against the checked-in
//! `schemas/metrics.schema.json` without network access or external
//! crates, so only the subset that schema needs is implemented:
//!
//! * `type` (string or array of strings): `object`, `array`, `string`,
//!   `number`, `integer`, `boolean`, `null`
//! * `properties` + `required` (unknown properties are allowed)
//! * `items` (single schema applied to every element)
//! * `enum` (value equality)
//! * `minimum` / `maximum` (numeric), `minItems`
//!
//! Unknown keywords are ignored, like any forward-compatible
//! validator. Errors carry a JSON-pointer-ish path to the offending
//! value.

use serde::Value;

/// Validate `value` against `schema`. `Ok(())` when every constraint
/// holds; otherwise every violation found, each as `path: message`.
pub fn validate(schema: &Value, value: &Value) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    check(schema, value, "$", &mut errors);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn check(schema: &Value, value: &Value, path: &str, errors: &mut Vec<String>) {
    let fields = match schema {
        Value::Object(fields) => fields,
        // A non-object schema (e.g. `true`) constrains nothing.
        _ => return,
    };
    let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);

    if let Some(ty) = get("type") {
        let allowed: Vec<&str> = match ty {
            Value::String(s) => vec![s.as_str()],
            Value::Array(items) => items
                .iter()
                .filter_map(|v| match v {
                    Value::String(s) => Some(s.as_str()),
                    _ => None,
                })
                .collect(),
            _ => Vec::new(),
        };
        if !allowed.is_empty() && !allowed.iter().any(|t| matches_type(t, value)) {
            errors.push(format!(
                "{path}: expected type {}, got {}",
                allowed.join("|"),
                type_name(value)
            ));
            // Structural keywords below assume the right shape.
            return;
        }
    }

    if let Some(Value::Array(options)) = get("enum") {
        if !options.iter().any(|opt| opt == value) {
            errors.push(format!("{path}: value not in enum"));
        }
    }

    if let Some(min) = get("minimum").and_then(as_number) {
        if let Some(v) = as_number(value) {
            if v < min {
                errors.push(format!("{path}: {v} below minimum {min}"));
            }
        }
    }
    if let Some(max) = get("maximum").and_then(as_number) {
        if let Some(v) = as_number(value) {
            if v > max {
                errors.push(format!("{path}: {v} above maximum {max}"));
            }
        }
    }

    if let Value::Object(entries) = value {
        if let Some(Value::Array(required)) = get("required") {
            for name in required {
                if let Value::String(name) = name {
                    if !entries.iter().any(|(k, _)| k == name) {
                        errors.push(format!("{path}: missing required property `{name}`"));
                    }
                }
            }
        }
        if let Some(Value::Object(props)) = get("properties") {
            for (name, sub) in props {
                if let Some((_, v)) = entries.iter().find(|(k, _)| k == name) {
                    check(sub, v, &format!("{path}.{name}"), errors);
                }
            }
        }
    }

    if let Value::Array(items) = value {
        if let Some(min_items) = get("minItems").and_then(as_number) {
            if (items.len() as f64) < min_items {
                errors.push(format!(
                    "{path}: {} items below minItems {min_items}",
                    items.len()
                ));
            }
        }
        if let Some(item_schema) = get("items") {
            for (i, v) in items.iter().enumerate() {
                check(item_schema, v, &format!("{path}[{i}]"), errors);
            }
        }
    }
}

fn matches_type(ty: &str, value: &Value) -> bool {
    match ty {
        "object" => matches!(value, Value::Object(_)),
        "array" => matches!(value, Value::Array(_)),
        "string" => matches!(value, Value::String(_)),
        "boolean" => matches!(value, Value::Bool(_)),
        "null" => matches!(value, Value::Null),
        "number" => as_number(value).is_some(),
        "integer" => match value {
            Value::UInt(_) | Value::Int(_) => true,
            Value::Float(f) => f.fract() == 0.0,
            _ => false,
        },
        _ => false,
    }
}

fn as_number(value: &Value) -> Option<f64> {
    match value {
        Value::UInt(u) => Some(*u as f64),
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

fn type_name(value: &Value) -> &'static str {
    match value {
        Value::Null => "null",
        Value::Bool(_) => "boolean",
        Value::UInt(_) | Value::Int(_) | Value::Float(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Value {
        serde_json::parse_value_complete(s).expect("test JSON parses")
    }

    #[test]
    fn accepts_conforming_document() {
        let schema = parse(
            r#"{
                "type": "object",
                "required": ["metrics"],
                "properties": {
                    "metrics": {
                        "type": "array",
                        "minItems": 1,
                        "items": {
                            "type": "object",
                            "required": ["name", "type"],
                            "properties": {
                                "name": {"type": "string"},
                                "type": {"enum": ["counter", "gauge", "histogram"]},
                                "value": {"type": "number", "minimum": 0}
                            }
                        }
                    }
                }
            }"#,
        );
        let doc = parse(r#"{"metrics": [{"name": "a", "type": "counter", "value": 3}]}"#);
        assert_eq!(validate(&schema, &doc), Ok(()));
    }

    #[test]
    fn reports_all_violations_with_paths() {
        let schema = parse(
            r#"{
                "type": "object",
                "required": ["a", "b"],
                "properties": {"a": {"type": "string"}, "c": {"minimum": 10}}
            }"#,
        );
        let doc = parse(r#"{"a": 1, "c": 3}"#);
        let errs = validate(&schema, &doc).expect_err("must fail");
        assert!(errs
            .iter()
            .any(|e| e.contains("$.a") && e.contains("string")));
        assert!(errs
            .iter()
            .any(|e| e.contains("missing required property `b`")));
        assert!(errs
            .iter()
            .any(|e| e.contains("$.c") && e.contains("minimum")));
    }

    #[test]
    fn integer_type_accepts_whole_floats_only() {
        let schema = parse(r#"{"type": "integer"}"#);
        assert!(validate(&schema, &parse("3")).is_ok());
        assert!(validate(&schema, &parse("3.0")).is_ok());
        assert!(validate(&schema, &parse("3.5")).is_err());
    }

    #[test]
    fn type_union_and_unknown_keywords() {
        let schema = parse(r#"{"type": ["string", "null"], "futureKeyword": 1}"#);
        assert!(validate(&schema, &parse("\"x\"")).is_ok());
        assert!(validate(&schema, &parse("null")).is_ok());
        assert!(validate(&schema, &parse("4")).is_err());
    }
}

//! chrome://tracing span emission — the *wall-clock* side channel.
//!
//! Spans measure real durations of hot loops for profiling, so they
//! are explicitly **outside** the determinism contract: two runs of
//! the same seed produce different span timings. Nothing in the
//! deterministic trace, metrics, or trajectory paths reads a span.
//! The emitted JSON loads in `chrome://tracing` / Perfetto ("X"
//! complete events with microsecond timestamps).

use std::fmt::Write as _;
use std::time::Instant;

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Span label.
    pub name: String,
    /// Thread lane shown in the viewer.
    pub tid: u32,
    /// Microseconds since the recorder's epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// Records wall-clock spans relative to its construction instant.
#[derive(Debug)]
pub struct SpanRecorder {
    epoch: Instant,
    spans: Vec<Span>,
}

impl Default for SpanRecorder {
    fn default() -> Self {
        SpanRecorder::new()
    }
}

impl SpanRecorder {
    /// A recorder whose epoch is now.
    pub fn new() -> Self {
        SpanRecorder {
            epoch: Instant::now(),
            spans: Vec::new(),
        }
    }

    /// Run `f`, recording its wall-clock duration as a span named
    /// `name` on lane `tid`.
    pub fn time<T>(&mut self, name: &str, tid: u32, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        let dur = start.elapsed();
        self.spans.push(Span {
            name: name.to_string(),
            tid,
            start_us: start.duration_since(self.epoch).as_micros() as u64,
            dur_us: dur.as_micros() as u64,
        });
        out
    }

    /// Record an externally measured span.
    pub fn push(&mut self, span: Span) {
        self.spans.push(span);
    }

    /// Spans recorded so far.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// The chrome://tracing JSON document (`traceEvents` with phase
    /// `"X"` complete events).
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"perf\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}}}",
                s.name.replace('\\', "\\\\").replace('"', "\\\""),
                s.tid,
                s.start_us,
                s.dur_us
            );
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_renders_spans() {
        let mut rec = SpanRecorder::new();
        let v = rec.time("work", 1, || 41 + 1);
        assert_eq!(v, 42);
        rec.push(Span {
            name: "fixed".to_string(),
            tid: 2,
            start_us: 10,
            dur_us: 5,
        });
        let json = rec.to_chrome_json();
        assert!(json.contains("\"name\":\"work\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"tid\":2,\"ts\":10,\"dur\":5"));
        assert!(json.starts_with('{') && json.ends_with("]}\n"));
    }

    #[test]
    fn escapes_quotes_in_names() {
        let mut rec = SpanRecorder::new();
        rec.push(Span {
            name: "a\"b".to_string(),
            tid: 0,
            start_us: 0,
            dur_us: 1,
        });
        assert!(rec.to_chrome_json().contains("a\\\"b"));
    }
}

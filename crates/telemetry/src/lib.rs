//! Deterministic observability spine for the Systems Resilience
//! workspace.
//!
//! The paper's central quantitative object is the quality trajectory
//! `Q(t)` and its Bruneau integral `R = ∫ [100 − Q(t)] dt`; before this
//! crate, the workspace only surfaced `Q(t)` post-hoc in bespoke report
//! structs. This crate is one coherent instrumentation layer over all
//! four engines — the supervised Monte Carlo runtime, the DCSP
//! verification engine, the serving layer, and the bench drivers:
//!
//! * [`trace`] — typed events ([`Event`]) stamped with the logical
//!   clock, recorded through per-worker [`TraceBuffer`]s (plain owned
//!   `Vec` pushes, no locks) and merged by sorting on
//!   `(tick, lane, seq)`, so the full trace is **bit-identical for any
//!   thread budget**.
//! * [`metrics`] — a [`MetricsRegistry`] of counters, gauges, and
//!   fixed-bucket histograms with Prometheus text exposition and JSON
//!   export, both rendered in deterministic order.
//! * [`spans`] — a chrome://tracing span emitter. Spans carry
//!   *wall-clock* durations and live only in the perf side channel;
//!   nothing deterministic reads them.
//! * [`trajectory`] — live `Q(t)`/Bruneau scoring: a
//!   [`TrajectoryObserver`] folds deficit charges into the quality
//!   series incrementally and attributes the Bruneau deficit to cause
//!   (shed vs failed vs degraded vs supervisor-retry).
//! * [`report`] — derivation of runtime telemetry from a supervised
//!   [`RunReport`](resilience_core::faults::RunReport)'s logical
//!   attempt log.
//! * [`schema`] — an offline JSON-Schema-subset validator, so CI can
//!   check the exported metrics document against a checked-in schema
//!   without network access.
//!
//! # Determinism contract
//!
//! Telemetry is opt-in; engines take `Option<&mut Telemetry>` (or a
//! `_traced` entry point) and the `None` path does no work. When on,
//! everything recorded into [`Tracer`], [`MetricsRegistry`], and
//! [`TrajectoryObserver`] is a pure function of logical state — tick
//! clocks, seeded draws, rank orders — never of scheduling, so traces,
//! expositions, and attributions are byte-identical across `--threads`
//! budgets *and* the instrumented run's deterministic outputs are
//! byte-identical to the uninstrumented run. Only [`SpanRecorder`]
//! touches wall-clock time, and it is quarantined from the rest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as typed errors or documented
// panics, never `unwrap()`; tests are exempt because a failed unwrap
// there *is* the assertion.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod metrics;
pub mod report;
pub mod schema;
pub mod spans;
pub mod trace;
pub mod trajectory;

pub use metrics::{Histogram, MetricValue, MetricsRegistry};
pub use report::{record_run_events, record_run_metrics, trajectory_of_run};
pub use schema::validate;
pub use spans::{Span, SpanRecorder};
pub use trace::{Event, PlanAction, TraceBuffer, TraceEvent, Tracer};
pub use trajectory::{DeficitAttribution, DeficitCause, TrajectoryObserver};

/// The full telemetry bundle an instrumented engine records into: the
/// deterministic trace, metrics, and trajectory, plus the wall-clock
/// span side channel.
#[derive(Debug)]
pub struct Telemetry {
    /// Structured event trace (deterministic).
    pub tracer: Tracer,
    /// Metrics registry (deterministic).
    pub metrics: MetricsRegistry,
    /// Live Q(t) observer with deficit attribution (deterministic).
    pub trajectory: TrajectoryObserver,
    /// Wall-clock spans (perf side channel only).
    pub spans: SpanRecorder,
}

impl Telemetry {
    /// A fresh bundle whose trajectory samples with spacing `dt`.
    pub fn new(dt: f64) -> Self {
        Telemetry {
            tracer: Tracer::new(),
            metrics: MetricsRegistry::new(),
            trajectory: TrajectoryObserver::new(dt),
            spans: SpanRecorder::new(),
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new(1.0)
    }
}

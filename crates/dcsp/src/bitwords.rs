//! Word-packed bitsets — the frontier/marker machinery of the
//! maintainability model checker, extracted so every layer that tracks
//! large boolean populations (BFS frontiers, cluster alive-sets,
//! visited markers) shares one implementation.
//!
//! A [`BitWords`] is a fixed-capacity set over `0..len` backed by
//! `u64` words. The dense-iteration idiom the model checker relies on
//! (`word &= word - 1` to strip set bits in ascending order) is wrapped
//! by [`BitWords::for_each_one`] / [`BitWords::iter_ones`], and the raw
//! words stay reachable through [`BitWords::words`] /
//! [`BitWords::words_mut`] for callers that batch at word granularity.

use serde::{Deserialize, Serialize};

/// Butterfly masks for the six in-word XOR strides: `XOR_MASKS[b]` marks
/// the bit positions `p` with `p & (1 << b) == 0`.
const XOR_MASKS: [u64; 6] = [
    0x5555_5555_5555_5555,
    0x3333_3333_3333_3333,
    0x0f0f_0f0f_0f0f_0f0f,
    0x00ff_00ff_00ff_00ff,
    0x0000_ffff_0000_ffff,
    0x0000_0000_ffff_ffff,
];

/// Permute the 64 bits of `w` by the involution `p ↦ p ^ m` (`m < 64`):
/// bit `p` of the result is bit `p ^ m` of the input. This is the
/// word-level "batch flip" of the implicit model checkers — one call
/// moves 64 states across a single-bit (or multi-bit) XOR edge at once.
pub fn word_xor_permute(mut w: u64, m: usize) -> u64 {
    debug_assert!(m < 64, "in-word permute stride {m} out of range");
    for (b, &mask) in XOR_MASKS.iter().enumerate() {
        if m >> b & 1 == 1 {
            let d = 1 << b;
            w = ((w >> d) & mask) | ((w & mask) << d);
        }
    }
    w
}

/// Membership word of `{p ^ m : p ∈ src}` at destination word index `w`:
/// bit `o` of the result says whether state `64·w + o ^ m` is in `src`.
/// The word count must be closed under XOR with `m >> 6` (always true
/// when `src` covers a power-of-two state space containing `m`).
pub fn xor_shifted_word(src: &[u64], w: usize, m: usize) -> u64 {
    word_xor_permute(src[w ^ (m >> 6)], m & 63)
}

/// In-place union with the XOR-translate of `src`: for every destination
/// word, OR in [`xor_shifted_word`]. `dst` and `src` must have the same
/// power-of-two capacity covering `m`.
pub fn or_xor_shifted(dst: &mut [u64], src: &[u64], m: usize) {
    debug_assert_eq!(dst.len(), src.len(), "capacity mismatch");
    for (w, slot) in dst.iter_mut().enumerate() {
        *slot |= xor_shifted_word(src, w, m);
    }
}

/// In-place intersection with the XOR-translate of `src` — the erosion
/// step of the compressed adversarial fixed point. Same capacity
/// contract as [`or_xor_shifted`].
pub fn and_xor_shifted(dst: &mut [u64], src: &[u64], m: usize) {
    debug_assert_eq!(dst.len(), src.len(), "capacity mismatch");
    for (w, slot) in dst.iter_mut().enumerate() {
        *slot &= xor_shifted_word(src, w, m);
    }
}

/// Count of set bits across a raw word slice.
pub fn count_words(words: &[u64]) -> u64 {
    words.iter().map(|w| u64::from(w.count_ones())).sum()
}

/// A fixed-capacity set of `usize` indices packed 64 per word.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitWords {
    len: usize,
    words: Vec<u64>,
}

impl BitWords {
    /// An empty set over `0..len`.
    pub fn new(len: usize) -> Self {
        BitWords {
            len,
            words: vec![0u64; len.div_ceil(64)],
        }
    }

    /// A full set over `0..len` (every index present).
    pub fn new_filled(len: usize) -> Self {
        let mut b = BitWords {
            len,
            words: vec![u64::MAX; len.div_ceil(64)],
        };
        b.trim_tail();
        b
    }

    /// Zero any bits beyond `len` in the final partial word.
    fn trim_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// The capacity (number of addressable indices), *not* the count of
    /// set bits — see [`BitWords::count`].
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the capacity is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len` (in debug builds; release indexes the word
    /// vector, which still panics for `i / 64` out of range).
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Remove `i`.
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Whether `i` is present.
    pub fn get(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bits are set.
    pub fn none_set(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Remove every index (capacity unchanged).
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Insert every index in `0..len`.
    pub fn set_all(&mut self) {
        self.words.fill(u64::MAX);
        self.trim_tail();
    }

    /// The backing words (little-endian bit order within each word).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the backing words. Callers must not set bits at
    /// or above `len` — [`BitWords::count`] and iteration would see them.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Visit every set index in ascending order (the dense word-stripping
    /// loop of the model checker).
    pub fn for_each_one(&self, mut f: impl FnMut(usize)) {
        for (w, &word) in self.words.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                f(w * 64 + word.trailing_zeros() as usize);
                word &= word - 1;
            }
        }
    }

    /// Iterator over the set indices in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            std::iter::successors((word != 0).then_some(word), |&m| {
                let m = m & (m - 1);
                (m != 0).then_some(m)
            })
            .map(move |m| w * 64 + m.trailing_zeros() as usize)
        })
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &BitWords) {
        assert_eq!(self.len, other.len, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place difference: remove every bit set in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn difference_with(&mut self, other: &BitWords) {
        assert_eq!(self.len, other.len, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_get_clear_roundtrip() {
        let mut b = BitWords::new(130);
        assert_eq!(b.len(), 130);
        assert_eq!(b.count(), 0);
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(128));
        assert_eq!(b.count(), 4);
        b.clear(63);
        assert!(!b.get(63));
        assert_eq!(b.count(), 3);
    }

    #[test]
    fn filled_respects_partial_tail_word() {
        let b = BitWords::new_filled(70);
        assert_eq!(b.count(), 70);
        let mut c = BitWords::new(70);
        c.set_all();
        assert_eq!(b, c);
        assert_eq!(BitWords::new_filled(64).count(), 64);
        assert_eq!(BitWords::new_filled(0).count(), 0);
    }

    #[test]
    fn iteration_is_ascending_and_complete() {
        let mut b = BitWords::new(200);
        let targets = [0usize, 5, 63, 64, 65, 127, 128, 199];
        for &t in &targets {
            b.set(t);
        }
        let mut visited = Vec::new();
        b.for_each_one(|i| visited.push(i));
        assert_eq!(visited, targets);
        let iterated: Vec<usize> = b.iter_ones().collect();
        assert_eq!(iterated, targets);
    }

    #[test]
    fn set_ops() {
        let mut a = BitWords::new(100);
        let mut b = BitWords::new(100);
        a.set(1);
        a.set(70);
        b.set(70);
        b.set(99);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter_ones().collect::<Vec<_>>(), vec![1, 70, 99]);
        a.difference_with(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn clear_all_and_none_set() {
        let mut b = BitWords::new_filled(65);
        assert!(!b.none_set());
        b.clear_all();
        assert!(b.none_set());
        assert_eq!(b.count(), 0);
    }

    #[test]
    fn xor_permute_matches_per_bit_reference() {
        let samples = [
            0u64,
            u64::MAX,
            0x0123_4567_89ab_cdef,
            0xdead_beef_f00d_cafe,
            1,
            1 << 63,
        ];
        for &w in &samples {
            for m in 0..64usize {
                let fast = word_xor_permute(w, m);
                for p in 0..64usize {
                    let want = w >> (p ^ m) & 1;
                    assert_eq!(fast >> p & 1, want, "w={w:#x} m={m} p={p}");
                }
            }
        }
    }

    #[test]
    fn xor_shift_ops_match_explicit_translation() {
        // 512-state space (8 words); arbitrary mask mixing word and
        // in-word components.
        let n = 512usize;
        let mut src = BitWords::new(n);
        for s in [0usize, 1, 63, 64, 100, 255, 300, 511] {
            src.set(s);
        }
        for m in [1usize, 5, 64, 65, 130, 511] {
            let mut translated = BitWords::new(n);
            for s in 0..n {
                if src.get(s ^ m) {
                    translated.set(s);
                }
            }
            let mut ored = vec![0u64; n / 64];
            or_xor_shifted(&mut ored, src.words(), m);
            assert_eq!(&ored, translated.words(), "or m={m}");
            let mut anded = vec![u64::MAX; n / 64];
            and_xor_shifted(&mut anded, src.words(), m);
            assert_eq!(&anded, translated.words(), "and m={m}");
            assert_eq!(count_words(&ored), translated.count() as u64);
        }
    }

    proptest! {
        #[test]
        fn prop_matches_reference_set(len in 1usize..300, ops in proptest::collection::vec((0usize..300, 0usize..2), 0..200)) {
            let mut bits = BitWords::new(len);
            let mut reference = std::collections::BTreeSet::new();
            for (i, insert) in ops {
                let i = i % len;
                if insert == 1 {
                    bits.set(i);
                    reference.insert(i);
                } else {
                    bits.clear(i);
                    reference.remove(&i);
                }
            }
            prop_assert_eq!(bits.count(), reference.len());
            let via_iter: Vec<usize> = bits.iter_ones().collect();
            let expected: Vec<usize> = reference.iter().copied().collect();
            prop_assert_eq!(via_iter, expected);
            for i in 0..len {
                prop_assert_eq!(bits.get(i), reference.contains(&i));
            }
        }
    }
}

//! Repair search over the single-bit-flip move set.
//!
//! The paper (§4.2): "the system needs to adapt to the new environment as
//! quickly as possible by flipping some bits in s. One way to model this
//! process is that the system flips one bit at a time."
//!
//! Three strategies are provided:
//!
//! * [`GreedyRepair`] — flip the bit that most reduces the constraint's
//!   violation degree (hill climbing; fast, can get stuck on plateaus).
//! * [`BfsRepair`] — breadth-first search over flip sequences up to a depth
//!   bound; finds a *shortest* repair if one exists within the bound
//!   (optimal but exponential in the repair distance).
//! * [`AnnealRepair`] — simulated annealing; escapes plateaus
//!   probabilistically, at the cost of non-monotone trajectories.

use std::collections::{HashSet, VecDeque};

use rand::Rng;
use resilience_core::{seeded_rng, Config, Constraint};

/// Result of a repair attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairOutcome {
    /// Number of flips performed.
    pub steps: usize,
    /// The flipped bit indices, in order.
    pub flips: Vec<usize>,
    /// Whether the system ended fit.
    pub recovered: bool,
}

/// A repair strategy proposes the next single bit to flip.
///
/// Returning `None` signals the strategy is stuck (no flip it is willing to
/// make); the driver stops the repair loop.
pub trait RepairStrategy: Send + Sync {
    /// Choose the next bit to flip for `state` under `env`, or `None` if
    /// stuck. Must not be called on an already-fit state (callers check).
    fn propose_flip(&self, state: &Config, env: &dyn Constraint) -> Option<usize>;

    /// Whether `propose_flip` is a pure function of `(state, env)` — no
    /// interior mutability, no dependence on call order. Deterministic
    /// strategies admit memoized and parallel verification (the repair
    /// trajectory from a state is unique, so outcomes can be cached per
    /// state and cases checked in any order); non-deterministic ones fall
    /// back to the sequential unmemoized path. Defaults to `true`;
    /// strategies that mix hidden per-call state into their choice (e.g.
    /// [`AnnealRepair`]'s call counter) must override this to `false`.
    fn is_deterministic(&self) -> bool {
        true
    }

    /// Whether the *length* of this strategy's repair trajectory is
    /// invariant under constraint automorphisms that fix the start
    /// configuration — the soundness requirement of orbit-reduced
    /// verification (one representative's walk stands in for its whole
    /// orbit). Violation-guided and distance-optimal strategies qualify
    /// because violation degree and repair distance are
    /// automorphism-invariant. Defaults to `false`; strategies whose
    /// step count can depend on variable identity (not just orbit) must
    /// keep it that way.
    fn is_symmetry_invariant(&self) -> bool {
        false
    }
}

/// Greedy hill climbing on the violation degree: flips the
/// lowest-indexed bit achieving the strictest decrease; `None` when no
/// single flip strictly improves (plateau or local minimum).
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyRepair {
    _private: (),
}

impl GreedyRepair {
    /// New greedy repairer.
    pub fn new() -> Self {
        GreedyRepair { _private: () }
    }
}

impl RepairStrategy for GreedyRepair {
    /// Greedy descends on the violation degree, which automorphisms
    /// preserve, so its trajectory *length* is orbit-invariant.
    fn is_symmetry_invariant(&self) -> bool {
        true
    }

    fn propose_flip(&self, state: &Config, env: &dyn Constraint) -> Option<usize> {
        let current = env.violation(state);
        let mut best: Option<(usize, f64)> = None;
        let mut probe = state.clone();
        for i in 0..state.len() {
            probe.flip(i);
            let v = env.violation(&probe);
            probe.flip(i);
            if v < current {
                match best {
                    Some((_, bv)) if bv <= v => {}
                    _ => best = Some((i, v)),
                }
            }
        }
        best.map(|(i, _)| i)
    }
}

/// Breadth-first search for a shortest flip sequence reaching fitness,
/// up to `max_depth` flips. The proposal returns the *first* flip of a
/// shortest plan (recomputed each step, so it tolerates interleaved
/// perturbations).
///
/// State-space caution: BFS visits up to `O(n^depth)` configurations; use
/// for small `n` or small repair distances (exactly the regime of the
/// paper's spacecraft example).
#[derive(Debug, Clone, Copy)]
pub struct BfsRepair {
    max_depth: usize,
}

impl BfsRepair {
    /// BFS repairer with the given depth bound.
    pub fn new(max_depth: usize) -> Self {
        BfsRepair { max_depth }
    }

    /// Find a complete shortest repair plan (sequence of flips), if one
    /// exists within the depth bound.
    pub fn shortest_plan(&self, state: &Config, env: &dyn Constraint) -> Option<Vec<usize>> {
        if env.is_fit(state) {
            return Some(Vec::new());
        }
        let mut seen: HashSet<Config> = HashSet::new();
        let mut queue: VecDeque<(Config, Vec<usize>)> = VecDeque::new();
        seen.insert(state.clone());
        queue.push_back((state.clone(), Vec::new()));
        while let Some((cfg, plan)) = queue.pop_front() {
            if plan.len() >= self.max_depth {
                continue;
            }
            for i in 0..cfg.len() {
                let mut next = cfg.clone();
                next.flip(i);
                if seen.contains(&next) {
                    continue;
                }
                let mut next_plan = plan.clone();
                next_plan.push(i);
                if env.is_fit(&next) {
                    return Some(next_plan);
                }
                seen.insert(next.clone());
                queue.push_back((next, next_plan));
            }
        }
        None
    }
}

impl RepairStrategy for BfsRepair {
    /// BFS walks a shortest repair; repair *distance* is preserved by
    /// constraint automorphisms, so the step count is orbit-invariant.
    fn is_symmetry_invariant(&self) -> bool {
        true
    }

    fn propose_flip(&self, state: &Config, env: &dyn Constraint) -> Option<usize> {
        self.shortest_plan(state, env)
            .and_then(|plan| plan.first().copied())
    }
}

/// Simulated annealing: accepts uphill flips with a Boltzmann probability.
/// An internal atomic call counter is mixed into the per-call RNG so
/// repeated proposals on the same state explore different moves (a pure
/// state-derived RNG would deterministically cycle); trajectories remain
/// reproducible for a given `seed` and call sequence.
#[derive(Debug)]
pub struct AnnealRepair {
    temperature: f64,
    seed: u64,
    calls: std::sync::atomic::AtomicU64,
}

impl AnnealRepair {
    /// Annealing repairer with initial `temperature` (> 0) and RNG `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `temperature` is not positive and finite.
    pub fn new(temperature: f64, seed: u64) -> Self {
        assert!(
            temperature.is_finite() && temperature > 0.0,
            "temperature must be positive"
        );
        AnnealRepair {
            temperature,
            seed,
            calls: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl RepairStrategy for AnnealRepair {
    /// Not deterministic: the call counter makes repeated proposals on
    /// the same state differ, so outcomes depend on global call order.
    fn is_deterministic(&self) -> bool {
        false
    }

    fn propose_flip(&self, state: &Config, env: &dyn Constraint) -> Option<usize> {
        if state.is_empty() {
            return None;
        }
        let call = self
            .calls
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        // Mix state, seed, and the call counter into the per-call RNG.
        let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ self.seed ^ call.rotate_left(17);
        for b in state.iter() {
            hash = hash
                .wrapping_mul(0x1000_0000_01b3)
                .wrapping_add(b as u64 + 1);
        }
        let mut rng = seeded_rng(hash);
        let current = env.violation(state);
        let mut probe = state.clone();
        // Try a handful of candidate bits; accept the first improving flip,
        // or a worsening one with annealing probability.
        for _ in 0..state.len().max(8) {
            let i = rng.gen_range(0..state.len());
            probe.flip(i);
            let v = env.violation(&probe);
            probe.flip(i);
            if v < current {
                return Some(i);
            }
            let delta = v - current;
            if delta.is_finite() && rng.gen_bool((-delta / self.temperature).exp().min(1.0)) {
                return Some(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::{AllOnes, ExplicitSet};

    #[test]
    fn greedy_fixes_all_ones_deficit() {
        let env = AllOnes::new(6);
        let mut state: Config = "101010".parse().unwrap();
        let greedy = GreedyRepair::new();
        let mut steps = 0;
        while !env.is_fit(&state) {
            let bit = greedy.propose_flip(&state, &env).expect("not stuck");
            state.flip(bit);
            steps += 1;
            assert!(steps <= 6, "greedy must terminate");
        }
        assert_eq!(steps, 3);
    }

    #[test]
    fn greedy_gets_stuck_on_indicator_constraints() {
        // An explicit two-member set gives graded violations (Hamming
        // distance), so greedy succeeds; but an indicator-style predicate
        // constraint gives no gradient, so greedy is stuck.
        use resilience_core::PredicateConstraint;
        let flat = PredicateConstraint::new("exact", |c: &Config| c.to_u64() == 0b111);
        let state: Config = "000".parse().unwrap();
        assert_eq!(GreedyRepair::new().propose_flip(&state, &flat), None);
    }

    #[test]
    fn bfs_finds_shortest_plan() {
        let env: ExplicitSet = ["1111".parse().unwrap(), "0000".parse().unwrap()]
            .into_iter()
            .collect();
        let state: Config = "1101".parse().unwrap();
        let bfs = BfsRepair::new(4);
        let plan = bfs.shortest_plan(&state, &env).unwrap();
        assert_eq!(plan.len(), 1); // flip bit 2 to reach 1111
        assert_eq!(plan[0], 2);
    }

    #[test]
    fn bfs_chooses_nearer_target() {
        let env: ExplicitSet = ["111111".parse().unwrap(), "000000".parse().unwrap()]
            .into_iter()
            .collect();
        // One zero: nearest fit is all-ones (distance 1 vs 5).
        let state: Config = "110111".parse().unwrap();
        let plan = BfsRepair::new(6).shortest_plan(&state, &env).unwrap();
        assert_eq!(plan, vec![2]);
    }

    #[test]
    fn bfs_respects_depth_bound() {
        let env = AllOnes::new(5);
        let state = Config::zeros(5);
        assert!(BfsRepair::new(4).shortest_plan(&state, &env).is_none());
        assert_eq!(
            BfsRepair::new(5).shortest_plan(&state, &env).unwrap().len(),
            5
        );
    }

    #[test]
    fn bfs_fit_state_has_empty_plan() {
        let env = AllOnes::new(3);
        let plan = BfsRepair::new(3).shortest_plan(&Config::ones(3), &env);
        assert_eq!(plan, Some(Vec::new()));
    }

    #[test]
    fn bfs_propose_returns_first_step() {
        let env = AllOnes::new(4);
        let state: Config = "1011".parse().unwrap();
        assert_eq!(BfsRepair::new(4).propose_flip(&state, &env), Some(1));
    }

    #[test]
    fn anneal_eventually_repairs() {
        let env = AllOnes::new(8);
        let mut state: Config = "10101010".parse().unwrap();
        let anneal = AnnealRepair::new(0.5, 42);
        let mut steps = 0;
        while !env.is_fit(&state) && steps < 500 {
            if let Some(bit) = anneal.propose_flip(&state, &env) {
                state.flip(bit);
            }
            steps += 1;
        }
        assert!(
            env.is_fit(&state),
            "annealing failed to repair in {steps} steps"
        );
    }

    #[test]
    #[should_panic(expected = "temperature")]
    fn anneal_validates_temperature() {
        let _ = AnnealRepair::new(0.0, 1);
    }

    #[test]
    fn determinism_flags() {
        assert!(GreedyRepair::new().is_deterministic());
        assert!(BfsRepair::new(3).is_deterministic());
        assert!(!AnnealRepair::new(1.0, 0).is_deterministic());
        // Also through a trait object.
        let anneal: Box<dyn RepairStrategy> = Box::new(AnnealRepair::new(1.0, 0));
        assert!(!anneal.is_deterministic());
    }

    #[test]
    fn symmetry_invariance_flags() {
        assert!(GreedyRepair::new().is_symmetry_invariant());
        assert!(BfsRepair::new(3).is_symmetry_invariant());
        // Annealing mixes variable identity into its RNG hash, so its
        // step count is not an orbit invariant.
        assert!(!AnnealRepair::new(1.0, 0).is_symmetry_invariant());
    }

    #[test]
    fn strategies_are_object_safe() {
        let strategies: Vec<Box<dyn RepairStrategy>> = vec![
            Box::new(GreedyRepair::new()),
            Box::new(BfsRepair::new(3)),
            Box::new(AnnealRepair::new(1.0, 0)),
        ];
        let env = AllOnes::new(4);
        let state: Config = "0111".parse().unwrap();
        for s in &strategies {
            assert!(s.propose_flip(&state, &env).is_some());
        }
    }
}

//! Weighted (soft) constraints.
//!
//! The paper (§4.2): "The fitness could be represented by a cost function
//! over the set of all configurations. For simplicity, let us assume here
//! that the cost function can be represented as a subset C…". This module
//! implements the general form the paper simplifies away: a numeric
//! [`CostFunction`] with a fitness threshold, so that repair heuristics can
//! descend a *graded* landscape instead of a set-membership cliff.

use std::sync::Arc;

use resilience_core::{Config, Constraint};

/// A cost function over configurations (lower is better; `0` is perfect).
pub trait CostFunction: Send + Sync {
    /// Cost of `config` (non-negative).
    fn cost(&self, config: &Config) -> f64;
}

/// Cost = weighted Hamming mismatch against a target configuration: bit
/// `i` disagreeing with the target costs `weights[i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedMismatch {
    target: Config,
    weights: Vec<f64>,
}

impl WeightedMismatch {
    /// New weighted-mismatch cost.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or any weight is negative/non-finite.
    pub fn new(target: Config, weights: Vec<f64>) -> Self {
        assert_eq!(
            target.len(),
            weights.len(),
            "one weight per configuration bit"
        );
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        WeightedMismatch { target, weights }
    }

    /// Uniform weight 1 per bit (plain Hamming distance).
    pub fn uniform(target: Config) -> Self {
        let weights = vec![1.0; target.len()];
        WeightedMismatch { target, weights }
    }

    /// The target configuration.
    pub fn target(&self) -> &Config {
        &self.target
    }
}

impl CostFunction for WeightedMismatch {
    fn cost(&self, config: &Config) -> f64 {
        if config.len() != self.target.len() {
            return f64::INFINITY;
        }
        (0..config.len())
            .filter(|&i| config.get(i) != self.target.get(i))
            .map(|i| self.weights[i])
            .sum()
    }
}

/// Weighted clauses: each clause is a set of `(bit, polarity)` literals
/// and a weight; a clause is satisfied if any literal matches. Cost = sum
/// of weights of violated clauses (weighted MaxSAT-style soft constraints).
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedClauses {
    arity: usize,
    clauses: Vec<(Vec<(usize, bool)>, f64)>,
}

impl WeightedClauses {
    /// New soft-clause cost over configurations of length `arity`.
    pub fn new(arity: usize) -> Self {
        WeightedClauses {
            arity,
            clauses: Vec::new(),
        }
    }

    /// Add a clause (`literals` as `(bit, required_value)`, any match
    /// satisfies) with `weight`.
    ///
    /// # Panics
    ///
    /// Panics on an empty clause, out-of-range bit, or a bad weight.
    pub fn add_clause(&mut self, literals: Vec<(usize, bool)>, weight: f64) -> &mut Self {
        assert!(!literals.is_empty(), "clauses need at least one literal");
        assert!(
            literals.iter().all(|&(bit, _)| bit < self.arity),
            "literal bit out of range"
        );
        assert!(weight.is_finite() && weight >= 0.0, "bad clause weight");
        self.clauses.push((literals, weight));
        self
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether there are no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }
}

impl CostFunction for WeightedClauses {
    fn cost(&self, config: &Config) -> f64 {
        if config.len() != self.arity {
            return f64::INFINITY;
        }
        self.clauses
            .iter()
            .filter(|(lits, _)| !lits.iter().any(|&(bit, val)| config.get(bit) == val))
            .map(|(_, w)| w)
            .sum()
    }
}

/// Adapts a cost function into a [`Constraint`]: fit iff cost ≤
/// `threshold`; the violation degree is the excess cost, so greedy repair
/// descends the weighted landscape.
#[derive(Clone)]
pub struct CostConstraint {
    cost_fn: Arc<dyn CostFunction>,
    threshold: f64,
    arity: Option<usize>,
    name: String,
}

impl std::fmt::Debug for CostConstraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CostConstraint({} ≤ {})", self.name, self.threshold)
    }
}

impl CostConstraint {
    /// Fit iff `cost ≤ threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative or non-finite.
    pub fn new(
        name: impl Into<String>,
        cost_fn: Arc<dyn CostFunction>,
        threshold: f64,
        arity: Option<usize>,
    ) -> Self {
        assert!(
            threshold.is_finite() && threshold >= 0.0,
            "threshold must be finite and non-negative"
        );
        CostConstraint {
            cost_fn,
            threshold,
            arity,
            name: name.into(),
        }
    }

    /// The fitness threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl Constraint for CostConstraint {
    fn is_fit(&self, config: &Config) -> bool {
        self.cost_fn.cost(config) <= self.threshold
    }

    fn violation(&self, config: &Config) -> f64 {
        (self.cost_fn.cost(config) - self.threshold).max(0.0)
    }

    fn arity(&self) -> Option<usize> {
        self.arity
    }

    fn describe(&self) -> String {
        format!("{} ≤ {}", self.name, self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::{GreedyRepair, RepairStrategy};

    #[test]
    fn weighted_mismatch_costs() {
        let target: Config = "1111".parse().unwrap();
        let wm = WeightedMismatch::new(target.clone(), vec![1.0, 2.0, 4.0, 8.0]);
        assert_eq!(wm.cost(&target), 0.0);
        assert_eq!(wm.cost(&"0111".parse().unwrap()), 1.0);
        assert_eq!(wm.cost(&"1011".parse().unwrap()), 2.0);
        assert_eq!(wm.cost(&"0000".parse().unwrap()), 15.0);
        assert!(wm.cost(&Config::zeros(3)).is_infinite());
        assert_eq!(wm.target(), &target);
    }

    #[test]
    fn uniform_is_hamming() {
        let target: Config = "1010".parse().unwrap();
        let wm = WeightedMismatch::uniform(target.clone());
        let probe: Config = "0110".parse().unwrap();
        assert_eq!(wm.cost(&probe), probe.hamming(&target).unwrap() as f64);
    }

    #[test]
    #[should_panic(expected = "one weight per")]
    fn mismatched_weights_rejected() {
        let _ = WeightedMismatch::new(Config::zeros(3), vec![1.0]);
    }

    #[test]
    fn weighted_clauses_cost() {
        let mut wc = WeightedClauses::new(3);
        wc.add_clause(vec![(0, true)], 5.0);
        wc.add_clause(vec![(1, true), (2, true)], 2.0);
        assert_eq!(wc.len(), 2);
        assert!(!wc.is_empty());
        assert_eq!(wc.cost(&"111".parse().unwrap()), 0.0);
        assert_eq!(wc.cost(&"011".parse().unwrap()), 5.0);
        assert_eq!(wc.cost(&"100".parse().unwrap()), 2.0);
        assert_eq!(wc.cost(&"000".parse().unwrap()), 7.0);
        assert!(wc.cost(&Config::zeros(2)).is_infinite());
    }

    #[test]
    fn cost_constraint_adapts_to_constraint_trait() {
        let target: Config = "1111".parse().unwrap();
        let cost = Arc::new(WeightedMismatch::new(target, vec![1.0, 2.0, 4.0, 8.0]));
        let constraint = CostConstraint::new("weighted mismatch", cost, 2.0, Some(4));
        // Cost 2 (bit 1 wrong) is fit; cost 4 (bit 2 wrong) is not.
        assert!(constraint.is_fit(&"1011".parse().unwrap()));
        assert!(!constraint.is_fit(&"1101".parse().unwrap()));
        assert_eq!(constraint.violation(&"1101".parse().unwrap()), 2.0);
        assert_eq!(constraint.arity(), Some(4));
        assert!(constraint.describe().contains("≤ 2"));
        assert_eq!(constraint.threshold(), 2.0);
    }

    #[test]
    fn greedy_repair_fixes_expensive_bits_first() {
        // Bits weighted 1, 2, 4, 8; all wrong; threshold 3 ⇒ greedy must
        // fix bit 3 (weight 8) then bit 2 (weight 4); then cost = 3 ≤ 3.
        let target: Config = "1111".parse().unwrap();
        let cost = Arc::new(WeightedMismatch::new(target, vec![1.0, 2.0, 4.0, 8.0]));
        let constraint = CostConstraint::new("wm", cost, 3.0, Some(4));
        let greedy = GreedyRepair::new();
        let mut state: Config = "0000".parse().unwrap();
        let first = greedy.propose_flip(&state, &constraint).unwrap();
        assert_eq!(first, 3, "highest-weight mismatch first");
        state.flip(first);
        let second = greedy.propose_flip(&state, &constraint).unwrap();
        assert_eq!(second, 2);
        state.flip(second);
        assert!(constraint.is_fit(&state));
    }
}

//! Testing resilience by adversarial search (the paper's §5.3).
//!
//! "The other is black-box testing, or testing by a so-called
//! 'tiger-team'. In this approach, a group of highly skilled people try to
//! attack the system." — as opposed to blind random testing, which rarely
//! finds the needle-in-a-haystack damage patterns a repair strategy cannot
//! handle.
//!
//! [`TigerTeam`] runs a beam search over damage patterns (sets of flipped
//! bits), scoring each by how badly it hurts: the number of repair steps
//! needed, with failures scoring past the budget. [`random_testing`] is the
//! blind-sampling baseline with the same evaluation budget.

use rand::Rng;

use resilience_core::{Config, Constraint};

use crate::repair::RepairStrategy;

/// Result of an attack campaign (adversarial or random).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackReport {
    /// The worst damage pattern found (bit indices flipped).
    pub worst_damage: Vec<usize>,
    /// Its severity: repair steps needed, or `budget + 1` if the repair
    /// failed within the budget.
    pub worst_score: usize,
    /// Repair evaluations spent.
    pub evaluations: usize,
    /// Whether an outright repair failure (score > budget) was found.
    pub found_failure: bool,
}

/// Score one damage pattern: apply it to `start` and count the repair
/// steps `strategy` needs; `budget + 1` means the repair failed (stuck or
/// out of budget) — the jackpot a tiger team is hunting for.
pub fn score_damage<S: RepairStrategy + ?Sized>(
    start: &Config,
    env: &dyn Constraint,
    strategy: &S,
    damage: &[usize],
    budget: usize,
) -> usize {
    let mut state = start.clone();
    for &b in damage {
        if b < state.len() {
            state.flip(b);
        }
    }
    let mut steps = 0;
    while !env.is_fit(&state) {
        if steps >= budget {
            return budget + 1;
        }
        match strategy.propose_flip(&state, env) {
            Some(bit) => {
                state.flip(bit);
                steps += 1;
            }
            None => return budget + 1,
        }
    }
    steps
}

/// A beam-search tiger team.
///
/// # Example
///
/// ```
/// use resilience_dcsp::{GreedyRepair, TigerTeam};
/// use resilience_core::{AllOnes, Config};
///
/// // Against the benign AllOnes landscape a 3-step budget suffices for
/// // every ≤3-bit attack, and the team certifies exactly that.
/// let team = TigerTeam::new(3, 4);
/// let report = team.search(&Config::ones(10), &AllOnes::new(10), &GreedyRepair::new(), 3);
/// assert!(!report.found_failure);
/// assert_eq!(report.worst_score, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TigerTeam {
    /// Maximum bits one attack may flip.
    pub max_damage: usize,
    /// Beam width (candidate patterns kept per round).
    pub beam_width: usize,
}

impl TigerTeam {
    /// New team.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(max_damage: usize, beam_width: usize) -> Self {
        assert!(max_damage > 0, "attacks must flip at least one bit");
        assert!(beam_width > 0, "beam width must be positive");
        TigerTeam {
            max_damage,
            beam_width,
        }
    }

    /// Search for the worst ≤`max_damage`-bit attack against `start`
    /// under `env`, assuming the defender repairs with `strategy` within
    /// `budget` steps.
    ///
    /// Strategy: score all single-bit damages, keep the `beam_width`
    /// worst, then repeatedly extend each survivor by every possible extra
    /// bit, re-scoring and re-pruning — classic beam search over the
    /// damage lattice.
    pub fn search<S: RepairStrategy + ?Sized>(
        &self,
        start: &Config,
        env: &dyn Constraint,
        strategy: &S,
        budget: usize,
    ) -> AttackReport {
        let n = start.len();
        let mut evaluations = 0usize;
        // Seed beam: single-bit attacks.
        let mut beam: Vec<(usize, Vec<usize>)> = (0..n)
            .map(|b| {
                let damage = vec![b];
                let score = score_damage(start, env, strategy, &damage, budget);
                evaluations += 1;
                (score, damage)
            })
            .collect();
        beam.sort_by_key(|(score, _)| std::cmp::Reverse(*score));
        beam.truncate(self.beam_width);
        let mut best = beam.first().cloned().unwrap_or((0, Vec::new()));

        for _round in 1..self.max_damage {
            let mut candidates: Vec<(usize, Vec<usize>)> = Vec::new();
            for (_, damage) in &beam {
                for b in 0..n {
                    if damage.contains(&b) {
                        continue;
                    }
                    let mut extended = damage.clone();
                    extended.push(b);
                    extended.sort_unstable();
                    if candidates.iter().any(|(_, d)| d == &extended) {
                        continue;
                    }
                    let score = score_damage(start, env, strategy, &extended, budget);
                    evaluations += 1;
                    candidates.push((score, extended));
                }
            }
            if candidates.is_empty() {
                break;
            }
            candidates.sort_by_key(|(score, _)| std::cmp::Reverse(*score));
            candidates.truncate(self.beam_width);
            if candidates[0].0 > best.0 {
                best = candidates[0].clone();
            }
            beam = candidates;
        }
        AttackReport {
            found_failure: best.0 > budget,
            worst_score: best.0,
            worst_damage: best.1,
            evaluations,
        }
    }
}

/// Blind black-box testing: sample `trials` uniformly random damage
/// patterns of 1..=`max_damage` bits and keep the worst.
pub fn random_testing<S: RepairStrategy + ?Sized, R: Rng + ?Sized>(
    start: &Config,
    env: &dyn Constraint,
    strategy: &S,
    max_damage: usize,
    budget: usize,
    trials: usize,
    rng: &mut R,
) -> AttackReport {
    let n = start.len();
    let mut best: (usize, Vec<usize>) = (0, Vec::new());
    for _ in 0..trials {
        let k = rng.gen_range(1..=max_damage.max(1)).min(n);
        let damage = rand::seq::index::sample(rng, n, k).into_vec();
        let score = score_damage(start, env, strategy, &damage, budget);
        if score > best.0 {
            best = (score, damage);
        }
    }
    AttackReport {
        found_failure: best.0 > budget,
        worst_score: best.0,
        worst_damage: best.1,
        evaluations: trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::GreedyRepair;
    use resilience_core::{seeded_rng, AllOnes, ExplicitSet};

    #[test]
    fn score_measures_repair_length() {
        let env = AllOnes::new(8);
        let start = Config::ones(8);
        let greedy = GreedyRepair::new();
        assert_eq!(score_damage(&start, &env, &greedy, &[0], 8), 1);
        assert_eq!(score_damage(&start, &env, &greedy, &[0, 3, 5], 8), 3);
        // Budget exceeded ⇒ budget + 1.
        assert_eq!(score_damage(&start, &env, &greedy, &[0, 1, 2, 3], 2), 3);
        // No damage ⇒ zero steps.
        assert_eq!(score_damage(&start, &env, &greedy, &[], 8), 0);
    }

    #[test]
    fn tiger_team_finds_max_damage_on_flat_landscape() {
        // Against AllOnes every d-bit damage costs d steps; the beam
        // search must still climb to the full damage budget.
        let env = AllOnes::new(10);
        let start = Config::ones(10);
        let team = TigerTeam::new(3, 4);
        let report = team.search(&start, &env, &GreedyRepair::new(), 10);
        assert_eq!(report.worst_score, 3);
        assert_eq!(report.worst_damage.len(), 3);
        assert!(!report.found_failure);
    }

    /// The §5.3 point: skilled attack finds rare unrecoverable patterns
    /// that random testing misses at the same evaluation budget.
    #[test]
    fn tiger_team_beats_random_testing_on_needle_landscape() {
        // Fit set {1^n}: greedy handles everything. Add a decoy attractor
        // 0^n: greedy descends the Hamming-distance violation, and any
        // damage past n/2 zeros pulls the repair toward the *wrong* target
        // being nearer… both targets are fit though. To create genuine
        // failures, make the environment fit ONLY at 1^n and at exactly
        // one trap pattern's antipode-ish configuration that greedy walks
        // into and then cannot leave within budget.
        let n = 10;
        let ones = Config::ones(n);
        // Second fit config far from ones: 0000011111.
        let other: Config = "0000011111".parse().unwrap();
        let env: ExplicitSet = [ones.clone(), other].into_iter().collect();
        let greedy = GreedyRepair::new();
        // Tight budget: 2 repair steps. Any damage of 3+ bits that lands
        // equidistant-ish needs > 2 steps — failures exist but most 1–3 bit
        // damages are benign.
        let budget = 2;
        let team = TigerTeam::new(3, 6);
        let adversarial = team.search(&ones, &env, &greedy, budget);
        assert!(
            adversarial.found_failure,
            "tiger team should find a >{budget}-step pattern: {adversarial:?}"
        );
        // Random testing with the same evaluation budget usually finds a
        // weaker attack (averaged over RNG streams it cannot dominate).
        let mut rng = seeded_rng(777);
        let random = random_testing(
            &ones,
            &env,
            &greedy,
            3,
            budget,
            adversarial.evaluations,
            &mut rng,
        );
        assert!(
            adversarial.worst_score >= random.worst_score,
            "adversarial {} vs random {}",
            adversarial.worst_score,
            random.worst_score
        );
    }

    #[test]
    fn random_testing_reports_evaluations() {
        let mut rng = seeded_rng(77);
        let env = AllOnes::new(6);
        let start = Config::ones(6);
        let report = random_testing(&start, &env, &GreedyRepair::new(), 2, 6, 50, &mut rng);
        assert_eq!(report.evaluations, 50);
        assert!(report.worst_score >= 1);
        assert!(!report.found_failure);
    }

    #[test]
    #[should_panic(expected = "beam width")]
    fn zero_beam_rejected() {
        let _ = TigerTeam::new(2, 0);
    }
}

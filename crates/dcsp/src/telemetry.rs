//! Telemetry recording for the verification engines.
//!
//! The DCSP checkers already return deterministic aggregates — the
//! [`VerifyStats`] of the `_stats` recoverability entry points and the
//! per-depth frontier sizes of a [`MaintainabilityReport`] — so, as with
//! the supervised runtime, telemetry is derived from those results after
//! the fact rather than emitted live from worker threads. Everything
//! recorded here is a pure function of the reports, which are themselves
//! thread-invariant, so traces and expositions are byte-identical for
//! any thread budget.

use resilience_telemetry::{Event, MetricsRegistry, Tracer};

use crate::maintainability::{FrontierSummary, MaintainabilityReport};
use crate::recoverability::{RecoverabilityReport, VerifyStats};

/// Record one recoverability verification: a single
/// [`Event::VerifierCacheSummary`] on lane 0 (per-probe events would
/// dwarf the trace) plus the `dcsp_verify_*` metric family.
pub fn record_verification(
    tracer: &mut Tracer,
    registry: &mut MetricsRegistry,
    report: &RecoverabilityReport,
    stats: &VerifyStats,
) {
    tracer.record(
        0,
        Event::VerifierCacheSummary {
            hits: stats.cache_hits,
            misses: stats.cache_misses,
            states: stats.states_explored,
        },
    );
    registry.inc_counter(
        "dcsp_verify_cases_total",
        "Damage cases examined by recoverability checks",
        report.cases as u64,
    );
    registry.inc_counter(
        "dcsp_verify_recovered_total",
        "Damage cases repaired within the step bound",
        report.recovered_within_k as u64,
    );
    registry.inc_counter(
        "dcsp_verify_cache_hits_total",
        "Transposition-cache probes that hit a finished entry",
        stats.cache_hits,
    );
    registry.inc_counter(
        "dcsp_verify_cache_misses_total",
        "Transposition-cache probes that missed",
        stats.cache_misses,
    );
    registry.inc_counter(
        "dcsp_verify_states_explored_total",
        "Distinct states assigned a distance by repair walks",
        stats.states_explored,
    );
    registry.inc_counter(
        "dcsp_verify_orbit_hits_total",
        "Damage cases settled by symmetry-orbit multiplication without a repair walk",
        stats.orbit_hits,
    );
    registry.set_gauge(
        "dcsp_verify_cache_hit_rate",
        "Cache hit rate of the most recent verification",
        stats.hit_rate(),
    );
}

/// Record one maintainability analysis: an [`Event::FrontierLevel`] per
/// backward-BFS depth (tick = depth, lane 0) plus the
/// `dcsp_maintainability_*` metric family.
pub fn record_maintainability(
    tracer: &mut Tracer,
    registry: &mut MetricsRegistry,
    report: &MaintainabilityReport,
) {
    let frontier = report.frontier_sizes();
    for (depth, states) in frontier.iter().enumerate() {
        tracer.record(
            depth as u64,
            Event::FrontierLevel {
                depth: depth as u32,
                states: *states,
            },
        );
    }
    registry.inc_counter(
        "dcsp_maintainability_states_total",
        "States analyzed by backward BFS",
        report.levels.len() as u64,
    );
    registry.inc_counter(
        "dcsp_maintainability_hopeless_total",
        "States from which normality is unreachable",
        report.hopeless_states().len() as u64,
    );
    registry.set_gauge(
        "dcsp_maintainability_depth",
        "Deepest backward-BFS level of the most recent analysis",
        frontier.len().saturating_sub(1) as f64,
    );
    registry.set_gauge(
        "dcsp_maintainability_frontier_peak",
        "Largest single frontier of the most recent analysis",
        frontier.iter().copied().max().unwrap_or(0) as f64,
    );
}

/// Record one compressed-frontier maintainability run
/// ([`FrontierSummary`]): the same [`Event::FrontierLevel`] stream and
/// `dcsp_maintainability_*` metric family as
/// [`record_maintainability`] — a dense report and a compressed summary
/// of the same instance produce byte-identical telemetry, which
/// `tests/symmetry_equivalence.rs` checks.
pub fn record_frontier_summary(
    tracer: &mut Tracer,
    registry: &mut MetricsRegistry,
    summary: &FrontierSummary,
) {
    for (depth, states) in summary.frontier_sizes.iter().enumerate() {
        tracer.record(
            depth as u64,
            Event::FrontierLevel {
                depth: depth as u32,
                states: *states,
            },
        );
    }
    registry.inc_counter(
        "dcsp_maintainability_states_total",
        "States analyzed by backward BFS",
        summary.total_states(),
    );
    registry.inc_counter(
        "dcsp_maintainability_hopeless_total",
        "States from which normality is unreachable",
        summary.hopeless,
    );
    registry.set_gauge(
        "dcsp_maintainability_depth",
        "Deepest backward-BFS level of the most recent analysis",
        summary.frontier_sizes.len().saturating_sub(1) as f64,
    );
    registry.set_gauge(
        "dcsp_maintainability_frontier_peak",
        "Largest single frontier of the most recent analysis",
        summary.frontier_peak() as f64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maintainability::{analyze_bit_dcsp, analyze_bit_dcsp_frontiers};
    use crate::recoverability::{
        is_k_recoverable_exhaustive_stats, is_k_recoverable_symmetric_stats,
    };
    use crate::repair::GreedyRepair;
    use resilience_core::{AtLeastOnes, Config, RunContext};

    #[test]
    fn verification_telemetry_reconciles_with_the_report() {
        let start = Config::ones(10);
        let env = AtLeastOnes::new(10, 6);
        let (report, stats) =
            is_k_recoverable_exhaustive_stats(&start, &env, &GreedyRepair::new(), 3, 4);
        let mut tracer = Tracer::new();
        let mut registry = MetricsRegistry::new();
        record_verification(&mut tracer, &mut registry, &report, &stats);
        let merged = tracer.merged();
        assert_eq!(merged.len(), 1);
        assert!(matches!(
            merged[0].event,
            Event::VerifierCacheSummary { hits, misses, .. }
                if hits == stats.cache_hits && misses == stats.cache_misses
        ));
        let prom = registry.to_prometheus();
        assert!(prom.contains(&format!("dcsp_verify_cases_total {}", report.cases)));
        assert!(prom.contains("dcsp_verify_cache_hit_rate"));
    }

    #[test]
    fn maintainability_frontier_becomes_one_event_per_depth() {
        let report = analyze_bit_dcsp(6, &AtLeastOnes::new(6, 4));
        let mut tracer = Tracer::new();
        let mut registry = MetricsRegistry::new();
        record_maintainability(&mut tracer, &mut registry, &report);
        let frontier = report.frontier_sizes();
        let merged = tracer.merged();
        assert_eq!(merged.len(), frontier.len());
        let total: u64 = frontier.iter().sum();
        assert_eq!(
            total + report.hopeless_states().len() as u64,
            report.levels.len() as u64
        );
        // Events come out depth-ordered because tick = depth.
        for (depth, ev) in merged.iter().enumerate() {
            assert_eq!(ev.tick, depth as u64);
            assert!(matches!(ev.event, Event::FrontierLevel { depth: d, .. }
                if d as usize == depth));
        }
        assert!(registry
            .to_prometheus()
            .contains("dcsp_maintainability_states_total"));
    }

    #[test]
    fn orbit_hits_flow_into_the_exposition() {
        let start = Config::ones(10);
        let env = AtLeastOnes::new(10, 6);
        let ctx = RunContext::new(0);
        let (report, stats) =
            is_k_recoverable_symmetric_stats(&start, &env, &GreedyRepair::new(), 3, 4, &ctx)
                .expect("counting constraints declare symmetry");
        let mut tracer = Tracer::new();
        let mut registry = MetricsRegistry::new();
        record_verification(&mut tracer, &mut registry, &report, &stats);
        let prom = registry.to_prometheus();
        assert!(stats.orbit_hits > 0);
        assert!(prom.contains(&format!(
            "dcsp_verify_orbit_hits_total {}",
            stats.orbit_hits
        )));
    }

    #[test]
    fn dense_and_compressed_maintainability_telemetry_agree() {
        let env = AtLeastOnes::new(8, 5);
        let report = analyze_bit_dcsp(8, &env);
        let summary = analyze_bit_dcsp_frontiers(8, &env, 2);
        let mut tracer_a = Tracer::new();
        let mut registry_a = MetricsRegistry::new();
        record_maintainability(&mut tracer_a, &mut registry_a, &report);
        let mut tracer_b = Tracer::new();
        let mut registry_b = MetricsRegistry::new();
        record_frontier_summary(&mut tracer_b, &mut registry_b, &summary);
        assert_eq!(tracer_a.merged(), tracer_b.merged());
        assert_eq!(registry_a.to_prometheus(), registry_b.to_prometheus());
        assert!(registry_b
            .to_prometheus()
            .contains("dcsp_maintainability_frontier_peak"));
    }
}

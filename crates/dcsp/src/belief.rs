//! Reasoning under uncertainty about the system state (the paper's §4.3).
//!
//! "However, to analyze a system based on this definition requires us to
//! know in advance all possible events, some of which could be totally
//! unexpected. … We, therefore, expect that reasoning techniques dealing
//! with various uncertainty of a system model be a promising tool."
//!
//! A [`BeliefState`] is the set of configurations the administrator
//! considers possible when sensors are incomplete. Repair planning over a
//! belief state must work for *every* member (conservative repair).

use std::collections::HashSet;

use resilience_core::{Config, Constraint};

/// A set of possible configurations — what the administrator knows.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BeliefState {
    possible: HashSet<Config>,
}

impl BeliefState {
    /// Certain knowledge of a single configuration.
    pub fn certain(config: Config) -> Self {
        let mut possible = HashSet::new();
        possible.insert(config);
        BeliefState { possible }
    }

    /// Belief over an explicit set of possibilities.
    pub fn new<I: IntoIterator<Item = Config>>(configs: I) -> Self {
        BeliefState {
            possible: configs.into_iter().collect(),
        }
    }

    /// The belief after an *unobserved* damage of up to `max_flips` bits:
    /// every configuration within Hamming distance `max_flips` of a current
    /// possibility becomes possible. This is how an unanticipated shock
    /// blows up uncertainty.
    pub fn after_unobserved_damage(&self, max_flips: usize) -> BeliefState {
        let mut out: HashSet<Config> = self.possible.clone();
        let mut frontier: Vec<Config> = self.possible.iter().cloned().collect();
        for _ in 0..max_flips {
            let mut next = Vec::new();
            for cfg in &frontier {
                for i in 0..cfg.len() {
                    let mut c = cfg.clone();
                    c.flip(i);
                    if out.insert(c.clone()) {
                        next.push(c);
                    }
                }
            }
            frontier = next;
        }
        BeliefState { possible: out }
    }

    /// Incorporate a sensor reading: bit `i` is observed to be `value`.
    /// Possibilities disagreeing with the observation are discarded.
    pub fn observe_bit(&mut self, i: usize, value: bool) {
        self.possible.retain(|c| i < c.len() && c.get(i) == value);
    }

    /// Incorporate a fitness observation: the system is (or is not) fit
    /// under `env`.
    pub fn observe_fitness(&mut self, env: &dyn Constraint, fit: bool) {
        self.possible.retain(|c| env.is_fit(c) == fit);
    }

    /// Apply an *action* the administrator performs: flip bit `i` in every
    /// possibility (actions are deterministic even when state is unknown).
    pub fn apply_flip(&mut self, i: usize) {
        let flipped: HashSet<Config> = self
            .possible
            .iter()
            .map(|c| {
                let mut c = c.clone();
                if i < c.len() {
                    c.flip(i);
                }
                c
            })
            .collect();
        self.possible = flipped;
    }

    /// Number of possibilities.
    pub fn cardinality(&self) -> usize {
        self.possible.len()
    }

    /// Whether no configuration is considered possible (contradictory
    /// observations).
    pub fn is_contradictory(&self) -> bool {
        self.possible.is_empty()
    }

    /// Whether exactly one configuration remains.
    pub fn is_certain(&self) -> bool {
        self.possible.len() == 1
    }

    /// Whether *every* possibility is fit — the only situation where the
    /// administrator can declare recovery.
    pub fn certainly_fit(&self, env: &dyn Constraint) -> bool {
        !self.possible.is_empty() && self.possible.iter().all(|c| env.is_fit(c))
    }

    /// Whether *some* possibility is fit.
    pub fn possibly_fit(&self, env: &dyn Constraint) -> bool {
        self.possible.iter().any(|c| env.is_fit(c))
    }

    /// Iterate over the possibilities.
    pub fn iter(&self) -> impl Iterator<Item = &Config> {
        self.possible.iter()
    }

    /// Bits whose value is the same across all possibilities (known bits),
    /// as `(index, value)` pairs. Empty if the belief is contradictory.
    pub fn known_bits(&self) -> Vec<(usize, bool)> {
        let mut iter = self.possible.iter();
        let first = match iter.next() {
            Some(f) => f,
            None => return Vec::new(),
        };
        (0..first.len())
            .filter_map(|i| {
                let v = first.get(i);
                self.possible
                    .iter()
                    .all(|c| c.get(i) == v)
                    .then_some((i, v))
            })
            .collect()
    }

    /// Greedy conservative repair: repeatedly flip the bit that minimizes
    /// the *worst-case* violation over the belief, until certainly fit or
    /// `max_steps` is exhausted. Returns the flips made and whether the
    /// belief ended certainly fit.
    pub fn conservative_repair(
        &mut self,
        env: &dyn Constraint,
        max_steps: usize,
    ) -> (Vec<usize>, bool) {
        let mut flips = Vec::new();
        let len = match self.possible.iter().next() {
            Some(c) => c.len(),
            None => return (flips, false),
        };
        for _ in 0..max_steps {
            if self.certainly_fit(env) {
                break;
            }
            let current = self.worst_violation(env);
            let mut best: Option<(usize, f64)> = None;
            for i in 0..len {
                let mut probe = self.clone();
                probe.apply_flip(i);
                let v = probe.worst_violation(env);
                if v < current {
                    match best {
                        Some((_, bv)) if bv <= v => {}
                        _ => best = Some((i, v)),
                    }
                }
            }
            match best {
                Some((i, _)) => {
                    self.apply_flip(i);
                    flips.push(i);
                }
                None => break,
            }
        }
        let ok = self.certainly_fit(env);
        (flips, ok)
    }

    fn worst_violation(&self, env: &dyn Constraint) -> f64 {
        self.possible
            .iter()
            .map(|c| env.violation(c))
            .fold(0.0, f64::max)
    }
}

impl FromIterator<Config> for BeliefState {
    fn from_iter<I: IntoIterator<Item = Config>>(iter: I) -> Self {
        BeliefState::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::{AllOnes, AtLeastOnes};

    #[test]
    fn certain_belief() {
        let b = BeliefState::certain("101".parse().unwrap());
        assert!(b.is_certain());
        assert_eq!(b.cardinality(), 1);
        assert!(!b.is_contradictory());
    }

    #[test]
    fn unobserved_damage_grows_belief_to_hamming_ball() {
        let b = BeliefState::certain(Config::ones(4));
        let after = b.after_unobserved_damage(1);
        // Ball of radius 1 around 1111: itself + 4 neighbours.
        assert_eq!(after.cardinality(), 5);
        let after2 = b.after_unobserved_damage(2);
        // 1 + 4 + 6 = 11.
        assert_eq!(after2.cardinality(), 11);
    }

    #[test]
    fn observations_shrink_belief() {
        let mut b = BeliefState::certain(Config::ones(3)).after_unobserved_damage(1);
        assert_eq!(b.cardinality(), 4);
        b.observe_bit(0, true); // bit 0 is good
        assert_eq!(b.cardinality(), 3); // 111, 101, 110
        b.observe_bit(1, true);
        assert_eq!(b.cardinality(), 2); // 111, 110
        b.observe_bit(2, true);
        assert!(b.is_certain());
    }

    #[test]
    fn contradictory_observations() {
        let mut b = BeliefState::certain("10".parse().unwrap());
        b.observe_bit(0, false);
        assert!(b.is_contradictory());
        assert!(!b.certainly_fit(&AllOnes::new(2)));
    }

    #[test]
    fn fitness_observation() {
        let env = AllOnes::new(3);
        let mut b = BeliefState::certain(Config::ones(3)).after_unobserved_damage(1);
        // Told the system is NOT fit: the intact possibility drops out.
        b.observe_fitness(&env, false);
        assert_eq!(b.cardinality(), 3);
        assert!(!b.possibly_fit(&env));
    }

    #[test]
    fn known_bits() {
        let b: BeliefState = ["110".parse().unwrap(), "100".parse().unwrap()]
            .into_iter()
            .collect();
        let known = b.known_bits();
        assert!(known.contains(&(0, true)));
        assert!(known.contains(&(2, false)));
        assert_eq!(known.len(), 2);
        assert!(BeliefState::default().known_bits().is_empty());
    }

    #[test]
    fn apply_flip_acts_on_all_members() {
        let mut b: BeliefState = ["10".parse().unwrap(), "00".parse().unwrap()]
            .into_iter()
            .collect();
        b.apply_flip(1);
        let members: HashSet<String> = b.iter().map(|c| c.to_string()).collect();
        assert!(members.contains("11"));
        assert!(members.contains("01"));
    }

    #[test]
    fn conservative_repair_with_graded_constraint() {
        // Under AtLeastOnes the worst-case violation is graded, so the
        // conservative repairer can hill-climb: believe either 0000 or
        // 0001; need ≥ 3 ones.
        let env = AtLeastOnes::new(4, 3);
        let mut b: BeliefState = ["0000".parse().unwrap(), "0001".parse().unwrap()]
            .into_iter()
            .collect();
        let (flips, ok) = b.conservative_repair(&env, 8);
        assert!(ok, "flips: {flips:?}, belief: {b:?}");
        assert!(flips.len() >= 3 && flips.len() <= 4);
        assert!(b.certainly_fit(&env));
    }

    #[test]
    fn conservative_repair_already_fit() {
        let env = AtLeastOnes::new(3, 1);
        let mut b = BeliefState::certain("111".parse().unwrap());
        let (flips, ok) = b.conservative_repair(&env, 5);
        assert!(ok);
        assert!(flips.is_empty());
    }

    #[test]
    fn conservative_repair_contradictory_fails() {
        let env = AtLeastOnes::new(3, 1);
        let mut b = BeliefState::default();
        let (flips, ok) = b.conservative_repair(&env, 5);
        assert!(!ok);
        assert!(flips.is_empty());
    }

    #[test]
    fn uncertainty_costs_repair_steps() {
        // With certainty, repairing 0111 under AllOnes takes 1 flip. With
        // a radius-1 belief, the conservative repairer must also cover the
        // worst member, needing at least as many flips.
        let env = AllOnes::new(4);
        let mut certain = BeliefState::certain("0111".parse().unwrap());
        let (flips_c, ok_c) = certain.conservative_repair(&env, 8);
        assert!(ok_c);
        assert_eq!(flips_c.len(), 1);

        let mut uncertain =
            BeliefState::certain("0111".parse().unwrap()).after_unobserved_damage(1);
        let (_, ok_u) = uncertain.conservative_repair(&env, 8);
        // A belief containing configs on both sides of a flip can never be
        // made certainly fit by blind flips alone: flipping maps distinct
        // members to distinct configs. So conservative repair fails.
        assert!(!ok_u);
        // …until observations restore certainty:
        let mut observed = BeliefState::certain("0111".parse().unwrap()).after_unobserved_damage(1);
        for i in 0..4 {
            let value = i != 0; // true state 0111
            observed.observe_bit(i, value);
        }
        let (flips_o, ok_o) = observed.conservative_repair(&env, 8);
        assert!(ok_o);
        assert_eq!(flips_o.len(), 1);
    }
}

//! The paper's worked example (§4.2): a hypothetical spacecraft.
//!
//! "The system consists of a fixed set of n components, each of which has a
//! single binary variable nᵢ representing the availability of the
//! component. … Suppose that the constraint C = 1ⁿ at every time t … and
//! that the spacecraft is occasionally hit by space debris causing at most
//! k component failures. … If the spacecraft can fix one component at each
//! time step, we consider that the spacecraft is k-recoverable under the
//! presence of an event of type D assuming that once the spacecraft has
//! component failures at time t, it will not have another component failure
//! until time t + k."

use rand::Rng;

use resilience_core::{resilience_loss, Config, QualityTrajectory, ShockSchedule};

/// The spacecraft: `n` components, all required good, hit by debris that
/// damages at most `max_debris_damage` components, repairing one component
/// per time step.
///
/// # Example
///
/// ```
/// use resilience_dcsp::Spacecraft;
/// use resilience_core::seeded_rng;
///
/// let mut craft = Spacecraft::new(12, 3, 1);
/// assert_eq!(craft.guaranteed_k(), 3); // ≤3 damage, 1 repair/step
/// let mut rng = seeded_rng(1);
/// craft.debris_strike(&mut rng);
/// for _ in 0..craft.guaranteed_k() {
///     craft.repair_step();
/// }
/// assert!(craft.is_operational());
/// ```
#[derive(Debug, Clone)]
pub struct Spacecraft {
    components: Config,
    max_debris_damage: usize,
    repairs_per_step: usize,
}

/// Timeline record of a mission simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct MissionLog {
    /// Quality over time (fraction of good components × 100).
    pub quality: QualityTrajectory,
    /// Number of debris strikes.
    pub strikes: usize,
    /// Total component-failures inflicted.
    pub total_damage: usize,
    /// Steps on which the spacecraft was fully operational.
    pub steps_fit: usize,
    /// Total steps simulated.
    pub steps: usize,
    /// Longest run of consecutive degraded steps.
    pub longest_outage: usize,
}

impl MissionLog {
    /// Bruneau resilience loss over the whole mission.
    pub fn resilience_loss(&self) -> f64 {
        resilience_loss(&self.quality)
    }

    /// Fraction of steps at full function.
    pub fn availability(&self) -> f64 {
        if self.steps == 0 {
            1.0
        } else {
            self.steps_fit as f64 / self.steps as f64
        }
    }
}

impl Spacecraft {
    /// A new spacecraft with `n` good components.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `repairs_per_step == 0`.
    pub fn new(n: usize, max_debris_damage: usize, repairs_per_step: usize) -> Self {
        assert!(n > 0, "a spacecraft needs at least one component");
        assert!(
            repairs_per_step > 0,
            "must repair at least one component per step"
        );
        Spacecraft {
            components: Config::ones(n),
            max_debris_damage,
            repairs_per_step,
        }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Never empty (constructor enforces `n > 0`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether all components are good (`s ∈ C = 1ⁿ`).
    pub fn is_operational(&self) -> bool {
        self.components.count_ones() == self.components.len()
    }

    /// Number of failed components.
    pub fn failed_components(&self) -> usize {
        self.components.count_zeros()
    }

    /// The theoretical guarantee from the paper: with one repair per step
    /// and debris damaging at most `d` components, the craft is
    /// k-recoverable with `k = ceil(d / repairs_per_step)`.
    pub fn guaranteed_k(&self) -> usize {
        self.max_debris_damage.div_ceil(self.repairs_per_step)
    }

    /// One debris strike: damages `1..=max_debris_damage` good components.
    pub fn debris_strike<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        if self.max_debris_damage == 0 {
            return 0;
        }
        let k = rng.gen_range(1..=self.max_debris_damage);
        let before = self.failed_components();
        // Damage only good components: debris cannot "repair". Sampling
        // over the count and selecting with `nth_one` keeps the RNG
        // stream (and the chosen bits) identical to the former
        // materialized `ones_indices()` vector, without the O(n) alloc.
        let good = self.components.count_ones();
        let k = k.min(good);
        let mut chosen = rand::seq::index::sample(rng, good, k).into_vec();
        for slot in chosen.iter_mut() {
            *slot = self
                .components
                .nth_one(*slot)
                .expect("sampled index is within the set-bit count");
        }
        for bit in chosen {
            self.components.clear(bit);
        }
        self.failed_components() - before
    }

    /// One repair step: fix up to `repairs_per_step` failed components.
    /// Returns how many were fixed.
    pub fn repair_step(&mut self) -> usize {
        let mut fixed = 0;
        for i in 0..self.components.len() {
            if fixed == self.repairs_per_step {
                break;
            }
            if !self.components.get(i) {
                self.components.set(i);
                fixed += 1;
            }
        }
        fixed
    }

    /// Quality: percentage of good components.
    pub fn quality(&self) -> f64 {
        100.0 * self.components.density()
    }

    /// Simulate a mission of `steps` steps under a debris arrival
    /// `schedule`. Each step: debris may strike, then one repair step runs.
    pub fn simulate_mission<R: Rng + ?Sized>(
        &mut self,
        steps: usize,
        schedule: &ShockSchedule,
        rng: &mut R,
    ) -> MissionLog {
        let mut quality = QualityTrajectory::new(1.0);
        quality.push(self.quality());
        let mut strikes = 0;
        let mut total_damage = 0;
        let mut steps_fit = 0;
        let mut outage = 0;
        let mut longest_outage = 0;
        for t in 1..=steps {
            if schedule.fires_at(t, rng) {
                strikes += 1;
                total_damage += self.debris_strike(rng);
            }
            self.repair_step();
            quality.push(self.quality());
            if self.is_operational() {
                steps_fit += 1;
                outage = 0;
            } else {
                outage += 1;
                longest_outage = longest_outage.max(outage);
            }
        }
        MissionLog {
            quality,
            strikes,
            total_damage,
            steps_fit,
            steps,
            longest_outage,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::seeded_rng;

    #[test]
    fn new_spacecraft_is_operational() {
        let s = Spacecraft::new(10, 3, 1);
        assert!(s.is_operational());
        assert_eq!(s.failed_components(), 0);
        assert_eq!(s.quality(), 100.0);
        assert_eq!(s.len(), 10);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn zero_components_rejected() {
        let _ = Spacecraft::new(0, 1, 1);
    }

    #[test]
    fn guaranteed_k_formula() {
        assert_eq!(Spacecraft::new(10, 3, 1).guaranteed_k(), 3);
        assert_eq!(Spacecraft::new(10, 3, 2).guaranteed_k(), 2);
        assert_eq!(Spacecraft::new(10, 4, 2).guaranteed_k(), 2);
        assert_eq!(Spacecraft::new(10, 0, 1).guaranteed_k(), 0);
    }

    #[test]
    fn debris_damages_within_bound() {
        let mut rng = seeded_rng(11);
        for _ in 0..50 {
            let mut s = Spacecraft::new(20, 4, 1);
            let dmg = s.debris_strike(&mut rng);
            assert!((1..=4).contains(&dmg));
            assert_eq!(s.failed_components(), dmg);
        }
    }

    #[test]
    fn zero_damage_bound_is_noop() {
        let mut rng = seeded_rng(12);
        let mut s = Spacecraft::new(5, 0, 1);
        assert_eq!(s.debris_strike(&mut rng), 0);
        assert!(s.is_operational());
    }

    #[test]
    fn repair_fixes_one_per_step() {
        let mut rng = seeded_rng(13);
        let mut s = Spacecraft::new(10, 3, 1);
        s.debris_strike(&mut rng);
        let failed = s.failed_components();
        let mut steps = 0;
        while !s.is_operational() {
            assert_eq!(s.repair_step(), 1);
            steps += 1;
        }
        assert_eq!(
            steps, failed,
            "one repair per step ⇒ k steps for k failures"
        );
    }

    #[test]
    fn recovery_within_guaranteed_k() {
        // The paper's k-recoverability guarantee, across many strikes.
        let mut rng = seeded_rng(14);
        for trial in 0..100 {
            let mut s = Spacecraft::new(16, 5, 2);
            s.debris_strike(&mut rng);
            let k = s.guaranteed_k();
            for _ in 0..k {
                s.repair_step();
            }
            assert!(
                s.is_operational(),
                "trial {trial} failed to recover in k={k}"
            );
        }
    }

    #[test]
    fn mission_with_sparse_debris_recovers_every_time() {
        let mut rng = seeded_rng(15);
        let mut s = Spacecraft::new(12, 3, 1);
        // Debris every 10 steps; guaranteed_k = 3 < 10 ⇒ always back to
        // full function before the next strike. The extra 5 steps let the
        // final strike's repairs finish.
        let log = s.simulate_mission(205, &ShockSchedule::Periodic { period: 10 }, &mut rng);
        assert_eq!(log.strikes, 20);
        assert!(log.longest_outage <= 3, "outage {}", log.longest_outage);
        assert!(s.is_operational());
        assert!(log.availability() > 0.6);
        assert!(log.resilience_loss() > 0.0);
    }

    #[test]
    fn mission_with_dense_debris_accumulates_damage() {
        let mut rng = seeded_rng(16);
        // Strikes (up to 4 damage) every step but only 1 repair/step ⇒
        // failures accumulate: expected damage/step (=2.5) > repair rate.
        let mut s = Spacecraft::new(30, 4, 1);
        let log = s.simulate_mission(100, &ShockSchedule::Periodic { period: 1 }, &mut rng);
        assert!(
            log.availability() < 0.3,
            "availability {}",
            log.availability()
        );
        assert!(!s.is_operational());
        // Faster repair restores resilience.
        let mut rng = seeded_rng(16);
        let mut fast = Spacecraft::new(30, 4, 4);
        let fast_log = fast.simulate_mission(100, &ShockSchedule::Periodic { period: 1 }, &mut rng);
        assert!(fast_log.resilience_loss() < log.resilience_loss());
    }

    #[test]
    fn quiet_mission_has_zero_loss() {
        let mut rng = seeded_rng(17);
        let mut s = Spacecraft::new(8, 2, 1);
        let log = s.simulate_mission(50, &ShockSchedule::Never, &mut rng);
        assert_eq!(log.strikes, 0);
        assert_eq!(log.resilience_loss(), 0.0);
        assert_eq!(log.availability(), 1.0);
        assert_eq!(log.longest_outage, 0);
    }
}

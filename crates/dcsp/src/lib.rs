//! Dynamic constraint satisfaction substrate for the Systems Resilience
//! model (the paper's §4).
//!
//! "We base our model on the framework of dynamic constraint satisfaction
//! problems (DCSPs) and formally define the notion of resilience of open
//! dynamic systems."
//!
//! * [`DcspSystem`] — a system with a bit-string state living in an
//!   environment (constraint) that can change; shocks perturb state and/or
//!   environment; repair strategies flip bits to regain fitness.
//! * [`repair`] — single-bit-flip repair search: greedy descent on the
//!   constraint's violation degree, BFS-optimal repair, and simulated
//!   annealing, all restricted to the paper's "flip one bit at a time"
//!   move set.
//! * [`recoverability`] — *k*-recoverability (§4.2): "If the system can fix
//!   its configuration for any perturbations of type D within k steps, we
//!   call the system k-recoverable." Exhaustive and Monte-Carlo checkers.
//! * [`maintainability`] — *K*-maintainability (§4.3, after Baral & Eiter):
//!   policy construction over an explicit transition system with exogenous
//!   and controllable transitions.
//! * [`belief`] — reasoning under uncertainty (§4.3): belief states as sets
//!   of possible configurations, conservative repair.
//! * [`spacecraft`] — the paper's worked example: `C = 1^n`, space debris
//!   damages at most `k` components, one repair per step.
//!
//! # Example
//!
//! ```
//! use resilience_dcsp::{DcspSystem, GreedyRepair};
//! use resilience_core::{AllOnes, ShockKind, seeded_rng};
//! use std::sync::Arc;
//!
//! let mut rng = seeded_rng(7);
//! let mut sys = DcspSystem::fit_under(Arc::new(AllOnes::new(16)));
//! sys.strike(&ShockKind::BitDamage { flips: 3 }, &mut rng);
//! assert!(!sys.is_fit());
//! let outcome = sys.repair(&GreedyRepair::new(), 16);
//! assert!(outcome.recovered);
//! assert_eq!(outcome.steps, 3); // one flip per damaged bit
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as typed `CoreError`s, never
// `unwrap()`; tests are exempt (the `not(test)` gate) because a failed
// unwrap there *is* the assertion.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod belief;
pub mod bitwords;
pub mod cost;
pub mod maintainability;
pub mod problem;
pub mod recoverability;
pub mod repair;
pub mod scenario;
pub mod spacecraft;
pub mod symmetry;
pub mod telemetry;
pub mod tiger_team;

pub use belief::BeliefState;
pub use bitwords::BitWords;
pub use cost::{CostConstraint, CostFunction, WeightedClauses, WeightedMismatch};
pub use maintainability::{
    analyze_bit_dcsp, analyze_bit_dcsp_adversarial, analyze_bit_dcsp_adversarial_frontiers,
    analyze_bit_dcsp_auto, analyze_bit_dcsp_frontiers, try_analyze_bit_dcsp,
    try_analyze_bit_dcsp_adversarial, FrontierSummary, MaintainabilityReport, MaintenancePolicy,
    TransitionSystem,
};
pub use problem::{DcspSystem, EpisodeRecord};
pub use recoverability::{
    is_k_recoverable_auto, is_k_recoverable_exhaustive, is_k_recoverable_exhaustive_parallel,
    is_k_recoverable_exhaustive_parallel_stats, is_k_recoverable_exhaustive_stats,
    is_k_recoverable_symmetric, is_k_recoverable_symmetric_stats, recoverability_reference,
    sampled_recoverability, RecoverabilityReport, VerifyStats,
};
pub use repair::{AnnealRepair, BfsRepair, GreedyRepair, RepairOutcome, RepairStrategy};
pub use scenario::{Scenario, ScenarioReport, ScenarioStep};
pub use spacecraft::{MissionLog, Spacecraft};
pub use symmetry::{DamageOrbit, SymmetryClasses};
pub use telemetry::{record_frontier_summary, record_maintainability, record_verification};
pub use tiger_team::{random_testing, AttackReport, TigerTeam};

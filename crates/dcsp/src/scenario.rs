//! Scripted scenarios for open dynamic systems.
//!
//! The paper's Fig. 4 shows the resilience loop — environment changes,
//! status updates, adaptation — as an ongoing process, not a single
//! episode. A [`Scenario`] is a reproducible script of that process:
//! shocks, environment shifts, repair windows, and idle time, applied to a
//! [`DcspSystem`] and scored end-to-end with the Bruneau machinery.

use std::sync::Arc;

use rand::Rng;

use resilience_core::bruneau::{analyze_triangle, ResilienceTriangle};
use resilience_core::{resilience_loss, Constraint, ShockKind};

use crate::problem::DcspSystem;
use crate::repair::RepairStrategy;

/// One step of a scenario script.
#[derive(Clone)]
pub enum ScenarioStep {
    /// A shock of the given kind strikes.
    Shock(ShockKind),
    /// The environment changes to a new constraint (the paper's C → C').
    ShiftEnvironment(Arc<dyn Constraint>),
    /// The system runs its repair strategy for at most this many flips.
    Repair {
        /// Flip budget for this window.
        max_steps: usize,
    },
    /// Nothing happens for this many ticks (quality keeps being sampled).
    Idle(usize),
}

impl std::fmt::Debug for ScenarioStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioStep::Shock(kind) => write!(f, "Shock({kind:?})"),
            ScenarioStep::ShiftEnvironment(c) => {
                write!(f, "ShiftEnvironment({})", c.describe())
            }
            ScenarioStep::Repair { max_steps } => write!(f, "Repair(≤{max_steps})"),
            ScenarioStep::Idle(n) => write!(f, "Idle({n})"),
        }
    }
}

/// A reproducible script of events.
#[derive(Debug, Clone, Default)]
pub struct Scenario {
    steps: Vec<ScenarioStep>,
}

/// The outcome of running a scenario.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Total Bruneau loss over the whole run.
    pub total_loss: f64,
    /// The first shock-to-recovery triangle, if quality ever dipped.
    pub first_triangle: Option<ResilienceTriangle>,
    /// Whether the system ended fit.
    pub ended_fit: bool,
    /// Total repair flips spent.
    pub flips_spent: usize,
    /// Shocks that struck.
    pub shocks: usize,
}

impl Scenario {
    /// An empty scenario.
    pub fn new() -> Self {
        Scenario::default()
    }

    /// Append a shock.
    pub fn shock(mut self, kind: ShockKind) -> Self {
        self.steps.push(ScenarioStep::Shock(kind));
        self
    }

    /// Append an environment shift.
    pub fn shift_environment(mut self, env: Arc<dyn Constraint>) -> Self {
        self.steps.push(ScenarioStep::ShiftEnvironment(env));
        self
    }

    /// Append a repair window.
    pub fn repair(mut self, max_steps: usize) -> Self {
        self.steps.push(ScenarioStep::Repair { max_steps });
        self
    }

    /// Append idle ticks.
    pub fn idle(mut self, ticks: usize) -> Self {
        self.steps.push(ScenarioStep::Idle(ticks));
        self
    }

    /// The scripted steps.
    pub fn steps(&self) -> &[ScenarioStep] {
        &self.steps
    }

    /// Run the script against `system` with `strategy`, consuming shocks
    /// from `rng`.
    pub fn run<S: RepairStrategy + ?Sized, R: Rng + ?Sized>(
        &self,
        system: &mut DcspSystem,
        strategy: &S,
        rng: &mut R,
    ) -> ScenarioReport {
        let mut flips_spent = 0;
        let mut shocks = 0;
        for step in &self.steps {
            match step {
                ScenarioStep::Shock(kind) => {
                    system.strike(kind, rng);
                    shocks += 1;
                }
                ScenarioStep::ShiftEnvironment(env) => {
                    system.shift_environment(Arc::clone(env));
                }
                ScenarioStep::Repair { max_steps } => {
                    let outcome = system.repair(strategy, *max_steps);
                    flips_spent += outcome.steps;
                }
                ScenarioStep::Idle(ticks) => {
                    for _ in 0..*ticks {
                        system.idle();
                    }
                }
            }
        }
        let trajectory = system.quality_trajectory();
        ScenarioReport {
            total_loss: resilience_loss(trajectory),
            first_triangle: analyze_triangle(trajectory, 100.0).ok().flatten(),
            ended_fit: system.is_fit(),
            flips_spent,
            shocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::GreedyRepair;
    use resilience_core::{seeded_rng, AllOnes, AtLeastOnes};

    fn system(n: usize) -> DcspSystem {
        DcspSystem::fit_under(Arc::new(AllOnes::new(n)))
    }

    #[test]
    fn quiet_scenario_has_no_loss() {
        let mut rng = seeded_rng(801);
        let mut sys = system(8);
        let report = Scenario::new()
            .idle(20)
            .run(&mut sys, &GreedyRepair::new(), &mut rng);
        assert_eq!(report.total_loss, 0.0);
        assert!(report.ended_fit);
        assert_eq!(report.flips_spent, 0);
        assert_eq!(report.shocks, 0);
        assert!(report.first_triangle.is_none());
    }

    #[test]
    fn shock_repair_cycle_produces_a_triangle() {
        let mut rng = seeded_rng(802);
        let mut sys = system(16);
        let report = Scenario::new()
            .idle(3)
            .shock(ShockKind::BitDamage { flips: 4 })
            .repair(16)
            .idle(3)
            .run(&mut sys, &GreedyRepair::new(), &mut rng);
        assert!(report.ended_fit);
        assert_eq!(report.flips_spent, 4);
        assert_eq!(report.shocks, 1);
        assert!(report.total_loss > 0.0);
        let tri = report.first_triangle.expect("quality dipped");
        assert!(tri.recovered);
        assert!((tri.recovery_time - 4.0).abs() < 1e-9);
    }

    #[test]
    fn environment_shift_requires_adaptation() {
        let mut rng = seeded_rng(803);
        // Start fit under a lenient constraint, then the world tightens —
        // the paper's C → C' transition.
        let mut sys = DcspSystem::new("1100".parse().unwrap(), Arc::new(AtLeastOnes::new(4, 2)));
        let report = Scenario::new()
            .shift_environment(Arc::new(AllOnes::new(4)))
            .repair(4)
            .run(&mut sys, &GreedyRepair::new(), &mut rng);
        assert!(report.ended_fit);
        assert_eq!(report.flips_spent, 2);
        assert_eq!(report.shocks, 0);
    }

    #[test]
    fn underbudgeted_repair_leaves_system_unfit() {
        let mut rng = seeded_rng(804);
        let mut sys = system(12);
        let report = Scenario::new()
            .shock(ShockKind::BitDamage { flips: 6 })
            .repair(2)
            .run(&mut sys, &GreedyRepair::new(), &mut rng);
        assert!(!report.ended_fit);
        assert_eq!(report.flips_spent, 2);
        let tri = report.first_triangle.expect("dipped");
        assert!(!tri.recovered);
    }

    #[test]
    fn multi_episode_losses_accumulate() {
        let mut rng_a = seeded_rng(805);
        let mut one = system(16);
        let single = Scenario::new()
            .shock(ShockKind::BitDamage { flips: 3 })
            .repair(16)
            .idle(2)
            .run(&mut one, &GreedyRepair::new(), &mut rng_a);

        let mut rng_b = seeded_rng(805);
        let mut two = system(16);
        let double = Scenario::new()
            .shock(ShockKind::BitDamage { flips: 3 })
            .repair(16)
            .idle(2)
            .shock(ShockKind::BitDamage { flips: 3 })
            .repair(16)
            .idle(2)
            .run(&mut two, &GreedyRepair::new(), &mut rng_b);
        assert!(double.total_loss > single.total_loss);
        assert_eq!(double.shocks, 2);
    }

    #[test]
    fn debug_formatting() {
        let scenario = Scenario::new()
            .shock(ShockKind::BitDamage { flips: 1 })
            .shift_environment(Arc::new(AllOnes::new(2)))
            .repair(3)
            .idle(1);
        let s = format!("{:?}", scenario.steps());
        assert!(s.contains("Shock"));
        assert!(s.contains("ShiftEnvironment"));
        assert!(s.contains("Repair(≤3)"));
        assert!(s.contains("Idle(1)"));
    }
}

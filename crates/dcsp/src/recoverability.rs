//! *k*-recoverability (the paper's §4.2).
//!
//! "If the system can fix its configuration for any perturbations of type D
//! within k-steps, we call the system k-recoverable."
//!
//! Two checkers are provided: an exhaustive one that enumerates *every*
//! perturbation the shock type can produce (exact, exponential in the
//! damage bound), and a Monte-Carlo one for larger systems.

use rand::Rng;

use resilience_core::{Config, Constraint, ShockKind};

use crate::repair::RepairStrategy;

/// Verdict of a recoverability analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoverabilityReport {
    /// The step bound `k` checked against.
    pub k: usize,
    /// Number of perturbations examined.
    pub cases: usize,
    /// Number of perturbations repaired within `k` steps.
    pub recovered_within_k: usize,
    /// Worst repair length observed (including failures counted at their
    /// step budget).
    pub worst_steps: usize,
    /// A witness perturbation that broke the bound, if any (damaged bits).
    pub counterexample: Option<Vec<usize>>,
}

impl RecoverabilityReport {
    /// Whether every examined perturbation recovered within `k`.
    pub fn is_k_recoverable(&self) -> bool {
        self.cases == self.recovered_within_k
    }

    /// Fraction of cases recovered within `k` (1.0 if no cases).
    pub fn recovery_rate(&self) -> f64 {
        if self.cases == 0 {
            1.0
        } else {
            self.recovered_within_k as f64 / self.cases as f64
        }
    }
}

/// Exhaustively check k-recoverability of `start` under `env` against all
/// damage patterns of 1..=`max_damage` bit flips, repairing with
/// `strategy` (one flip per step, the paper's repair model).
///
/// The paper's side condition is honored: "once the spacecraft has
/// component failures at time t, it will not have another component failure
/// until time t + k" — i.e. repair runs shock-free.
///
/// # Panics
///
/// Panics if `start` does not satisfy `env` (recoverability is defined
/// from a fit configuration).
pub fn is_k_recoverable_exhaustive<S: RepairStrategy + ?Sized>(
    start: &Config,
    env: &dyn Constraint,
    strategy: &S,
    max_damage: usize,
    k: usize,
) -> RecoverabilityReport {
    assert!(
        env.is_fit(start),
        "k-recoverability is checked from a fit configuration"
    );
    let n = start.len();
    let max_damage = max_damage.min(n);
    let mut report = RecoverabilityReport {
        k,
        cases: 0,
        recovered_within_k: 0,
        worst_steps: 0,
        counterexample: None,
    };
    let mut subset: Vec<usize> = Vec::new();
    enumerate_subsets(n, max_damage, 0, &mut subset, &mut |damage: &[usize]| {
        let mut state = start.clone();
        for &b in damage {
            state.flip(b);
        }
        let steps = run_repair(&mut state, env, strategy, k);
        report.cases += 1;
        match steps {
            Some(s) => {
                report.recovered_within_k += 1;
                report.worst_steps = report.worst_steps.max(s);
            }
            None => {
                report.worst_steps = report.worst_steps.max(k);
                if report.counterexample.is_none() {
                    report.counterexample = Some(damage.to_vec());
                }
            }
        }
    });
    report
}

/// Monte-Carlo recoverability estimate: strike `trials` shocks of `kind`
/// against `start` and repair each within `k` steps.
///
/// # Panics
///
/// Panics if `start` does not satisfy `env`.
pub fn sampled_recoverability<S: RepairStrategy + ?Sized, R: Rng + ?Sized>(
    start: &Config,
    env: &dyn Constraint,
    strategy: &S,
    kind: &ShockKind,
    k: usize,
    trials: usize,
    rng: &mut R,
) -> RecoverabilityReport {
    assert!(
        env.is_fit(start),
        "k-recoverability is checked from a fit configuration"
    );
    let mut report = RecoverabilityReport {
        k,
        cases: 0,
        recovered_within_k: 0,
        worst_steps: 0,
        counterexample: None,
    };
    for _ in 0..trials {
        let mut state = start.clone();
        let shock = kind.strike(&mut state, rng);
        report.cases += 1;
        match run_repair(&mut state, env, strategy, k) {
            Some(s) => {
                report.recovered_within_k += 1;
                report.worst_steps = report.worst_steps.max(s);
            }
            None => {
                report.worst_steps = report.worst_steps.max(k);
                if report.counterexample.is_none() {
                    report.counterexample = Some(shock.flipped_bits.clone());
                }
            }
        }
    }
    report
}

/// Run the repair loop for at most `k` flips; `Some(steps)` if fitness was
/// regained, `None` otherwise.
fn run_repair<S: RepairStrategy + ?Sized>(
    state: &mut Config,
    env: &dyn Constraint,
    strategy: &S,
    k: usize,
) -> Option<usize> {
    let mut steps = 0;
    while !env.is_fit(state) {
        if steps >= k {
            return None;
        }
        match strategy.propose_flip(state, env) {
            Some(bit) => {
                state.flip(bit);
                steps += 1;
            }
            None => return None,
        }
    }
    Some(steps)
}

/// Visit every non-empty subset of `{0..n}` of size ≤ `max_size`.
fn enumerate_subsets<F: FnMut(&[usize])>(
    n: usize,
    max_size: usize,
    start: usize,
    current: &mut Vec<usize>,
    visit: &mut F,
) {
    if !current.is_empty() {
        visit(current);
    }
    if current.len() == max_size {
        return;
    }
    for i in start..n {
        current.push(i);
        enumerate_subsets(n, max_size, i + 1, current, visit);
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::{BfsRepair, GreedyRepair};
    use resilience_core::{seeded_rng, AllOnes, AtLeastOnes, ExplicitSet};

    #[test]
    fn spacecraft_is_k_recoverable_for_k_damage() {
        // The paper's claim: fixing one component per step, the spacecraft
        // recovers from ≤ k failures within k steps.
        let n = 10;
        let start = Config::ones(n);
        let env = AllOnes::new(n);
        for k in 1..=3 {
            let report = is_k_recoverable_exhaustive(&start, &env, &GreedyRepair::new(), k, k);
            assert!(report.is_k_recoverable(), "k={k}: {report:?}");
            assert_eq!(report.worst_steps, k);
        }
    }

    #[test]
    fn insufficient_k_is_caught_with_counterexample() {
        let n = 8;
        let start = Config::ones(n);
        let env = AllOnes::new(n);
        // Damage up to 3 bits but only 2 repair steps allowed.
        let report = is_k_recoverable_exhaustive(&start, &env, &GreedyRepair::new(), 3, 2);
        assert!(!report.is_k_recoverable());
        let witness = report.counterexample.as_ref().expect("needs witness");
        assert_eq!(witness.len(), 3);
        // Exactly the 3-bit damages fail: C(8,1)+C(8,2) recover, C(8,3) fail.
        assert_eq!(report.cases, 8 + 28 + 56);
        assert_eq!(report.recovered_within_k, 8 + 28);
    }

    #[test]
    fn case_count_matches_binomial_sums() {
        let n = 6;
        let start = Config::ones(n);
        let env = AllOnes::new(n);
        let report = is_k_recoverable_exhaustive(&start, &env, &GreedyRepair::new(), 2, 2);
        assert_eq!(report.cases, 6 + 15);
    }

    #[test]
    fn tolerant_constraint_needs_fewer_steps() {
        // With an AtLeastOnes(8,6) environment, a 2-bit damage may still be
        // fit, or need at most... damage of 2 can drop ones to 6 (still
        // fit). So everything recovers in 0 steps.
        let start = Config::ones(8);
        let env = AtLeastOnes::new(8, 6);
        let report = is_k_recoverable_exhaustive(&start, &env, &GreedyRepair::new(), 2, 0);
        assert!(report.is_k_recoverable());
        assert_eq!(report.worst_steps, 0);
        // 3-bit damage needs exactly 1 repair step.
        let report = is_k_recoverable_exhaustive(&start, &env, &GreedyRepair::new(), 3, 1);
        assert!(report.is_k_recoverable());
        assert_eq!(report.worst_steps, 1);
    }

    #[test]
    fn strategy_quality_matters_for_recoverability() {
        // Fit set {1111, 0000}: from 1111, a 3-bit damage leaves one 1;
        // greedy (Hamming-violation) walks to 0000 in 1 step, BFS also 1.
        // But consider fit set {111111}: both need d steps.
        let env: ExplicitSet = ["1111".parse().unwrap(), "0000".parse().unwrap()]
            .into_iter()
            .collect();
        let start: Config = "1111".parse().unwrap();
        let report = is_k_recoverable_exhaustive(&start, &env, &BfsRepair::new(4), 3, 1);
        // Any ≤3 damage is within distance 1 of a fit config? damage 2 →
        // distance 2 from both members. So k=1 must fail for some case.
        assert!(!report.is_k_recoverable());
        let report2 = is_k_recoverable_exhaustive(&start, &env, &BfsRepair::new(4), 3, 2);
        assert!(report2.is_k_recoverable());
    }

    #[test]
    #[should_panic(expected = "fit configuration")]
    fn rejects_unfit_start() {
        let env = AllOnes::new(4);
        let start = Config::zeros(4);
        let _ = is_k_recoverable_exhaustive(&start, &env, &GreedyRepair::new(), 1, 1);
    }

    #[test]
    fn sampled_agrees_with_exhaustive_on_small_system() {
        let mut rng = seeded_rng(9);
        let n = 10;
        let start = Config::ones(n);
        let env = AllOnes::new(n);
        let report = sampled_recoverability(
            &start,
            &env,
            &GreedyRepair::new(),
            &ShockKind::BoundedBitDamage { max_flips: 3 },
            3,
            200,
            &mut rng,
        );
        assert!(report.is_k_recoverable());
        assert_eq!(report.cases, 200);
        assert!((report.recovery_rate() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn sampled_detects_failures_under_tight_budget() {
        let mut rng = seeded_rng(10);
        let start = Config::ones(12);
        let env = AllOnes::new(12);
        let report = sampled_recoverability(
            &start,
            &env,
            &GreedyRepair::new(),
            &ShockKind::BitDamage { flips: 5 },
            3,
            100,
            &mut rng,
        );
        assert_eq!(report.recovered_within_k, 0);
        assert!(report.counterexample.is_some());
        assert_eq!(report.recovery_rate(), 0.0);
    }

    #[test]
    fn empty_report_rate_is_one() {
        let r = RecoverabilityReport {
            k: 1,
            cases: 0,
            recovered_within_k: 0,
            worst_steps: 0,
            counterexample: None,
        };
        assert_eq!(r.recovery_rate(), 1.0);
        assert!(r.is_k_recoverable());
    }
}

//! *k*-recoverability (the paper's §4.2).
//!
//! "If the system can fix its configuration for any perturbations of type D
//! within k-steps, we call the system k-recoverable."
//!
//! Three checkers are provided:
//!
//! * [`is_k_recoverable_exhaustive`] — exact enumeration of *every*
//!   perturbation of at most `max_damage` bit flips, accelerated by a
//!   transposition cache over repair outcomes and allocation-free
//!   incremental damage enumeration (see the verification-engine section
//!   of DESIGN.md). Falls back to the plain sequential walk for
//!   non-deterministic strategies.
//! * [`is_k_recoverable_exhaustive_parallel`] — the same check fanned out
//!   over a [`RunContext`]'s thread budget: the damage-pattern space is
//!   split into contiguous *rank ranges* by combinatorial unranking, each
//!   range is verified independently, and the partial reports are folded
//!   in rank order — so the report (including the counterexample, which
//!   is always the lowest-ranked failure) is bit-identical for any thread
//!   count.
//! * [`sampled_recoverability`] — Monte-Carlo estimate for systems too
//!   large to enumerate.
//! * [`is_k_recoverable_symmetric`] — orbit-reduced verification for
//!   environments declaring variable automorphisms
//!   (`Constraint::symmetry_classes`): one repair walk per damage *orbit*
//!   instead of one per damage pattern, with counts multiplied by orbit
//!   size. Breaks the Σs·C(n,s)/ΣC(n,s) ceiling of the memoized engine
//!   because whole orbits cost a single check. Reports (including the
//!   counterexample, reconstructed as the preorder-minimal member of the
//!   lowest-ranked failing orbit) are bit-identical to the unreduced
//!   engine; see `tests/symmetry_equivalence.rs`.
//! * [`is_k_recoverable_auto`] — routes to the orbit-reduced checker when
//!   sound, else to the parallel exhaustive engine.
//!
//! The exhaustive engine additionally batch-probes leaf-level sibling
//! damage patterns (which differ from a shared base in exactly their
//! last flipped bit, so their transposition keys are word XORs of the
//! base key) 64-at-a-time ahead of the repair walks — cases resolved by
//! the batch probe never touch a `Config` at all.
//!
//! [`recoverability_reference`] retains the original clone-per-case
//! recursive checker as the oracle the optimized engine is proven
//! against (see `tests/verification_equivalence.rs`).

use std::cmp::Ordering;
use std::collections::HashMap;
use std::ops::Range;

use rand::Rng;

use resilience_core::{Config, Constraint, RunContext, ShockKind};

use crate::repair::RepairStrategy;
use crate::symmetry::{preorder_cmp, DamageOrbit, SymmetryClasses};

/// Verdict of a recoverability analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoverabilityReport {
    /// The step bound `k` checked against.
    pub k: usize,
    /// Number of perturbations examined.
    pub cases: usize,
    /// Number of perturbations repaired within `k` steps.
    pub recovered_within_k: usize,
    /// Worst repair length observed (including failures counted at their
    /// step budget).
    pub worst_steps: usize,
    /// A witness perturbation that broke the bound, if any (damaged bits).
    pub counterexample: Option<Vec<usize>>,
}

impl RecoverabilityReport {
    /// Whether every examined perturbation recovered within `k`.
    pub fn is_k_recoverable(&self) -> bool {
        self.cases == self.recovered_within_k
    }

    /// Fraction of cases recovered within `k` (1.0 if no cases).
    pub fn recovery_rate(&self) -> f64 {
        if self.cases == 0 {
            1.0
        } else {
            self.recovered_within_k as f64 / self.cases as f64
        }
    }

    fn empty(k: usize) -> Self {
        RecoverabilityReport {
            k,
            cases: 0,
            recovered_within_k: 0,
            worst_steps: 0,
            counterexample: None,
        }
    }
}

/// Exhaustively check k-recoverability of `start` under `env` against all
/// damage patterns of 1..=`max_damage` bit flips, repairing with
/// `strategy` (one flip per step, the paper's repair model).
///
/// The paper's side condition is honored: "once the spacecraft has
/// component failures at time t, it will not have another component failure
/// until time t + k" — i.e. repair runs shock-free.
///
/// For deterministic strategies (see
/// [`RepairStrategy::is_deterministic`]) the check runs on the memoized
/// engine; the report is identical to [`recoverability_reference`], just
/// faster. Non-deterministic strategies use the reference walk directly.
///
/// # Panics
///
/// Panics if `start` does not satisfy `env` (recoverability is defined
/// from a fit configuration).
pub fn is_k_recoverable_exhaustive<S: RepairStrategy + ?Sized>(
    start: &Config,
    env: &dyn Constraint,
    strategy: &S,
    max_damage: usize,
    k: usize,
) -> RecoverabilityReport {
    assert!(
        env.is_fit(start),
        "k-recoverability is checked from a fit configuration"
    );
    if !strategy.is_deterministic() {
        return reference_inner(start, env, strategy, max_damage, k);
    }
    let n = start.len();
    let counts = SubsetCounts::new(n, max_damage.min(n));
    let total = counts.total_nonempty();
    let partial = check_rank_range(0..total, start, env, strategy, k, &counts, true);
    finalize(k, total, partial)
}

/// [`is_k_recoverable_exhaustive`] on `ctx`'s thread budget: the rank
/// space of damage patterns is partitioned into contiguous chunks, chunks
/// are verified on worker threads, and the partial reports are folded in
/// rank order. The output is bit-identical to the sequential check for
/// every thread count (each case's verdict is exact, sums and maxima are
/// order-free, and the surviving counterexample is the lowest-ranked
/// failure under any partition).
///
/// Non-deterministic strategies cannot be checked out of order (their
/// proposals depend on global call order), so they fall back to the
/// sequential [`recoverability_reference`] walk regardless of `ctx`.
///
/// # Panics
///
/// Panics if `start` does not satisfy `env`.
pub fn is_k_recoverable_exhaustive_parallel<S: RepairStrategy + ?Sized>(
    start: &Config,
    env: &dyn Constraint,
    strategy: &S,
    max_damage: usize,
    k: usize,
    ctx: &RunContext,
) -> RecoverabilityReport {
    assert!(
        env.is_fit(start),
        "k-recoverability is checked from a fit configuration"
    );
    if !strategy.is_deterministic() {
        return reference_inner(start, env, strategy, max_damage, k);
    }
    let n = start.len();
    let counts = SubsetCounts::new(n, max_damage.min(n));
    let total = counts.total_nonempty();
    // Aim for several chunks per worker so uneven repair costs still
    // load-balance; chunk boundaries never affect the folded report.
    let chunk = (total / (ctx.threads() as u64 * 8)).clamp(1, total.max(1));
    let partial = ctx.run_ranges(
        total,
        chunk,
        |r| check_rank_range(r, start, env, strategy, k, &counts, true),
        Partial::default(),
        Partial::merge,
    );
    finalize(k, total, partial)
}

/// [`is_k_recoverable_exhaustive`] with telemetry: returns the report
/// plus the [`VerifyStats`] of the single full-range pass.
///
/// # Panics
///
/// Panics if `start` does not satisfy `env`, or if `strategy` is not
/// deterministic (stats are defined over the memoized engine only —
/// non-deterministic strategies never touch the cache).
pub fn is_k_recoverable_exhaustive_stats<S: RepairStrategy + ?Sized>(
    start: &Config,
    env: &dyn Constraint,
    strategy: &S,
    max_damage: usize,
    k: usize,
) -> (RecoverabilityReport, VerifyStats) {
    assert!(
        env.is_fit(start),
        "k-recoverability is checked from a fit configuration"
    );
    assert!(
        strategy.is_deterministic(),
        "verification stats require a deterministic strategy"
    );
    let n = start.len();
    let counts = SubsetCounts::new(n, max_damage.min(n));
    let total = counts.total_nonempty();
    // Stats paths run unbatched: batching reorders memo probes (all
    // sibling probes land before their walks), which can shift hit/miss
    // counts even though verdicts are order-independent. Keeping the
    // stats engine unbatched pins the counters the telemetry layer pins.
    let partial = check_rank_range(0..total, start, env, strategy, k, &counts, false);
    let stats = partial.stats;
    (finalize(k, total, partial), stats)
}

/// [`is_k_recoverable_exhaustive_parallel`] with telemetry. Unlike the
/// plain parallel checker — whose chunk boundaries adapt to
/// `ctx.threads()` for load balance — this variant partitions the rank
/// space into a **fixed** number of chunks independent of the thread
/// budget. The transposition cache is per-range, so cache hit/miss
/// counts are a pure function of the partition; pinning the partition
/// makes the returned [`VerifyStats`] (and any telemetry derived from
/// it) bit-identical for any `--threads` value, at a small
/// load-balancing cost. The report itself is bit-identical to both
/// other exhaustive checkers regardless.
///
/// # Panics
///
/// Panics if `start` does not satisfy `env`, or if `strategy` is not
/// deterministic.
pub fn is_k_recoverable_exhaustive_parallel_stats<S: RepairStrategy + ?Sized>(
    start: &Config,
    env: &dyn Constraint,
    strategy: &S,
    max_damage: usize,
    k: usize,
    ctx: &RunContext,
) -> (RecoverabilityReport, VerifyStats) {
    assert!(
        env.is_fit(start),
        "k-recoverability is checked from a fit configuration"
    );
    assert!(
        strategy.is_deterministic(),
        "verification stats require a deterministic strategy"
    );
    let n = start.len();
    let counts = SubsetCounts::new(n, max_damage.min(n));
    let total = counts.total_nonempty();
    // Fixed 64-way partition: thread-count-independent stats (see the
    // type-level docs). 64 chunks still load-balance well past the
    // machine sizes the harness targets.
    let chunk = (total / 64).clamp(1, total.max(1));
    let partial = ctx.run_ranges(
        total,
        chunk,
        |r| check_rank_range(r, start, env, strategy, k, &counts, false),
        Partial::default(),
        Partial::merge,
    );
    let stats = partial.stats;
    (finalize(k, total, partial), stats)
}

/// Orbit-reduced k-recoverability: when `env` declares variable
/// automorphisms ([`Constraint::symmetry_classes`]) that fix `start`,
/// damage patterns partition into orbits sharing one verdict, so the
/// checker walks **one representative per orbit** and multiplies by the
/// orbit size. For the paper's fully symmetric spacecraft instances the
/// Σ_s C(n,s) cases collapse to `max_damage` representative walks.
///
/// Returns `None` — make no claim, caller falls back to the exhaustive
/// engine — when the reduction is unsound: no declared symmetry, `start`
/// not constant on some class, or a strategy that is non-deterministic
/// or whose step count is not an orbit invariant
/// ([`RepairStrategy::is_symmetry_invariant`]).
///
/// The report is bit-identical to the unreduced engine for any thread
/// budget: counts and maxima aggregate orbit-wise, and the
/// counterexample is the preorder-minimal member of the lowest-ranked
/// failing orbit — exactly the witness the forward-enumerating reference
/// keeps.
///
/// # Panics
///
/// Panics if `start` does not satisfy `env`.
pub fn is_k_recoverable_symmetric<S: RepairStrategy + ?Sized>(
    start: &Config,
    env: &dyn Constraint,
    strategy: &S,
    max_damage: usize,
    k: usize,
    ctx: &RunContext,
) -> Option<RecoverabilityReport> {
    symmetric_inner(start, env, strategy, max_damage, k, ctx).map(|(report, _)| report)
}

/// [`is_k_recoverable_symmetric`] with telemetry: the returned
/// [`VerifyStats`] counts the representative walks' cache traffic plus
/// `orbit_hits` — the damage cases settled by orbit multiplication
/// without a walk of their own. Each orbit is checked in its own rank
/// range with its own transposition cache, so the stats are a pure
/// function of the orbit list and bit-identical for any thread budget.
///
/// # Panics
///
/// Panics if `start` does not satisfy `env`.
pub fn is_k_recoverable_symmetric_stats<S: RepairStrategy + ?Sized>(
    start: &Config,
    env: &dyn Constraint,
    strategy: &S,
    max_damage: usize,
    k: usize,
    ctx: &RunContext,
) -> Option<(RecoverabilityReport, VerifyStats)> {
    symmetric_inner(start, env, strategy, max_damage, k, ctx)
}

/// Route to the fastest sound checker: orbit-reduced when the constraint
/// declares symmetry the strategy respects, else the parallel exhaustive
/// engine. The report is identical either way.
///
/// # Panics
///
/// Panics if `start` does not satisfy `env`.
pub fn is_k_recoverable_auto<S: RepairStrategy + ?Sized>(
    start: &Config,
    env: &dyn Constraint,
    strategy: &S,
    max_damage: usize,
    k: usize,
    ctx: &RunContext,
) -> RecoverabilityReport {
    match is_k_recoverable_symmetric(start, env, strategy, max_damage, k, ctx) {
        Some(report) => report,
        None => is_k_recoverable_exhaustive_parallel(start, env, strategy, max_damage, k, ctx),
    }
}

fn symmetric_inner<S: RepairStrategy + ?Sized>(
    start: &Config,
    env: &dyn Constraint,
    strategy: &S,
    max_damage: usize,
    k: usize,
    ctx: &RunContext,
) -> Option<(RecoverabilityReport, VerifyStats)> {
    assert!(
        env.is_fit(start),
        "k-recoverability is checked from a fit configuration"
    );
    if !strategy.is_deterministic() || !strategy.is_symmetry_invariant() {
        return None;
    }
    let classes = SymmetryClasses::detect(env, start)?;
    let n = start.len();
    let max_damage = max_damage.min(n);
    let orbits = classes.damage_orbits(max_damage);
    // The orbit sizes must partition the unreduced case count exactly —
    // this is what licenses reporting `cases` without enumerating them.
    let counts = SubsetCounts::new(n, max_damage);
    let total = counts.total_nonempty();
    debug_assert_eq!(orbits.iter().map(|o| o.size).sum::<u64>(), total);
    // One orbit per rank range: per-orbit caches make the stats a pure
    // function of the orbit list (thread-invariant), and representative
    // walks are cheap enough that cross-orbit sharing buys nothing.
    let partial = ctx.run_ranges(
        orbits.len() as u64,
        1,
        |r| check_orbit_range(r, &orbits, start, env, strategy, k),
        OrbitPartial::default(),
        OrbitPartial::merge,
    );
    debug_assert_eq!(partial.cases, total);
    let stats = partial.stats;
    let report = RecoverabilityReport {
        k,
        cases: usize::try_from(total).expect("case count fits usize"),
        recovered_within_k: usize::try_from(partial.recovered).expect("count fits usize"),
        worst_steps: partial.worst_steps,
        counterexample: partial.counterexample,
    };
    Some((report, stats))
}

/// Verify the orbit representatives with indices in `range`.
fn check_orbit_range<S: RepairStrategy + ?Sized>(
    range: Range<u64>,
    orbits: &[DamageOrbit],
    start: &Config,
    env: &dyn Constraint,
    strategy: &S,
    k: usize,
) -> OrbitPartial {
    let mut partial = OrbitPartial::default();
    if range.is_empty() {
        return partial;
    }
    let mut memo = Memo::for_len(start.len());
    let mut damaged = start.clone();
    let mut scratch = start.clone();
    let mut path: Vec<MemoKey> = Vec::with_capacity(k + 2);
    for idx in range {
        let orbit = &orbits[usize::try_from(idx).expect("orbit index fits usize")];
        for &b in &orbit.representative {
            damaged.flip(b);
        }
        let verdict = eval_case(
            &damaged,
            env,
            strategy,
            k,
            &mut memo,
            &mut scratch,
            &mut path,
            &mut partial.stats,
        );
        for &b in &orbit.representative {
            damaged.flip(b);
        }
        partial.cases += orbit.size;
        partial.stats.orbit_hits += orbit.size - 1;
        match verdict {
            Some(steps) => {
                partial.recovered += orbit.size;
                partial.worst_steps = partial.worst_steps.max(steps);
            }
            None => {
                partial.worst_steps = partial.worst_steps.max(k);
                partial.counterexample = merge_counterexamples(
                    partial.counterexample.take(),
                    Some(orbit.representative.clone()),
                );
            }
        }
    }
    partial
}

/// Keep the preorder-minimal of two candidate counterexamples.
fn merge_counterexamples(a: Option<Vec<usize>>, b: Option<Vec<usize>>) -> Option<Vec<usize>> {
    match (a, b) {
        (Some(a), Some(b)) => Some(if preorder_cmp(&a, &b) == Ordering::Greater {
            b
        } else {
            a
        }),
        (a, None) => a,
        (None, b) => b,
    }
}

/// Partial report of a contiguous range of damage orbits.
#[derive(Debug, Default)]
struct OrbitPartial {
    cases: u64,
    recovered: u64,
    worst_steps: usize,
    /// Preorder-minimal failing representative in this range, if any.
    counterexample: Option<Vec<usize>>,
    stats: VerifyStats,
}

impl OrbitPartial {
    /// Fold `next` into `acc`. Orbit enumeration order is not rank
    /// order, so the counterexample merge compares by subset preorder
    /// rather than keeping the first — the fold stays associative and
    /// thread-invariant either way.
    fn merge(mut acc: OrbitPartial, next: OrbitPartial) -> OrbitPartial {
        acc.cases += next.cases;
        acc.recovered += next.recovered;
        acc.worst_steps = acc.worst_steps.max(next.worst_steps);
        acc.counterexample = merge_counterexamples(acc.counterexample, next.counterexample);
        acc.stats = acc.stats.merge(next.stats);
        acc
    }
}

/// The original unmemoized sequential checker, retained verbatim as the
/// reference oracle for the optimized engine: recursive subset
/// enumeration, one `Config` clone per case, one full repair walk per
/// case. Reports are identical to [`is_k_recoverable_exhaustive`]; only
/// the running time differs.
///
/// # Panics
///
/// Panics if `start` does not satisfy `env`.
pub fn recoverability_reference<S: RepairStrategy + ?Sized>(
    start: &Config,
    env: &dyn Constraint,
    strategy: &S,
    max_damage: usize,
    k: usize,
) -> RecoverabilityReport {
    assert!(
        env.is_fit(start),
        "k-recoverability is checked from a fit configuration"
    );
    reference_inner(start, env, strategy, max_damage, k)
}

fn reference_inner<S: RepairStrategy + ?Sized>(
    start: &Config,
    env: &dyn Constraint,
    strategy: &S,
    max_damage: usize,
    k: usize,
) -> RecoverabilityReport {
    let n = start.len();
    let max_damage = max_damage.min(n);
    let mut report = RecoverabilityReport::empty(k);
    let mut subset: Vec<usize> = Vec::new();
    enumerate_subsets(n, max_damage, 0, &mut subset, &mut |damage: &[usize]| {
        let mut state = start.clone();
        for &b in damage {
            state.flip(b);
        }
        let steps = run_repair(&mut state, env, strategy, k);
        report.cases += 1;
        match steps {
            Some(s) => {
                report.recovered_within_k += 1;
                report.worst_steps = report.worst_steps.max(s);
            }
            None => {
                report.worst_steps = report.worst_steps.max(k);
                if report.counterexample.is_none() {
                    report.counterexample = Some(damage.to_vec());
                }
            }
        }
    });
    report
}

/// Monte-Carlo recoverability estimate: strike `trials` shocks of `kind`
/// against `start` and repair each within `k` steps.
///
/// # Panics
///
/// Panics if `start` does not satisfy `env`.
pub fn sampled_recoverability<S: RepairStrategy + ?Sized, R: Rng + ?Sized>(
    start: &Config,
    env: &dyn Constraint,
    strategy: &S,
    kind: &ShockKind,
    k: usize,
    trials: usize,
    rng: &mut R,
) -> RecoverabilityReport {
    assert!(
        env.is_fit(start),
        "k-recoverability is checked from a fit configuration"
    );
    let mut report = RecoverabilityReport::empty(k);
    for _ in 0..trials {
        let mut state = start.clone();
        let shock = kind.strike(&mut state, rng);
        report.cases += 1;
        match run_repair(&mut state, env, strategy, k) {
            Some(s) => {
                report.recovered_within_k += 1;
                report.worst_steps = report.worst_steps.max(s);
            }
            None => {
                report.worst_steps = report.worst_steps.max(k);
                if report.counterexample.is_none() {
                    report.counterexample = Some(shock.flipped_bits.clone());
                }
            }
        }
    }
    report
}

/// Run the repair loop for at most `k` flips; `Some(steps)` if fitness was
/// regained, `None` otherwise.
fn run_repair<S: RepairStrategy + ?Sized>(
    state: &mut Config,
    env: &dyn Constraint,
    strategy: &S,
    k: usize,
) -> Option<usize> {
    let mut steps = 0;
    while !env.is_fit(state) {
        if steps >= k {
            return None;
        }
        match strategy.propose_flip(state, env) {
            Some(bit) => {
                state.flip(bit);
                steps += 1;
            }
            None => return None,
        }
    }
    Some(steps)
}

/// Visit every non-empty subset of `{0..n}` of size ≤ `max_size`, in
/// DFS preorder (each subset before its extensions, extensions in
/// ascending next-element order). This order defines the *rank* of a
/// damage pattern used by the unranking engine below.
fn enumerate_subsets<F: FnMut(&[usize])>(
    n: usize,
    max_size: usize,
    start: usize,
    current: &mut Vec<usize>,
    visit: &mut F,
) {
    if !current.is_empty() {
        visit(current);
    }
    if current.len() == max_size {
        return;
    }
    for i in start..n {
        current.push(i);
        enumerate_subsets(n, max_size, i + 1, current, visit);
        current.pop();
    }
}

// ---------------------------------------------------------------------------
// The verification engine: combinatorial unranking + transposition cache.
// ---------------------------------------------------------------------------

/// Sentinel for "repair distance exceeds `k` (or the strategy is stuck)".
const UNRECOVERABLE: u32 = u32::MAX;

/// Configurations this small get a direct-mapped `Vec<u32>` transposition
/// table (2^n entries); larger ones use a `HashMap`.
const DIRECT_TABLE_BITS: usize = 20;

/// Subset-count table: `upto[m][c]` = number of subsets of size ≤ `c`
/// drawn from `m` elements (including the empty subset). This is exactly
/// the size of the enumeration subtree rooted at a node with `m`
/// remaining candidate elements and `c` remaining size budget, which is
/// what unranking needs.
struct SubsetCounts {
    n: usize,
    max_size: usize,
    /// `upto[m * (max_size + 1) + c]`, m in `0..=n`, c in `0..=max_size`.
    upto: Vec<u64>,
}

impl SubsetCounts {
    fn new(n: usize, max_size: usize) -> Self {
        let width = max_size + 1;
        let mut upto = vec![0u64; (n + 1) * width];
        for m in 0..=n {
            upto[m * width] = 1; // only the empty subset at budget 0
        }
        for slot in upto.iter_mut().take(width) {
            *slot = 1; // no elements left: only the empty subset
        }
        for m in 1..=n {
            for c in 1..=max_size {
                // Exclude the first remaining element, or include it.
                let excl = upto[(m - 1) * width + c];
                let incl = upto[(m - 1) * width + c - 1];
                upto[m * width + c] = excl.saturating_add(incl);
            }
        }
        let counts = SubsetCounts { n, max_size, upto };
        assert!(
            counts.upto(n, max_size) < u64::MAX,
            "damage-pattern space exceeds the u64 rank space"
        );
        counts
    }

    /// Subsets of size ≤ `c` from `m` elements, including the empty one.
    fn upto(&self, m: usize, c: usize) -> u64 {
        self.upto[m * (self.max_size + 1) + c]
    }

    /// Number of non-empty subsets of `{0..n}` of size ≤ `max_size` —
    /// the total case count of the exhaustive check.
    fn total_nonempty(&self) -> u64 {
        self.upto(self.n, self.max_size) - 1
    }

    /// Size of the enumeration subtree rooted at a node whose last chosen
    /// element is `j` at depth `depth` (the node itself plus all of its
    /// extensions).
    fn subtree(&self, j: usize, depth: usize) -> u64 {
        self.upto(self.n - 1 - j, self.max_size - depth)
    }

    /// Materialize the subset of preorder rank `rank` (0-based over
    /// non-empty subsets) into `subset`, flipping each chosen bit into
    /// `damaged` as it is appended.
    fn unrank_into(&self, rank: u64, subset: &mut Vec<usize>, damaged: &mut Config) {
        debug_assert!(rank < self.total_nonempty());
        subset.clear();
        let mut r = rank;
        let mut start = 0;
        loop {
            let depth = subset.len();
            debug_assert!(depth < self.max_size);
            for j in start.. {
                debug_assert!(j < self.n);
                let t = self.subtree(j, depth + 1);
                if r < t {
                    subset.push(j);
                    damaged.flip(j);
                    if r == 0 {
                        return;
                    }
                    r -= 1; // skip the node itself; descend into its extensions
                    start = j + 1;
                    break;
                }
                r -= t;
            }
        }
    }

    /// Step `subset` to its preorder predecessor, mirroring the flips into
    /// `damaged`. The caller guarantees the subset has rank ≥ 1.
    fn predecessor(&self, subset: &mut Vec<usize>, damaged: &mut Config) {
        let last = *subset.last().expect("predecessor of a non-empty subset");
        let prev_plus_one = subset.len().checked_sub(2).map_or(0, |i| subset[i] + 1);
        if last == prev_plus_one {
            // First child of its parent: the predecessor is the parent.
            subset.pop();
            damaged.flip(last);
            debug_assert!(!subset.is_empty(), "rank 0 has no predecessor");
        } else {
            // Last (deepest, rightmost) descendant of the previous sibling.
            subset.pop();
            damaged.flip(last);
            subset.push(last - 1);
            damaged.flip(last - 1);
            if subset.len() < self.max_size {
                subset.push(self.n - 1);
                damaged.flip(self.n - 1);
            }
        }
    }
}

/// Key into the transposition cache: configurations up to 64 bits pack
/// losslessly into a word; longer ones are keyed by the full `Config`.
enum MemoKey {
    Packed(u64),
    Wide(Config),
}

/// Per-range transposition cache memoizing, for each damaged
/// configuration, the exact strategy-path repair distance when it is
/// ≤ `k`, or [`UNRECOVERABLE`] when the walk provably exceeds the budget
/// (or the strategy is stuck). Exactness is what makes the engine's
/// verdicts independent of evaluation order and thread schedule.
enum Memo {
    /// Direct-mapped table for ≤ [`DIRECT_TABLE_BITS`]-bit configurations:
    /// entry 0 = unset, 1 = unrecoverable, `d + 2` = distance `d`.
    Table(Vec<u32>),
    /// Word-keyed map for ≤ 64-bit configurations.
    Small(HashMap<u64, u32>),
    /// Full-configuration keys beyond 64 bits.
    Big(HashMap<Config, u32>),
}

impl Memo {
    fn for_len(n: usize) -> Self {
        if n <= DIRECT_TABLE_BITS {
            Memo::Table(vec![0; 1usize << n])
        } else if n <= 64 {
            Memo::Small(HashMap::new())
        } else {
            Memo::Big(HashMap::new())
        }
    }

    fn key(&self, cfg: &Config) -> MemoKey {
        match self {
            Memo::Table(_) | Memo::Small(_) => MemoKey::Packed(cfg.to_u64()),
            Memo::Big(_) => MemoKey::Wide(cfg.clone()),
        }
    }

    fn get(&self, key: &MemoKey) -> Option<u32> {
        match (self, key) {
            (Memo::Table(t), MemoKey::Packed(w)) => match t[*w as usize] {
                0 => None,
                1 => Some(UNRECOVERABLE),
                v => Some(v - 2),
            },
            (Memo::Small(m), MemoKey::Packed(w)) => m.get(w).copied(),
            (Memo::Big(m), MemoKey::Wide(c)) => m.get(c).copied(),
            _ => unreachable!("memo key variant matches memo variant"),
        }
    }

    fn insert(&mut self, key: MemoKey, value: u32) {
        match (self, key) {
            (Memo::Table(t), MemoKey::Packed(w)) => {
                t[w as usize] = if value == UNRECOVERABLE { 1 } else { value + 2 };
            }
            (Memo::Small(m), MemoKey::Packed(w)) => {
                m.insert(w, value);
            }
            (Memo::Big(m), MemoKey::Wide(c)) => {
                m.insert(c, value);
            }
            _ => unreachable!("memo key variant matches memo variant"),
        }
    }
}

/// Telemetry counters of one verification run: how hard the
/// transposition cache worked and how many states the repair walks
/// visited.
///
/// Stats are accumulated per rank range and folded in rank order, so
/// for a *fixed* range partition they are a pure function of the
/// problem — the `_stats` entry points use a thread-count-independent
/// partition precisely so these counters are bit-identical for any
/// thread budget (unlike the adaptive partition of
/// [`is_k_recoverable_exhaustive_parallel`], whose chunk boundaries —
/// and therefore per-chunk cache contents — depend on `ctx.threads()`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct VerifyStats {
    /// Memo probes that found a finished entry (initial probe or a
    /// repair walk landing on a cached state).
    pub cache_hits: u64,
    /// Initial memo probes that missed and forced a repair walk.
    pub cache_misses: u64,
    /// Distinct states assigned a distance by repair walks (memo
    /// insertions).
    pub states_explored: u64,
    /// Damage cases settled by orbit multiplication in the
    /// symmetry-reduced checker — cases counted in the report without a
    /// repair walk of their own. Zero for the exhaustive engines.
    pub orbit_hits: u64,
}

impl VerifyStats {
    /// Componentwise sum.
    pub fn merge(mut self, other: VerifyStats) -> VerifyStats {
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.states_explored += other.states_explored;
        self.orbit_hits += other.orbit_hits;
        self
    }

    /// Cache hit rate in `[0, 1]` (0 when no probes were made).
    pub fn hit_rate(&self) -> f64 {
        let probes = self.cache_hits + self.cache_misses;
        if probes == 0 {
            0.0
        } else {
            self.cache_hits as f64 / probes as f64
        }
    }
}

/// Partial report of one contiguous rank range.
#[derive(Debug, Default)]
struct Partial {
    recovered: u64,
    worst_steps: usize,
    any_failure: bool,
    /// Lowest-ranked failing damage pattern in this range, if any.
    counterexample: Option<Vec<usize>>,
    /// Cache/exploration counters for this range.
    stats: VerifyStats,
}

impl Partial {
    /// Fold `next` (a later rank range) into `acc`.
    fn merge(mut acc: Partial, next: Partial) -> Partial {
        acc.recovered += next.recovered;
        acc.worst_steps = acc.worst_steps.max(next.worst_steps);
        acc.any_failure |= next.any_failure;
        if acc.counterexample.is_none() {
            acc.counterexample = next.counterexample;
        }
        acc.stats = acc.stats.merge(next.stats);
        acc
    }
}

fn finalize(k: usize, total: u64, partial: Partial) -> RecoverabilityReport {
    RecoverabilityReport {
        k,
        cases: usize::try_from(total).expect("case count fits usize"),
        recovered_within_k: usize::try_from(partial.recovered).expect("count fits usize"),
        worst_steps: partial.worst_steps,
        counterexample: partial.counterexample,
    }
}

/// Verify every damage pattern with rank in `range`.
///
/// Cases are *evaluated* highest rank first — preorder places a pattern
/// before its extensions, so walking backwards means a repair trajectory
/// usually lands on an already-cached sub-pattern after a single step —
/// but the *report* is independent of evaluation order: counts and maxima
/// are order-free, and the counterexample kept is the lowest-ranked
/// failure (the last one seen when iterating backwards), matching the
/// forward-enumerating reference checker exactly.
///
/// With `batched` set (and a word-packed memo, i.e. ≤ 64 variables), runs
/// of *leaf siblings* — maximum-size patterns sharing every element but
/// the last, which occupy consecutive descending ranks — are probed
/// against the cache as a block of single-bit XORs of one shared base
/// word before any repair walk runs. Probed hits settle without touching
/// a `Config`; only the misses pay `eval_case`. Batching reorders memo
/// probes relative to the scalar schedule, which can shift hit/miss
/// *counters* (never verdicts — cached distances are exact), so the
/// `_stats` entry points pass `batched = false`.
fn check_rank_range<S: RepairStrategy + ?Sized>(
    range: Range<u64>,
    start: &Config,
    env: &dyn Constraint,
    strategy: &S,
    k: usize,
    counts: &SubsetCounts,
    batched: bool,
) -> Partial {
    let mut partial = Partial::default();
    if range.is_empty() {
        return partial;
    }
    let mut memo = Memo::for_len(start.len());
    let batched = batched && matches!(memo, Memo::Table(_) | Memo::Small(_));
    let mut subset: Vec<usize> = Vec::with_capacity(counts.max_size);
    let mut damaged = start.clone();
    let mut scratch = start.clone();
    let mut path: Vec<MemoKey> = Vec::with_capacity(k + 2);
    let mut probe_buf: Vec<Option<u32>> = Vec::with_capacity(64);
    counts.unrank_into(range.end - 1, &mut subset, &mut damaged);
    let mut rank = range.end - 1;
    loop {
        if batched && subset.len() == counts.max_size {
            // Leaf-sibling batch: the current pattern's lower siblings
            // (same prefix, smaller last element) sit at the next
            // descending ranks, and all their memo keys are single-bit
            // XORs of the shared base word. Probe the whole run first.
            let last = *subset.last().expect("leaf subset is non-empty");
            let floor = subset.len().checked_sub(2).map_or(0, |i| subset[i] + 1);
            let lanes = usize::try_from(((last - floor + 1) as u64).min(rank - range.start + 1))
                .expect("lane count fits usize");
            let base = damaged.to_u64() ^ (1u64 << last);
            probe_buf.clear();
            probe_buf.extend(
                (0..lanes).map(|i| memo.get(&MemoKey::Packed(base ^ (1u64 << (last - i))))),
            );
            for (i, probed) in probe_buf.drain(..).enumerate() {
                let j = last - i;
                if i > 0 {
                    // Step to the next-lower sibling in place.
                    damaged.flip(j + 1);
                    damaged.flip(j);
                    *subset.last_mut().expect("leaf subset is non-empty") = j;
                }
                let verdict = match probed {
                    Some(v) => {
                        partial.stats.cache_hits += 1;
                        (v != UNRECOVERABLE).then_some(v as usize)
                    }
                    // A stale miss re-probes inside `eval_case`, so a lane
                    // cached by an earlier lane's walk still hits.
                    None => eval_case(
                        &damaged,
                        env,
                        strategy,
                        k,
                        &mut memo,
                        &mut scratch,
                        &mut path,
                        &mut partial.stats,
                    ),
                };
                record_verdict(&mut partial, verdict, &subset, k);
            }
            rank -= (lanes - 1) as u64;
        } else {
            let verdict = eval_case(
                &damaged,
                env,
                strategy,
                k,
                &mut memo,
                &mut scratch,
                &mut path,
                &mut partial.stats,
            );
            record_verdict(&mut partial, verdict, &subset, k);
        }
        if rank == range.start {
            break;
        }
        counts.predecessor(&mut subset, &mut damaged);
        rank -= 1;
    }
    partial
}

/// Fold one case's verdict into the running partial report. Cases are
/// visited highest rank first, so overwriting the counterexample on every
/// failure leaves the lowest-ranked one — the witness the
/// forward-enumerating reference keeps.
fn record_verdict(partial: &mut Partial, verdict: Option<usize>, subset: &[usize], k: usize) {
    match verdict {
        Some(steps) => {
            partial.recovered += 1;
            partial.worst_steps = partial.worst_steps.max(steps);
        }
        None => {
            partial.worst_steps = partial.worst_steps.max(k);
            partial.any_failure = true;
            partial.counterexample = Some(subset.to_vec());
        }
    }
}

/// Repair-walk one damaged configuration through the transposition cache.
/// Equivalent to `run_repair` on a clone of `damaged` for a deterministic
/// strategy: the walk is the strategy's unique trajectory, so every state
/// on it has an exact distance-to-fit that can be cached and reused by
/// later cases passing through the same states.
// The trailing four parameters are the per-range scratch bundle
// (transposition cache, reusable buffers, probe counters); bundling them
// into a struct would only move the argument count into field plumbing.
#[allow(clippy::too_many_arguments)]
fn eval_case<S: RepairStrategy + ?Sized>(
    damaged: &Config,
    env: &dyn Constraint,
    strategy: &S,
    k: usize,
    memo: &mut Memo,
    scratch: &mut Config,
    path: &mut Vec<MemoKey>,
    stats: &mut VerifyStats,
) -> Option<usize> {
    let start_key = memo.key(damaged);
    if let Some(v) = memo.get(&start_key) {
        stats.cache_hits += 1;
        return (v != UNRECOVERABLE).then_some(v as usize);
    }
    stats.cache_misses += 1;
    scratch.clone_from(damaged);
    path.clear();
    path.push(start_key);
    let mut steps = 0usize;
    enum Outcome {
        Fit(usize),
        Stuck,
        Budget,
        /// Hit a cached state after `.0` steps with cached value `.1`.
        Known(usize, u32),
    }
    let outcome = loop {
        if env.is_fit(scratch) {
            break Outcome::Fit(steps);
        }
        if steps >= k {
            break Outcome::Budget;
        }
        match strategy.propose_flip(scratch, env) {
            Some(bit) => {
                scratch.flip(bit);
                steps += 1;
                let key = memo.key(scratch);
                if let Some(v) = memo.get(&key) {
                    stats.cache_hits += 1;
                    break Outcome::Known(steps, v);
                }
                path.push(key);
            }
            None => break Outcome::Stuck,
        }
    };
    match outcome {
        Outcome::Fit(s) => {
            // path holds states at distances s, s-1, …, 0 — all ≤ k.
            stats.states_explored += path.len() as u64;
            for (j, key) in path.drain(..).enumerate() {
                memo.insert(key, (s - j) as u32);
            }
            Some(s)
        }
        Outcome::Stuck => {
            // The strategy's trajectory from every path state dead-ends.
            stats.states_explored += path.len() as u64;
            for key in path.drain(..) {
                memo.insert(key, UNRECOVERABLE);
            }
            None
        }
        Outcome::Budget => {
            // Walked k steps without reaching fitness: only the origin is
            // proven over budget (an intermediate state at index j has
            // only walked k - j steps).
            stats.states_explored += 1;
            let origin = path.drain(..).next().expect("path holds the origin");
            memo.insert(origin, UNRECOVERABLE);
            None
        }
        Outcome::Known(s, v) => {
            stats.states_explored += path.len() as u64;
            if v == UNRECOVERABLE {
                // Cached distance exceeds k, so every state upstream of it
                // on this walk exceeds k too.
                for key in path.drain(..) {
                    memo.insert(key, UNRECOVERABLE);
                }
                None
            } else {
                // Exact distances: path state j sits s - j steps before a
                // state at distance v.
                let total = s + v as usize;
                for (j, key) in path.drain(..).enumerate() {
                    let dist = total - j;
                    memo.insert(
                        key,
                        if dist <= k {
                            dist as u32
                        } else {
                            UNRECOVERABLE
                        },
                    );
                }
                (total <= k).then_some(total)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::{AnnealRepair, BfsRepair, GreedyRepair};
    use resilience_core::{seeded_rng, AllOnes, AtLeastOnes, ExplicitSet};

    #[test]
    fn spacecraft_is_k_recoverable_for_k_damage() {
        // The paper's claim: fixing one component per step, the spacecraft
        // recovers from ≤ k failures within k steps.
        let n = 10;
        let start = Config::ones(n);
        let env = AllOnes::new(n);
        for k in 1..=3 {
            let report = is_k_recoverable_exhaustive(&start, &env, &GreedyRepair::new(), k, k);
            assert!(report.is_k_recoverable(), "k={k}: {report:?}");
            assert_eq!(report.worst_steps, k);
        }
    }

    #[test]
    fn insufficient_k_is_caught_with_counterexample() {
        let n = 8;
        let start = Config::ones(n);
        let env = AllOnes::new(n);
        // Damage up to 3 bits but only 2 repair steps allowed.
        let report = is_k_recoverable_exhaustive(&start, &env, &GreedyRepair::new(), 3, 2);
        assert!(!report.is_k_recoverable());
        let witness = report.counterexample.as_ref().expect("needs witness");
        assert_eq!(witness.len(), 3);
        // Exactly the 3-bit damages fail: C(8,1)+C(8,2) recover, C(8,3) fail.
        assert_eq!(report.cases, 8 + 28 + 56);
        assert_eq!(report.recovered_within_k, 8 + 28);
    }

    #[test]
    fn case_count_matches_binomial_sums() {
        let n = 6;
        let start = Config::ones(n);
        let env = AllOnes::new(n);
        let report = is_k_recoverable_exhaustive(&start, &env, &GreedyRepair::new(), 2, 2);
        assert_eq!(report.cases, 6 + 15);
    }

    #[test]
    fn tolerant_constraint_needs_fewer_steps() {
        // With an AtLeastOnes(8,6) environment, a 2-bit damage may still be
        // fit, or need at most... damage of 2 can drop ones to 6 (still
        // fit). So everything recovers in 0 steps.
        let start = Config::ones(8);
        let env = AtLeastOnes::new(8, 6);
        let report = is_k_recoverable_exhaustive(&start, &env, &GreedyRepair::new(), 2, 0);
        assert!(report.is_k_recoverable());
        assert_eq!(report.worst_steps, 0);
        // 3-bit damage needs exactly 1 repair step.
        let report = is_k_recoverable_exhaustive(&start, &env, &GreedyRepair::new(), 3, 1);
        assert!(report.is_k_recoverable());
        assert_eq!(report.worst_steps, 1);
    }

    #[test]
    fn strategy_quality_matters_for_recoverability() {
        // Fit set {1111, 0000}: from 1111, a 3-bit damage leaves one 1;
        // greedy (Hamming-violation) walks to 0000 in 1 step, BFS also 1.
        // But consider fit set {111111}: both need d steps.
        let env: ExplicitSet = ["1111".parse().unwrap(), "0000".parse().unwrap()]
            .into_iter()
            .collect();
        let start: Config = "1111".parse().unwrap();
        let report = is_k_recoverable_exhaustive(&start, &env, &BfsRepair::new(4), 3, 1);
        // Any ≤3 damage is within distance 1 of a fit config? damage 2 →
        // distance 2 from both members. So k=1 must fail for some case.
        assert!(!report.is_k_recoverable());
        let report2 = is_k_recoverable_exhaustive(&start, &env, &BfsRepair::new(4), 3, 2);
        assert!(report2.is_k_recoverable());
    }

    #[test]
    #[should_panic(expected = "fit configuration")]
    fn rejects_unfit_start() {
        let env = AllOnes::new(4);
        let start = Config::zeros(4);
        let _ = is_k_recoverable_exhaustive(&start, &env, &GreedyRepair::new(), 1, 1);
    }

    #[test]
    #[should_panic(expected = "fit configuration")]
    fn parallel_rejects_unfit_start() {
        let env = AllOnes::new(4);
        let start = Config::zeros(4);
        let _ = is_k_recoverable_exhaustive_parallel(
            &start,
            &env,
            &GreedyRepair::new(),
            1,
            1,
            &RunContext::new(0),
        );
    }

    #[test]
    fn unranking_matches_recursive_enumeration_order() {
        for (n, d) in [(1usize, 1usize), (3, 2), (5, 3), (6, 6), (7, 2), (8, 4)] {
            let mut expected: Vec<Vec<usize>> = Vec::new();
            let mut cur = Vec::new();
            enumerate_subsets(n, d, 0, &mut cur, &mut |s: &[usize]| {
                expected.push(s.to_vec());
            });
            let counts = SubsetCounts::new(n, d);
            assert_eq!(
                counts.total_nonempty(),
                expected.len() as u64,
                "n={n} d={d}"
            );
            // Every rank unranks to the recursive enumeration's subset.
            let base = Config::zeros(n);
            for (rank, want) in expected.iter().enumerate() {
                let mut subset = Vec::new();
                let mut damaged = base.clone();
                counts.unrank_into(rank as u64, &mut subset, &mut damaged);
                assert_eq!(&subset, want, "n={n} d={d} rank={rank}");
                assert_eq!(damaged.ones_indices(), *want, "damage bits track subset");
            }
            // Predecessor walks the whole order backwards.
            let mut subset = Vec::new();
            let mut damaged = base.clone();
            counts.unrank_into(counts.total_nonempty() - 1, &mut subset, &mut damaged);
            for rank in (0..expected.len() - 1).rev() {
                counts.predecessor(&mut subset, &mut damaged);
                assert_eq!(subset, expected[rank], "n={n} d={d} rank={rank}");
                assert_eq!(damaged.ones_indices(), expected[rank]);
            }
        }
    }

    #[test]
    fn engine_matches_reference_on_varied_environments() {
        let greedy = GreedyRepair::new();
        let bfs = BfsRepair::new(5);
        let strategies: [&dyn RepairStrategy; 2] = [&greedy, &bfs];
        let explicit: ExplicitSet = ["11111111".parse().unwrap(), "00000000".parse().unwrap()]
            .into_iter()
            .collect();
        let envs: [&dyn Constraint; 3] = [&AllOnes::new(8), &AtLeastOnes::new(8, 6), &explicit];
        let start = Config::ones(8);
        for strategy in strategies {
            for env in envs {
                for d in 0..=4 {
                    for k in 0..=4 {
                        let fast = is_k_recoverable_exhaustive(&start, env, strategy, d, k);
                        let slow = recoverability_reference(&start, env, strategy, d, k);
                        assert_eq!(fast, slow, "d={d} k={k}");
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_is_thread_invariant_and_matches_serial() {
        let start = Config::ones(12);
        let env = AllOnes::new(12);
        let serial = is_k_recoverable_exhaustive(&start, &env, &GreedyRepair::new(), 3, 2);
        for threads in [1usize, 2, 4, 7] {
            let ctx = RunContext::with_threads(0, threads);
            let par = is_k_recoverable_exhaustive_parallel(
                &start,
                &env,
                &GreedyRepair::new(),
                3,
                2,
                &ctx,
            );
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn non_deterministic_strategy_falls_back_to_reference() {
        // AnnealRepair's proposals depend on its internal call counter, so
        // the engine must route it through the sequential reference walk —
        // both entry points, same call order, same answer shape.
        let start = Config::ones(6);
        let env = AllOnes::new(6);
        let direct = is_k_recoverable_exhaustive(&start, &env, &AnnealRepair::new(0.5, 7), 2, 6);
        let reference = recoverability_reference(&start, &env, &AnnealRepair::new(0.5, 7), 2, 6);
        assert_eq!(direct, reference);
        let parallel = is_k_recoverable_exhaustive_parallel(
            &start,
            &env,
            &AnnealRepair::new(0.5, 7),
            2,
            6,
            &RunContext::with_threads(0, 4),
        );
        assert_eq!(parallel, reference);
    }

    #[test]
    fn engine_handles_wide_configs_beyond_direct_table() {
        // 70 bits exceeds both the direct table and the packed-u64 keys.
        let n = 70;
        let start = Config::ones(n);
        let env = AllOnes::new(n);
        let fast = is_k_recoverable_exhaustive(&start, &env, &GreedyRepair::new(), 2, 1);
        let slow = recoverability_reference(&start, &env, &GreedyRepair::new(), 2, 1);
        assert_eq!(fast, slow);
        assert_eq!(fast.cases, 70 + 70 * 69 / 2);
        assert!(!fast.is_k_recoverable());
    }

    #[test]
    fn sampled_agrees_with_exhaustive_on_small_system() {
        let mut rng = seeded_rng(9);
        let n = 10;
        let start = Config::ones(n);
        let env = AllOnes::new(n);
        let report = sampled_recoverability(
            &start,
            &env,
            &GreedyRepair::new(),
            &ShockKind::BoundedBitDamage { max_flips: 3 },
            3,
            200,
            &mut rng,
        );
        assert!(report.is_k_recoverable());
        assert_eq!(report.cases, 200);
        assert!((report.recovery_rate() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn sampled_detects_failures_under_tight_budget() {
        let mut rng = seeded_rng(10);
        let start = Config::ones(12);
        let env = AllOnes::new(12);
        let report = sampled_recoverability(
            &start,
            &env,
            &GreedyRepair::new(),
            &ShockKind::BitDamage { flips: 5 },
            3,
            100,
            &mut rng,
        );
        assert_eq!(report.recovered_within_k, 0);
        assert!(report.counterexample.is_some());
        assert_eq!(report.recovery_rate(), 0.0);
    }

    #[test]
    fn stats_variant_matches_plain_report_and_counts_cache_traffic() {
        let n = 10;
        let start = Config::ones(n);
        let env = AllOnes::new(n);
        let plain = is_k_recoverable_exhaustive(&start, &env, &GreedyRepair::new(), 3, 3);
        let (report, stats) =
            is_k_recoverable_exhaustive_stats(&start, &env, &GreedyRepair::new(), 3, 3);
        assert_eq!(report, plain);
        // Every case probes the cache at least once up front; repair
        // walks that land on memoized states probe again mid-walk.
        assert!(stats.cache_hits + stats.cache_misses >= report.cases as u64);
        assert!(stats.states_explored > 0);
        // Overlapping damage patterns share repair paths, so the
        // transposition cache must see real traffic on this instance.
        assert!(stats.cache_hits > 0, "{stats:?}");
        assert!(stats.hit_rate() > 0.0 && stats.hit_rate() < 1.0);
    }

    #[test]
    fn parallel_stats_are_thread_invariant() {
        let n = 12;
        let start = Config::ones(n);
        let env = AllOnes::new(n);
        let serial = is_k_recoverable_exhaustive(&start, &env, &GreedyRepair::new(), 3, 3);
        let mut expect: Option<VerifyStats> = None;
        for threads in [1, 2, 4, 7] {
            let (report, stats) = is_k_recoverable_exhaustive_parallel_stats(
                &start,
                &env,
                &GreedyRepair::new(),
                3,
                3,
                &RunContext::with_threads(0, threads),
            );
            assert_eq!(report, serial, "threads={threads}");
            match &expect {
                None => expect = Some(stats),
                Some(first) => assert_eq!(stats, *first, "threads={threads}"),
            }
        }
    }

    #[test]
    fn symmetric_matches_exhaustive_reports() {
        let ctx = RunContext::with_threads(0, 2);
        let n = 9;
        let start = Config::ones(n);
        let all = AllOnes::new(n);
        let atleast = AtLeastOnes::new(n, n - 2);
        let envs: [&dyn Constraint; 2] = [&all, &atleast];
        for env in envs {
            for (d, k) in [(2usize, 1usize), (3, 3), (4, 2)] {
                let sym = is_k_recoverable_symmetric(&start, env, &GreedyRepair::new(), d, k, &ctx)
                    .expect("counting constraints declare symmetry");
                let full = is_k_recoverable_exhaustive(&start, env, &GreedyRepair::new(), d, k);
                assert_eq!(sym, full, "d={d} k={k}");
            }
        }
    }

    #[test]
    fn symmetric_counterexample_matches_reference() {
        let ctx = RunContext::with_threads(0, 3);
        let start = Config::ones(8);
        let env = AllOnes::new(8);
        let sym =
            is_k_recoverable_symmetric(&start, &env, &GreedyRepair::new(), 3, 2, &ctx).unwrap();
        let reference = recoverability_reference(&start, &env, &GreedyRepair::new(), 3, 2);
        assert_eq!(sym, reference);
        // The preorder-minimal member of the failing size-3 orbit is the
        // prefix {0,1,2} — exactly the reference's first failure.
        assert_eq!(sym.counterexample.as_deref(), Some(&[0, 1, 2][..]));
    }

    #[test]
    fn symmetric_stats_are_thread_invariant_and_count_orbit_hits() {
        let n = 10;
        let start = Config::ones(n);
        let env = AllOnes::new(n);
        let mut expect: Option<VerifyStats> = None;
        for threads in [1usize, 2, 4] {
            let ctx = RunContext::with_threads(0, threads);
            let (report, stats) =
                is_k_recoverable_symmetric_stats(&start, &env, &GreedyRepair::new(), 3, 3, &ctx)
                    .expect("symmetric");
            assert!(report.is_k_recoverable());
            assert_eq!(report.cases, 10 + 45 + 120);
            // Three representative walks; everything else is settled by
            // orbit multiplication.
            assert_eq!(stats.orbit_hits, (10 + 45 + 120) - 3);
            match &expect {
                None => expect = Some(stats),
                Some(first) => assert_eq!(stats, *first, "threads={threads}"),
            }
        }
    }

    #[test]
    fn auto_routes_symmetric_and_falls_back() {
        let ctx = RunContext::with_threads(0, 2);
        let start = Config::ones(8);
        let env = AllOnes::new(8);
        let auto = is_k_recoverable_auto(&start, &env, &GreedyRepair::new(), 3, 3, &ctx);
        let full = is_k_recoverable_exhaustive(&start, &env, &GreedyRepair::new(), 3, 3);
        assert_eq!(auto, full);
        // ExplicitSet declares no symmetry → the symmetric checker makes
        // no claim and auto falls back to the exhaustive engine.
        let set: ExplicitSet = ["11111111".parse().unwrap(), "00000000".parse().unwrap()]
            .into_iter()
            .collect();
        assert!(
            is_k_recoverable_symmetric(&start, &set, &GreedyRepair::new(), 2, 2, &ctx).is_none()
        );
        let auto = is_k_recoverable_auto(&start, &set, &GreedyRepair::new(), 2, 2, &ctx);
        let full = is_k_recoverable_exhaustive(&start, &set, &GreedyRepair::new(), 2, 2);
        assert_eq!(auto, full);
        // Anneal is neither deterministic nor symmetry-invariant.
        assert!(
            is_k_recoverable_symmetric(&start, &env, &AnnealRepair::new(0.5, 7), 2, 2, &ctx)
                .is_none()
        );
    }

    #[test]
    fn empty_report_rate_is_one() {
        let r = RecoverabilityReport {
            k: 1,
            cases: 0,
            recovered_within_k: 0,
            worst_steps: 0,
            counterexample: None,
        };
        assert_eq!(r.recovery_rate(), 1.0);
        assert!(r.is_k_recoverable());
    }
}

//! The dynamic system: a configuration living in a mutable environment.

use std::sync::Arc;

use rand::Rng;

use resilience_core::{Config, Constraint, QualityTrajectory, Shock, ShockKind};

use crate::repair::{RepairOutcome, RepairStrategy};

/// A dynamic constraint-satisfaction system: the paper's Fig. 4 — a
/// bit-string status that must satisfy the (possibly changing) environment,
/// updating itself to adapt.
///
/// Quality is reported as `100 · (1 − violation/len)` so a fully-violated
/// system scores 0 and a fit system scores 100, allowing Bruneau analysis
/// of repair episodes.
pub struct DcspSystem {
    state: Config,
    env: Arc<dyn Constraint>,
    time: usize,
    quality: QualityTrajectory,
}

impl std::fmt::Debug for DcspSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DcspSystem")
            .field("state", &self.state)
            .field("env", &self.env.describe())
            .field("time", &self.time)
            .finish()
    }
}

/// Record of one shock-repair episode.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeRecord {
    /// Time step at which the shock struck.
    pub shock_time: usize,
    /// The realized shock.
    pub shock: Shock,
    /// Steps the repair took (flips performed).
    pub repair_steps: usize,
    /// Whether fitness was regained within the allowed steps.
    pub recovered: bool,
}

impl DcspSystem {
    /// A system whose initial state is `initial` under environment `env`.
    pub fn new(initial: Config, env: Arc<dyn Constraint>) -> Self {
        let mut quality = QualityTrajectory::new(1.0);
        let q = Self::quality_of(&initial, env.as_ref());
        quality.push(q);
        DcspSystem {
            state: initial,
            env,
            time: 0,
            quality,
        }
    }

    /// A system that starts fit under an [`resilience_core::AllOnes`]-like
    /// constraint whose arity is known: the initial state is all-ones.
    ///
    /// # Panics
    ///
    /// Panics if the constraint has no arity. Use
    /// [`DcspSystem::try_fit_under`] to handle that case as a typed
    /// error instead.
    pub fn fit_under(env: Arc<dyn Constraint>) -> Self {
        match Self::try_fit_under(env) {
            Ok(system) => system,
            Err(err) => panic!("fit_under requires a constraint with a known arity: {err}"),
        }
    }

    /// A system that starts fit under a constraint with a known arity,
    /// rejecting arity-less constraints with
    /// [`CoreError::UnknownArity`](resilience_core::CoreError::UnknownArity)
    /// instead of panicking.
    pub fn try_fit_under(env: Arc<dyn Constraint>) -> Result<Self, resilience_core::CoreError> {
        let n = env
            .arity()
            .ok_or(resilience_core::CoreError::UnknownArity)?;
        Ok(DcspSystem::new(Config::ones(n), env))
    }

    /// Current configuration.
    pub fn state(&self) -> &Config {
        &self.state
    }

    /// Current environment.
    pub fn environment(&self) -> &Arc<dyn Constraint> {
        &self.env
    }

    /// Simulation clock (advanced by shocks and repair flips).
    pub fn time(&self) -> usize {
        self.time
    }

    /// Whether the current state satisfies the environment.
    pub fn is_fit(&self) -> bool {
        self.env.is_fit(&self.state)
    }

    /// Current violation degree.
    pub fn violation(&self) -> f64 {
        self.env.violation(&self.state)
    }

    /// Quality in `[0, 100]`: full when fit, degraded proportionally to the
    /// violation degree otherwise.
    pub fn quality(&self) -> f64 {
        Self::quality_of(&self.state, self.env.as_ref())
    }

    fn quality_of(state: &Config, env: &dyn Constraint) -> f64 {
        let v = env.violation(state);
        if v <= 0.0 {
            100.0
        } else {
            let n = state.len().max(1) as f64;
            (100.0 * (1.0 - v / n)).clamp(0.0, 100.0)
        }
    }

    /// The recorded quality trajectory (one sample per time step).
    pub fn quality_trajectory(&self) -> &QualityTrajectory {
        &self.quality
    }

    /// Apply one shock of kind `kind` to the state, advancing time by one.
    pub fn strike<R: Rng + ?Sized>(&mut self, kind: &ShockKind, rng: &mut R) -> Shock {
        let shock = kind.strike(&mut self.state, rng);
        self.tick();
        shock
    }

    /// Replace the environment (the paper's "environment changes from C to
    /// C'"), advancing time by one.
    pub fn shift_environment(&mut self, new_env: Arc<dyn Constraint>) {
        self.env = new_env;
        self.tick();
    }

    /// Run `strategy` until fit or `max_steps` flips are spent. Each flip
    /// advances time by one (the paper's one-bit-per-step repair).
    pub fn repair<S: RepairStrategy + ?Sized>(
        &mut self,
        strategy: &S,
        max_steps: usize,
    ) -> RepairOutcome {
        let mut steps = 0;
        let mut flips = Vec::new();
        while steps < max_steps && !self.is_fit() {
            match strategy.propose_flip(&self.state, self.env.as_ref()) {
                Some(bit) => {
                    self.state.flip(bit);
                    flips.push(bit);
                    steps += 1;
                    self.tick();
                }
                None => break, // strategy is stuck
            }
        }
        RepairOutcome {
            steps,
            flips,
            recovered: self.is_fit(),
        }
    }

    /// One full episode: shock then repair, with bookkeeping.
    pub fn episode<R: Rng + ?Sized, S: RepairStrategy + ?Sized>(
        &mut self,
        kind: &ShockKind,
        strategy: &S,
        max_steps: usize,
        rng: &mut R,
    ) -> EpisodeRecord {
        let shock_time = self.time;
        let shock = self.strike(kind, rng);
        let outcome = self.repair(strategy, max_steps);
        EpisodeRecord {
            shock_time,
            shock,
            repair_steps: outcome.steps,
            recovered: outcome.recovered,
        }
    }

    /// Advance the clock by one step with no state change (idle step).
    pub fn idle(&mut self) {
        self.tick();
    }

    /// Verify k-recoverability of the *current* state against all damage
    /// patterns of at most `max_damage` flips, repaired by `strategy`
    /// within `k` steps, on the fastest sound engine for this
    /// environment: symmetry-orbit reduction when the constraint declares
    /// automorphisms the strategy respects
    /// ([`crate::recoverability::is_k_recoverable_auto`]), the parallel
    /// exhaustive checker otherwise. Verification is a pure query — the
    /// clock and state are untouched.
    ///
    /// # Panics
    ///
    /// Panics if the system is not currently fit (recoverability is
    /// defined from a fit configuration).
    pub fn verify_recoverability<S: RepairStrategy + ?Sized>(
        &self,
        strategy: &S,
        max_damage: usize,
        k: usize,
        ctx: &resilience_core::RunContext,
    ) -> crate::recoverability::RecoverabilityReport {
        crate::recoverability::is_k_recoverable_auto(
            &self.state,
            self.env.as_ref(),
            strategy,
            max_damage,
            k,
            ctx,
        )
    }

    fn tick(&mut self) {
        self.time += 1;
        self.quality.push(self.quality());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::GreedyRepair;
    use resilience_core::{resilience_loss, seeded_rng, AllOnes, AtLeastOnes};

    #[test]
    fn starts_fit() {
        let sys = DcspSystem::fit_under(Arc::new(AllOnes::new(8)));
        assert!(sys.is_fit());
        assert_eq!(sys.quality(), 100.0);
        assert_eq!(sys.time(), 0);
        assert_eq!(sys.quality_trajectory().len(), 1);
    }

    #[test]
    fn try_fit_under_rejects_arityless_constraints() {
        let anon = resilience_core::PredicateConstraint::new("anything", |_| true);
        let err = DcspSystem::try_fit_under(Arc::new(anon)).unwrap_err();
        assert_eq!(err, resilience_core::CoreError::UnknownArity);
        assert!(DcspSystem::try_fit_under(Arc::new(AllOnes::new(8)))
            .unwrap()
            .is_fit());
    }

    #[test]
    fn system_level_verification_uses_the_auto_router() {
        let ctx = resilience_core::RunContext::with_threads(0, 2);
        let sys = DcspSystem::fit_under(Arc::new(AllOnes::new(10)));
        let report = sys.verify_recoverability(&GreedyRepair::new(), 3, 3, &ctx);
        assert!(report.is_k_recoverable());
        assert_eq!(report.cases, 10 + 45 + 120);
        // Same verdict as the exhaustive engine called directly.
        let direct = crate::recoverability::is_k_recoverable_exhaustive(
            sys.state(),
            sys.environment().as_ref(),
            &GreedyRepair::new(),
            3,
            3,
        );
        assert_eq!(report, direct);
    }

    #[test]
    fn shock_degrades_quality_proportionally() {
        let mut rng = seeded_rng(1);
        let mut sys = DcspSystem::fit_under(Arc::new(AllOnes::new(10)));
        sys.strike(&ShockKind::BitDamage { flips: 2 }, &mut rng);
        assert!(!sys.is_fit());
        assert!((sys.quality() - 80.0).abs() < 1e-9);
        assert_eq!(sys.time(), 1);
    }

    #[test]
    fn repair_restores_fitness_and_records_trajectory() {
        let mut rng = seeded_rng(2);
        let mut sys = DcspSystem::fit_under(Arc::new(AllOnes::new(12)));
        sys.strike(&ShockKind::BitDamage { flips: 4 }, &mut rng);
        let out = sys.repair(&GreedyRepair::new(), 20);
        assert!(out.recovered);
        assert_eq!(out.steps, 4);
        assert_eq!(out.flips.len(), 4);
        assert!(sys.is_fit());
        // Quality trajectory shows a triangle we can integrate.
        let loss = resilience_loss(sys.quality_trajectory());
        assert!(loss > 0.0);
    }

    #[test]
    fn repair_respects_step_budget() {
        let mut rng = seeded_rng(3);
        let mut sys = DcspSystem::fit_under(Arc::new(AllOnes::new(12)));
        sys.strike(&ShockKind::BitDamage { flips: 6 }, &mut rng);
        let out = sys.repair(&GreedyRepair::new(), 3);
        assert!(!out.recovered);
        assert_eq!(out.steps, 3);
        assert!(!sys.is_fit());
    }

    #[test]
    fn environment_shift_can_unfit_a_system() {
        let mut sys = DcspSystem::new("1100".parse().unwrap(), Arc::new(AtLeastOnes::new(4, 2)));
        assert!(sys.is_fit());
        sys.shift_environment(Arc::new(AtLeastOnes::new(4, 3)));
        assert!(!sys.is_fit());
        // Adaptation to the new environment.
        let out = sys.repair(&GreedyRepair::new(), 4);
        assert!(out.recovered);
        assert_eq!(out.steps, 1);
    }

    #[test]
    fn episode_bookkeeping() {
        let mut rng = seeded_rng(4);
        let mut sys = DcspSystem::fit_under(Arc::new(AllOnes::new(8)));
        sys.idle();
        sys.idle();
        let record = sys.episode(
            &ShockKind::BitDamage { flips: 2 },
            &GreedyRepair::new(),
            8,
            &mut rng,
        );
        assert_eq!(record.shock_time, 2);
        assert_eq!(record.shock.magnitude(), 2);
        assert!(record.recovered);
        assert_eq!(record.repair_steps, 2);
    }

    #[test]
    fn quality_floor_is_zero() {
        let mut rng = seeded_rng(5);
        let mut sys = DcspSystem::fit_under(Arc::new(AllOnes::new(4)));
        sys.strike(&ShockKind::BitDamage { flips: 4 }, &mut rng);
        assert_eq!(sys.quality(), 0.0);
    }

    #[test]
    fn debug_output_mentions_env() {
        let sys = DcspSystem::fit_under(Arc::new(AllOnes::new(4)));
        let s = format!("{sys:?}");
        assert!(s.contains("components good"));
    }
}

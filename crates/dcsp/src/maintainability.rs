//! *K*-maintainability (the paper's §4.3, after Baral & Eiter 2004).
//!
//! "We say that a system is K-maintainable if, for any non-normal state of
//! the system, there exists a sequence of actions (i.e., events controllable
//! by a system administrator) that move the system back to one of the normal
//! states within k steps."
//!
//! [`TransitionSystem`] is an explicit-state model with *controllable*
//! actions (the administrator's moves) and *exogenous* transitions (the
//! environment's moves). Internally the adjacency lists are mirrored into
//! compressed-sparse-row (CSR) arrays — forward and reverse edges packed
//! into flat `u32` offset/target vectors — built once on first analysis and
//! invalidated when edges change. Two analyses are provided:
//!
//! * [`TransitionSystem::analyze`] — the paper's definition: the
//!   environment stays quiet during repair. Backward BFS (word-packed
//!   bitset frontiers over the reverse CSR) from the normal states yields,
//!   for every state, the minimum number of controllable steps to
//!   normality, and a [`MaintenancePolicy`] achieving it. This is the
//!   polynomial-time construction of Baral & Eiter.
//! * [`TransitionSystem::analyze_adversarial`] — a strictly stronger
//!   variant in which after every administrator action the environment may
//!   take one worst-case exogenous step; computed as a min-max fixed point
//!   by Jacobi (snapshot) value iteration, parallelizable over state
//!   ranges ([`TransitionSystem::analyze_adversarial_threads`]) with
//!   thread-invariant output.
//!
//! For bit-string DCSPs the explicit construction
//! ([`TransitionSystem::from_bit_dcsp`]) materializes all `2^n` states and
//! is capped at 20 bits; the *implicit* checkers [`analyze_bit_dcsp`] and
//! [`analyze_bit_dcsp_adversarial`] generate single-bit-flip moves on the
//! fly and scale past `2^20` states while producing byte-identical
//! reports. The implicit dense paths cap at 24 bits (typed
//! [`CoreError::StateSpaceTooLarge`] via the `try_` variants); beyond
//! that, the *compressed-frontier* engines
//! ([`analyze_bit_dcsp_frontiers`],
//! [`analyze_bit_dcsp_adversarial_frontiers`]) trade the per-state level
//! array and policy for word-packed frontier bitsets and streamed
//! per-depth counts ([`FrontierSummary`]), reaching `2^30` states in less
//! memory than the dense `2^24` run; [`analyze_bit_dcsp_auto`] routes by
//! size.
//!
//! Policy tie-breaking is canonical in every analysis path: among the
//! controllable successors achieving the optimal value, the one inserted
//! first is chosen (for bit DCSPs, the lowest flipped bit). This makes the
//! fast paths, the retained references, and the implicit generators agree
//! exactly, which the test suite checks.

use std::collections::VecDeque;
use std::sync::OnceLock;

use crate::bitwords::{count_words, xor_shifted_word, BitWords};
use resilience_core::{Config, Constraint, CoreError};

/// "Unreachable / unbounded" sentinel for adversarial values. Kept well
/// below `usize::MAX` so `best + 1` cannot overflow.
const INF: usize = usize::MAX / 4;

/// BFS "not yet visited" sentinel; valid levels are `<= n_states < u32::MAX`.
const UNSET: u32 = u32::MAX;

/// Explicit-state transition system with controllable and exogenous moves.
#[derive(Debug, Clone)]
pub struct TransitionSystem {
    n_states: usize,
    normal: Vec<bool>,
    /// `controllable[s]` = administrator moves available in `s`.
    controllable: Vec<Vec<usize>>,
    /// `exogenous[s]` = environment moves possible from `s`.
    exogenous: Vec<Vec<usize>>,
    /// CSR mirror of the adjacency lists, built lazily on first analysis
    /// and dropped whenever an edge is added.
    csr: OnceLock<Csr>,
}

/// One adjacency relation in compressed-sparse-row form: the neighbors of
/// `s` are `targets[offsets[s] .. offsets[s + 1]]`, in insertion order.
#[derive(Debug, Clone)]
struct EdgeList {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl EdgeList {
    fn forward(adj: &[Vec<usize>]) -> Self {
        let n_edges: usize = adj.iter().map(Vec::len).sum();
        assert!(
            n_edges < u32::MAX as usize,
            "edge count exceeds CSR capacity"
        );
        let mut offsets = Vec::with_capacity(adj.len() + 1);
        let mut targets = Vec::with_capacity(n_edges);
        offsets.push(0u32);
        for tos in adj {
            targets.extend(tos.iter().map(|&t| t as u32));
            offsets.push(targets.len() as u32);
        }
        EdgeList { offsets, targets }
    }

    /// Reverse adjacency via stable counting sort: each state's
    /// predecessors appear in ascending (source, insertion) order.
    fn reversed(adj: &[Vec<usize>]) -> Self {
        let n = adj.len();
        let n_edges: usize = adj.iter().map(Vec::len).sum();
        assert!(
            n_edges < u32::MAX as usize,
            "edge count exceeds CSR capacity"
        );
        let mut counts = vec![0u32; n + 1];
        for tos in adj {
            for &t in tos {
                counts[t + 1] += 1;
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0u32; n_edges];
        for (from, tos) in adj.iter().enumerate() {
            for &t in tos {
                targets[cursor[t] as usize] = from as u32;
                cursor[t] += 1;
            }
        }
        EdgeList { offsets, targets }
    }

    fn neighbors(&self, s: usize) -> &[u32] {
        &self.targets[self.offsets[s] as usize..self.offsets[s + 1] as usize]
    }
}

#[derive(Debug, Clone)]
struct Csr {
    /// Forward controllable edges.
    ctrl: EdgeList,
    /// Reverse controllable edges (for the backward BFS).
    ctrl_rev: EdgeList,
    /// Forward exogenous edges (for the adversarial worst-case reply).
    exo: EdgeList,
}

impl Csr {
    fn build(controllable: &[Vec<usize>], exogenous: &[Vec<usize>]) -> Self {
        assert!(
            controllable.len() < u32::MAX as usize,
            "state count exceeds CSR capacity"
        );
        Csr {
            ctrl: EdgeList::forward(controllable),
            ctrl_rev: EdgeList::reversed(controllable),
            exo: EdgeList::forward(exogenous),
        }
    }
}

/// Split `out` into `threads` contiguous chunks and fill each on its own
/// thread. Chunk boundaries cannot affect the result — every element is a
/// pure function of its index and shared read-only state — so the output
/// is identical for any thread count.
fn run_chunks<T: Send, F>(out: &mut [T], threads: usize, fill: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    if out.is_empty() {
        return;
    }
    if threads <= 1 {
        fill(0, out);
        return;
    }
    let chunk_len = out.len().div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        for (c, chunk) in out.chunks_mut(chunk_len).enumerate() {
            let fill = &fill;
            scope.spawn(move || fill(c * chunk_len, chunk));
        }
    });
}

/// A memoryless repair policy: for each state, the controllable successor
/// to move to (or `None` for normal/hopeless states).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaintenancePolicy {
    action: Vec<Option<usize>>,
}

impl MaintenancePolicy {
    /// The successor this policy chooses in `state`, if any.
    pub fn next_state(&self, state: usize) -> Option<usize> {
        self.action.get(state).copied().flatten()
    }

    /// Execute the policy from `state` for at most `budget` steps over
    /// `system`, returning the visited states (including the start).
    pub fn execute(&self, system: &TransitionSystem, state: usize, budget: usize) -> Vec<usize> {
        let mut path = vec![state];
        let mut cur = state;
        for _ in 0..budget {
            if system.is_normal(cur) {
                break;
            }
            match self.next_state(cur) {
                Some(next) => {
                    path.push(next);
                    cur = next;
                }
                None => break,
            }
        }
        path
    }
}

/// Result of a maintainability analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct MaintainabilityReport {
    /// `levels[s]` = minimum controllable steps from `s` to a normal state
    /// (`None` if unreachable — the system is not maintainable from `s`).
    pub levels: Vec<Option<usize>>,
    /// The constructed policy.
    pub policy: MaintenancePolicy,
}

impl MaintainabilityReport {
    /// The smallest `k` such that the system is k-maintainable, or `None`
    /// if some state can never reach normality.
    pub fn min_k(&self) -> Option<usize> {
        let mut max = 0;
        for lvl in &self.levels {
            match lvl {
                Some(l) => max = max.max(*l),
                None => return None,
            }
        }
        Some(max)
    }

    /// Whether every state reaches a normal state within `k` controllable
    /// steps.
    pub fn is_k_maintainable(&self, k: usize) -> bool {
        self.levels.iter().all(|l| matches!(l, Some(x) if *x <= k))
    }

    /// States from which normality is unreachable.
    pub fn hopeless_states(&self) -> Vec<usize> {
        self.levels
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.is_none().then_some(i))
            .collect()
    }

    /// Number of states first reached at each BFS depth: element `d` is
    /// the size of the backward-search frontier at distance `d` from the
    /// normal set. Hopeless states (level `None`) are excluded. Derived
    /// from `levels`, so it is identical however the BFS was scheduled.
    pub fn frontier_sizes(&self) -> Vec<u64> {
        let mut sizes = Vec::new();
        for lvl in self.levels.iter().flatten() {
            if *lvl >= sizes.len() {
                sizes.resize(*lvl + 1, 0u64);
            }
            sizes[*lvl] += 1;
        }
        sizes
    }
}

/// Backward BFS from the normal states over the reverse edge list, with
/// word-packed bitset frontiers. Returns raw `u32` levels (`UNSET` =
/// unreachable).
fn bfs_levels(n_states: usize, normal: &[bool], rev: &EdgeList) -> Vec<u32> {
    let mut levels = vec![UNSET; n_states];
    let mut frontier = BitWords::new(n_states);
    let mut next = BitWords::new(n_states);
    for (s, &is_normal) in normal.iter().enumerate() {
        if is_normal {
            levels[s] = 0;
            frontier.set(s);
        }
    }
    let mut depth: u32 = 0;
    loop {
        let mut any = false;
        frontier.for_each_one(|s| {
            for &p in rev.neighbors(s) {
                let p = p as usize;
                if levels[p] == UNSET {
                    levels[p] = depth + 1;
                    next.set(p);
                    any = true;
                }
            }
        });
        if !any {
            break;
        }
        depth += 1;
        std::mem::swap(&mut frontier, &mut next);
        next.clear_all();
    }
    levels
}

impl TransitionSystem {
    /// Empty system with `n_states` states, no moves, no normal states.
    pub fn new(n_states: usize) -> Self {
        TransitionSystem {
            n_states,
            normal: vec![false; n_states],
            controllable: vec![Vec::new(); n_states],
            exogenous: vec![Vec::new(); n_states],
            csr: OnceLock::new(),
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.n_states
    }

    /// Whether the system has no states.
    pub fn is_empty(&self) -> bool {
        self.n_states == 0
    }

    /// Mark `state` as normal.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn mark_normal(&mut self, state: usize) {
        self.normal[state] = true;
    }

    /// Whether `state` is normal.
    pub fn is_normal(&self, state: usize) -> bool {
        self.normal[state]
    }

    /// Add a controllable (administrator) move `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_controllable(&mut self, from: usize, to: usize) {
        assert!(from < self.n_states && to < self.n_states);
        self.controllable[from].push(to);
        self.csr.take();
    }

    /// Add an exogenous (environment) move `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_exogenous(&mut self, from: usize, to: usize) {
        assert!(from < self.n_states && to < self.n_states);
        self.exogenous[from].push(to);
        self.csr.take();
    }

    /// Controllable successors of `state`.
    pub fn controllable_moves(&self, state: usize) -> &[usize] {
        &self.controllable[state]
    }

    /// Exogenous successors of `state`.
    pub fn exogenous_moves(&self, state: usize) -> &[usize] {
        &self.exogenous[state]
    }

    fn csr(&self) -> &Csr {
        self.csr
            .get_or_init(|| Csr::build(&self.controllable, &self.exogenous))
    }

    /// Canonical policy from computed levels: for each non-normal state
    /// with level `L`, the first controllable successor in insertion order
    /// at level `L - 1`. Order-free with respect to how the levels were
    /// computed, so every analysis path yields the same policy.
    fn policy_from_levels(&self, levels: &[Option<usize>]) -> MaintenancePolicy {
        let mut action = vec![None; self.n_states];
        for (s, slot) in action.iter_mut().enumerate() {
            if self.normal[s] {
                continue;
            }
            if let Some(l) = levels[s] {
                *slot = self.controllable[s]
                    .iter()
                    .copied()
                    .find(|&t| levels[t] == Some(l - 1));
            }
        }
        MaintenancePolicy { action }
    }

    /// Canonical adversarial policy from converged values `v` and the
    /// per-state worst-case reply values `worst`: the first controllable
    /// successor in insertion order achieving the optimal `v[s] - 1`.
    fn adversarial_policy(&self, v: &[usize], worst: &[usize]) -> MaintenancePolicy {
        let mut action = vec![None; self.n_states];
        for (s, slot) in action.iter_mut().enumerate() {
            if self.normal[s] || v[s] >= INF {
                continue;
            }
            let target = v[s] - 1;
            *slot = self.controllable[s]
                .iter()
                .copied()
                .find(|&t| worst[t] == target);
        }
        MaintenancePolicy { action }
    }

    /// Fill `worst[t] = max(v[t], max over exogenous replies u of v[u])`
    /// for every state, chunked over `threads` threads.
    fn worst_pass(csr: &Csr, v: &[usize], worst: &mut [usize], threads: usize) {
        run_chunks(worst, threads, |start, chunk| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                let t = start + i;
                let mut w = v[t];
                for &u in csr.exo.neighbors(t) {
                    w = w.max(v[u as usize]);
                }
                *slot = w;
            }
        });
    }

    /// Build the full `2^n`-state transition system of an `n`-bit DCSP:
    /// states are configurations (encoded as integers), controllable moves
    /// are single-bit flips, normal states are those satisfying `env`, and
    /// exogenous moves are all damages of up to `max_damage` bit flips from
    /// a *normal* state (shocks strike fit systems).
    ///
    /// # Panics
    ///
    /// Panics if `n_bits > 20` (the explicit state space would exceed ~1M
    /// states). Use [`analyze_bit_dcsp`] / [`analyze_bit_dcsp_adversarial`]
    /// for larger spaces.
    pub fn from_bit_dcsp(n_bits: usize, env: &dyn Constraint, max_damage: usize) -> Self {
        assert!(n_bits <= 20, "explicit construction limited to 20 bits");
        let n_states = 1usize << n_bits;
        let mut ts = TransitionSystem::new(n_states);
        let mut probe = Config::zeros(n_bits);
        for s in 0..n_states {
            probe.set_from_u64(s as u64);
            if env.is_fit(&probe) {
                ts.mark_normal(s);
            }
            for b in 0..n_bits {
                ts.add_controllable(s, s ^ (1 << b));
            }
        }
        // Exogenous damage: from each normal state, every ≤ max_damage
        // flip. Dedup via a bitset reset per source through the `touched`
        // list; discovery order (frontier order × bit order) is unchanged,
        // so the edge lists are identical to a naive linear-scan dedup.
        let mut seen = BitWords::new(n_states);
        let mut touched: Vec<usize> = Vec::new();
        let mut frontier: Vec<usize> = Vec::new();
        let mut next: Vec<usize> = Vec::new();
        for s in 0..n_states {
            if !ts.normal[s] {
                continue;
            }
            frontier.clear();
            frontier.push(s);
            seen.set(s);
            touched.push(s);
            for _ in 0..max_damage {
                next.clear();
                for &f in &frontier {
                    for b in 0..n_bits {
                        let t = f ^ (1 << b);
                        if !seen.get(t) {
                            seen.set(t);
                            touched.push(t);
                            next.push(t);
                            ts.add_exogenous(s, t);
                        }
                    }
                }
                std::mem::swap(&mut frontier, &mut next);
            }
            for &t in &touched {
                seen.clear(t);
            }
            touched.clear();
        }
        ts
    }

    /// The paper's K-maintainability: backward BFS from the normal states
    /// over reversed controllable edges, `O(states + edges)` — the
    /// polynomial-time construction the paper cites from Baral & Eiter.
    /// Runs over the cached CSR with bitset frontiers; the report is
    /// identical to [`TransitionSystem::analyze_reference`].
    pub fn analyze(&self) -> MaintainabilityReport {
        let csr = self.csr();
        let raw = bfs_levels(self.n_states, &self.normal, &csr.ctrl_rev);
        let levels: Vec<Option<usize>> = raw
            .into_iter()
            .map(|l| (l != UNSET).then_some(l as usize))
            .collect();
        MaintainabilityReport {
            policy: self.policy_from_levels(&levels),
            levels,
        }
    }

    /// Reference implementation of [`TransitionSystem::analyze`], retained
    /// for differential testing: pointer-chasing `Vec<Vec<_>>` reverse
    /// adjacency built per call and a FIFO BFS. Produces an identical
    /// report to the CSR path.
    pub fn analyze_reference(&self) -> MaintainabilityReport {
        let mut levels: Vec<Option<usize>> = vec![None; self.n_states];
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); self.n_states];
        for (from, tos) in self.controllable.iter().enumerate() {
            for &to in tos {
                rev[to].push(from);
            }
        }
        let mut queue = VecDeque::new();
        for (s, lvl) in levels.iter_mut().enumerate() {
            if self.normal[s] {
                *lvl = Some(0);
                queue.push_back(s);
            }
        }
        while let Some(s) = queue.pop_front() {
            let next_level = levels[s].expect("queued states have levels") + 1;
            for &p in &rev[s] {
                if levels[p].is_none() {
                    levels[p] = Some(next_level);
                    queue.push_back(p);
                }
            }
        }
        MaintainabilityReport {
            policy: self.policy_from_levels(&levels),
            levels,
        }
    }

    /// Adversarial maintainability: after each administrator action landing
    /// in `t`, the environment may take one exogenous move out of `t` (or
    /// stay). `levels[s]` is the worst-case number of administrator steps
    /// needed; computed by value iteration on the min-max recurrence
    /// `V(s) = 1 + min_a max_{u ∈ {t_a} ∪ exo(t_a)} V(u)`, `V = 0` on
    /// normal states. Single-threaded; see
    /// [`TransitionSystem::analyze_adversarial_threads`].
    pub fn analyze_adversarial(&self) -> MaintainabilityReport {
        self.analyze_adversarial_threads(1)
    }

    /// [`TransitionSystem::analyze_adversarial`] with the min-max fixed
    /// point parallelized by state-range sweeps. Each Jacobi sweep reads a
    /// snapshot `v_prev` and writes `v_next`, so every element is a pure
    /// function of the previous sweep and the output is identical for any
    /// `threads` (and identical to the Gauss-Seidel
    /// [`TransitionSystem::analyze_adversarial_reference`]: both iterate a
    /// monotone operator down from ⊤ to the same greatest fixed point, and
    /// finite values — all `≤ n_states` — settle within `n_states` sweeps).
    pub fn analyze_adversarial_threads(&self, threads: usize) -> MaintainabilityReport {
        let threads = threads.max(1);
        let csr = self.csr();
        let mut v = vec![INF; self.n_states];
        for (s, value) in v.iter_mut().enumerate() {
            if self.normal[s] {
                *value = 0;
            }
        }
        let mut v_next = v.clone();
        let mut worst = vec![INF; self.n_states];
        for _ in 0..self.n_states {
            Self::worst_pass(csr, &v, &mut worst, threads);
            {
                let (v_ref, worst_ref, normal) = (&v, &worst, &self.normal);
                run_chunks(&mut v_next, threads, |start, chunk| {
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        let s = start + i;
                        *slot = if normal[s] {
                            0
                        } else {
                            let mut best = INF;
                            for &t in csr.ctrl.neighbors(s) {
                                best = best.min(worst_ref[t as usize]);
                            }
                            if best >= INF {
                                v_ref[s]
                            } else {
                                v_ref[s].min(best + 1)
                            }
                        };
                    }
                });
            }
            let changed = v_next != v;
            std::mem::swap(&mut v, &mut v_next);
            if !changed {
                break;
            }
        }
        // Recompute the replies from the converged values for the policy.
        Self::worst_pass(csr, &v, &mut worst, threads);
        let policy = self.adversarial_policy(&v, &worst);
        let levels = v
            .into_iter()
            .map(|x| if x >= INF { None } else { Some(x) })
            .collect();
        MaintainabilityReport { levels, policy }
    }

    /// Reference implementation of
    /// [`TransitionSystem::analyze_adversarial`], retained for differential
    /// testing: in-place Gauss-Seidel value iteration over the raw
    /// adjacency lists. Produces an identical report to the Jacobi path.
    pub fn analyze_adversarial_reference(&self) -> MaintainabilityReport {
        let mut v = vec![INF; self.n_states];
        for (s, value) in v.iter_mut().enumerate() {
            if self.normal[s] {
                *value = 0;
            }
        }
        // Value iteration: at most n_states sweeps are needed because
        // levels only take values in 0..n_states.
        for _ in 0..self.n_states {
            let mut changed = false;
            for s in 0..self.n_states {
                if self.normal[s] {
                    continue;
                }
                let mut best = INF;
                for &t in &self.controllable[s] {
                    // Worst case over the environment's reply.
                    let mut worst = v[t];
                    for &u in &self.exogenous[t] {
                        worst = worst.max(v[u]);
                    }
                    best = best.min(worst);
                }
                let candidate = if best >= INF { INF } else { best + 1 };
                if candidate < v[s] {
                    v[s] = candidate;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let mut worst = vec![INF; self.n_states];
        Self::worst_pass(self.csr(), &v, &mut worst, 1);
        let policy = self.adversarial_policy(&v, &worst);
        let levels = v
            .into_iter()
            .map(|x| if x >= INF { None } else { Some(x) })
            .collect();
        MaintainabilityReport { levels, policy }
    }
}

/// Evaluate `env` on every state of an `n`-bit space into a bitset.
fn normal_bitset(n_bits: usize, env: &dyn Constraint) -> BitWords {
    let n_states = 1usize << n_bits;
    let mut normal = BitWords::new(n_states);
    let mut probe = Config::zeros(n_bits);
    for s in 0..n_states {
        probe.set_from_u64(s as u64);
        if env.is_fit(&probe) {
            normal.set(s);
        }
    }
    normal
}

/// Largest `n_bits` the dense implicit analyses accept: beyond `2^24`
/// states the per-state level and policy arrays dominate memory (the
/// compressed [`analyze_bit_dcsp_frontiers`] path reaches `2^30` in less
/// space than the dense `2^24` run).
const DENSE_BIT_LIMIT: usize = 24;

/// K-maintainability of an `n`-bit DCSP without materializing the
/// transition system: states are configurations, controllable moves are
/// single-bit flips (involutions, so the backward BFS walks forward
/// neighbors), and normal states are those satisfying `env`. Produces a
/// report identical to
/// `TransitionSystem::from_bit_dcsp(n_bits, env, _).analyze()` while
/// scaling past `2^20` states (the quiet analysis ignores exogenous edges,
/// so no damage bound is taken).
///
/// # Panics
///
/// Panics if `n_bits > 24` (the per-state level and policy arrays for
/// `2^24` states already cost hundreds of MiB). Use
/// [`try_analyze_bit_dcsp`] for a typed error, or
/// [`analyze_bit_dcsp_auto`] to route oversized instances through the
/// compressed-frontier path automatically.
pub fn analyze_bit_dcsp(n_bits: usize, env: &dyn Constraint) -> MaintainabilityReport {
    match try_analyze_bit_dcsp(n_bits, env) {
        Ok(report) => report,
        Err(e) => panic!("{e}"),
    }
}

/// [`analyze_bit_dcsp`] with the size cap surfaced as a typed error
/// ([`CoreError::StateSpaceTooLarge`]) instead of a panic, so callers can
/// fall back to the compressed path.
///
/// # Errors
///
/// Returns [`CoreError::StateSpaceTooLarge`] when `n_bits` exceeds the
/// dense limit of 24 bits.
pub fn try_analyze_bit_dcsp(
    n_bits: usize,
    env: &dyn Constraint,
) -> Result<MaintainabilityReport, CoreError> {
    if n_bits > DENSE_BIT_LIMIT {
        return Err(CoreError::StateSpaceTooLarge {
            n_bits,
            limit: DENSE_BIT_LIMIT,
        });
    }
    let n_states = 1usize << n_bits;
    let normal = normal_bitset(n_bits, env);
    let mut levels = vec![UNSET; n_states];
    let mut frontier = normal.clone();
    let mut next = BitWords::new(n_states);
    normal.for_each_one(|s| {
        levels[s] = 0;
    });
    let mut depth: u32 = 0;
    loop {
        let mut any = false;
        frontier.for_each_one(|s| {
            for b in 0..n_bits {
                let p = s ^ (1 << b);
                if levels[p] == UNSET {
                    levels[p] = depth + 1;
                    next.set(p);
                    any = true;
                }
            }
        });
        if !any {
            break;
        }
        depth += 1;
        std::mem::swap(&mut frontier, &mut next);
        next.clear_all();
    }
    let mut action = vec![None; n_states];
    for (s, slot) in action.iter_mut().enumerate() {
        if normal.get(s) || levels[s] == UNSET {
            continue;
        }
        let l = levels[s];
        *slot = (0..n_bits)
            .map(|b| s ^ (1 << b))
            .find(|&t| levels[t] + 1 == l);
    }
    Ok(MaintainabilityReport {
        levels: levels
            .into_iter()
            .map(|l| (l != UNSET).then_some(l as usize))
            .collect(),
        policy: MaintenancePolicy { action },
    })
}

/// Adversarial K-maintainability of an `n`-bit DCSP with on-the-fly move
/// generation: controllable moves are single-bit flips; from every
/// *normal* state the environment may damage up to `max_damage` bits (the
/// same shock model as [`TransitionSystem::from_bit_dcsp`]). The min-max
/// fixed point runs as thread-chunked Jacobi sweeps; output is identical
/// for any `threads` and to
/// `TransitionSystem::from_bit_dcsp(n_bits, env, max_damage)
///     .analyze_adversarial()`.
///
/// # Panics
///
/// Panics if `n_bits > 24`. Use [`try_analyze_bit_dcsp_adversarial`] for
/// a typed error, or [`analyze_bit_dcsp_adversarial_frontiers`] for the
/// compressed path.
pub fn analyze_bit_dcsp_adversarial(
    n_bits: usize,
    env: &dyn Constraint,
    max_damage: usize,
    threads: usize,
) -> MaintainabilityReport {
    match try_analyze_bit_dcsp_adversarial(n_bits, env, max_damage, threads) {
        Ok(report) => report,
        Err(e) => panic!("{e}"),
    }
}

/// [`analyze_bit_dcsp_adversarial`] with the size cap surfaced as a typed
/// error instead of a panic.
///
/// # Errors
///
/// Returns [`CoreError::StateSpaceTooLarge`] when `n_bits` exceeds the
/// dense limit of 24 bits.
pub fn try_analyze_bit_dcsp_adversarial(
    n_bits: usize,
    env: &dyn Constraint,
    max_damage: usize,
    threads: usize,
) -> Result<MaintainabilityReport, CoreError> {
    if n_bits > DENSE_BIT_LIMIT {
        return Err(CoreError::StateSpaceTooLarge {
            n_bits,
            limit: DENSE_BIT_LIMIT,
        });
    }
    let threads = threads.max(1);
    let n_states = 1usize << n_bits;
    let normal = normal_bitset(n_bits, env);
    // All damage patterns as XOR masks (order irrelevant: only the max
    // over the ball is taken).
    let masks: Vec<usize> = (1..n_states)
        .filter(|m| (m.count_ones() as usize) <= max_damage)
        .collect();
    let mut v = vec![INF; n_states];
    for (s, value) in v.iter_mut().enumerate() {
        if normal.get(s) {
            *value = 0;
        }
    }
    let mut v_next = v.clone();
    let mut worst = vec![INF; n_states];
    let worst_pass = |v: &[usize], worst: &mut [usize]| {
        run_chunks(worst, threads, |start, chunk| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                let t = start + i;
                *slot = if normal.get(t) {
                    // v[t] = 0; the environment picks the worst state in
                    // the damage ball around t.
                    let mut w = 0;
                    for &m in &masks {
                        w = w.max(v[t ^ m]);
                    }
                    w
                } else {
                    v[t]
                };
            }
        });
    };
    for _ in 0..n_states {
        worst_pass(&v, &mut worst);
        {
            let (v_ref, worst_ref, normal) = (&v, &worst, &normal);
            run_chunks(&mut v_next, threads, |start, chunk| {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    let s = start + i;
                    *slot = if normal.get(s) {
                        0
                    } else {
                        let mut best = INF;
                        for b in 0..n_bits {
                            best = best.min(worst_ref[s ^ (1 << b)]);
                        }
                        if best >= INF {
                            v_ref[s]
                        } else {
                            v_ref[s].min(best + 1)
                        }
                    };
                }
            });
        }
        let changed = v_next != v;
        std::mem::swap(&mut v, &mut v_next);
        if !changed {
            break;
        }
    }
    worst_pass(&v, &mut worst);
    let mut action = vec![None; n_states];
    for (s, slot) in action.iter_mut().enumerate() {
        if normal.get(s) || v[s] >= INF {
            continue;
        }
        let target = v[s] - 1;
        *slot = (0..n_bits)
            .map(|b| s ^ (1 << b))
            .find(|&t| worst[t] == target);
    }
    Ok(MaintainabilityReport {
        levels: v
            .into_iter()
            .map(|x| if x >= INF { None } else { Some(x) })
            .collect(),
        policy: MaintenancePolicy { action },
    })
}

/// Compressed-frontier summary of an implicit maintainability analysis:
/// per-depth frontier sizes and the hopeless-state count, streamed level
/// by level instead of materialized as a per-state array. This is the
/// whole observable output of the frontier engines — everything a
/// [`MaintainabilityReport`] derives about *sizes* (min-k, k-maintainable,
/// frontier histogram) without the per-state levels and policy whose
/// storage caps the dense path at `2^24` states.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct FrontierSummary {
    /// Number of state bits; the space has `2^n_bits` states.
    pub n_bits: usize,
    /// `frontier_sizes[d]` = number of states first reached at depth `d`
    /// (depth 0 = the normal set). Empty when there are no normal states.
    pub frontier_sizes: Vec<u64>,
    /// Number of states from which normality is unreachable.
    pub hopeless: u64,
}

impl FrontierSummary {
    /// The smallest `k` such that the system is k-maintainable, or `None`
    /// if some state can never reach normality. Matches
    /// [`MaintainabilityReport::min_k`] on the same instance.
    pub fn min_k(&self) -> Option<usize> {
        (self.hopeless == 0 && !self.frontier_sizes.is_empty())
            .then(|| self.frontier_sizes.len() - 1)
    }

    /// Whether every state reaches a normal state within `k` steps.
    pub fn is_k_maintainable(&self, k: usize) -> bool {
        matches!(self.min_k(), Some(m) if m <= k)
    }

    /// Largest single frontier — the peak working-set size of the search.
    pub fn frontier_peak(&self) -> u64 {
        self.frontier_sizes.iter().copied().max().unwrap_or(0)
    }

    /// Total number of states in the space.
    pub fn total_states(&self) -> u64 {
        1u64 << self.n_bits
    }
}

/// Fill `out` (word-packed over `2^n_bits` states, state `s` = bit
/// `s % 64` of word `s / 64`) with the fitness of every state, chunked
/// over `threads`.
///
/// Fast path: when the constraint declares a single interchangeability
/// class covering every bit ([`Constraint::symmetry_classes`]), fitness
/// is a function of the popcount alone, so `n_bits + 1` probes of prefix
/// configurations build a lookup table and each state costs one hardware
/// popcount instead of a `Config` round-trip — this is what makes the
/// `2^30` normal-set construction tractable.
fn normal_words(n_bits: usize, env: &dyn Constraint, threads: usize, out: &mut [u64]) {
    let popcount_table = env.symmetry_classes().and_then(|classes| {
        (classes.len() == n_bits && classes.iter().all(|&c| c == classes[0])).then(|| {
            let mut probe = Config::zeros(n_bits);
            let mut table = vec![env.is_fit(&probe)];
            for b in 0..n_bits {
                probe.flip(b);
                table.push(env.is_fit(&probe));
            }
            table
        })
    });
    run_chunks(out, threads, |start, chunk| {
        let mut probe = Config::zeros(n_bits);
        for (i, slot) in chunk.iter_mut().enumerate() {
            let base = ((start + i) as u64) << 6;
            let mut word = 0u64;
            for bit in 0..64u64 {
                let s = base | bit;
                let fit = match &popcount_table {
                    Some(table) => table[s.count_ones() as usize],
                    None => {
                        probe.set_from_u64(s);
                        env.is_fit(&probe)
                    }
                };
                if fit {
                    word |= 1 << bit;
                }
            }
            *slot = word;
        }
    });
}

/// K-maintainability frontiers of an `n`-bit DCSP on the compressed
/// path: three word-packed bitsets (current frontier, next frontier,
/// visited — `2^n / 8` bytes each, carved from a single arena) replace
/// the dense per-state level array, and neighbor generation is a
/// word-level XOR gather — bit `p` of a frontier word maps to bit
/// `p ^ m` under flip mask `m`, so low flips permute bits inside a word
/// and high flips re-index words
/// ([`crate::bitwords::word_xor_permute`]). Each gather advances 64
/// sibling states per instruction. Levels are streamed into per-depth
/// counts, never stored per state, which lifts the implicit ceiling from
/// `2^24` dense states to `2^30` — in less memory than the dense `2^24`
/// run.
///
/// The per-depth counts equal
/// [`MaintainabilityReport::frontier_sizes`] of the dense path on the
/// same instance, for any `threads` (chunk boundaries cannot affect a
/// BFS level: every next-frontier word is a pure function of the current
/// frontier).
///
/// # Panics
///
/// Panics unless `6 <= n_bits <= 30` (below 6 bits a state space does
/// not fill one word; above 30 the bitsets pass 128 MiB each — use the
/// dense path below and sampling above).
pub fn analyze_bit_dcsp_frontiers(
    n_bits: usize,
    env: &dyn Constraint,
    threads: usize,
) -> FrontierSummary {
    assert!(
        (6..=30).contains(&n_bits),
        "compressed frontiers support 6..=30 bits"
    );
    let threads = threads.max(1);
    let n_states = 1usize << n_bits;
    let words = n_states >> 6;
    // One arena, three equal buffers: A/B ping-pong as current/next
    // frontier, the third accumulates visited states.
    let mut arena = vec![0u64; 3 * words];
    let (buf_a, rest) = arena.split_at_mut(words);
    let (buf_b, visited) = rest.split_at_mut(words);
    normal_words(n_bits, env, threads, visited);
    buf_a.copy_from_slice(visited);
    let first = count_words(visited);
    if first == 0 {
        return FrontierSummary {
            n_bits,
            frontier_sizes: Vec::new(),
            hopeless: n_states as u64,
        };
    }
    let mut frontier_sizes = vec![first];
    let mut reached = first;
    let mut depth = 0usize;
    loop {
        let (cur, next) = if depth.is_multiple_of(2) {
            (&*buf_a, &mut *buf_b)
        } else {
            (&*buf_b, &mut *buf_a)
        };
        run_chunks(next, threads, |start, chunk| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                let w = start + i;
                let mut acc = 0u64;
                for b in 0..n_bits {
                    acc |= xor_shifted_word(cur, w, 1usize << b);
                }
                *slot = acc & !visited[w];
            }
        });
        let next = if depth.is_multiple_of(2) {
            &*buf_b
        } else {
            &*buf_a
        };
        let mut newly = 0u64;
        for (v, n) in visited.iter_mut().zip(next.iter()) {
            *v |= *n;
            newly += n.count_ones() as u64;
        }
        if newly == 0 {
            break;
        }
        frontier_sizes.push(newly);
        reached += newly;
        depth += 1;
    }
    FrontierSummary {
        n_bits,
        frontier_sizes,
        hopeless: n_states as u64 - reached,
    }
}

/// Collect every non-zero damage mask of popcount ≤ `max_damage` over
/// `n_bits` bits (ascending-bit DFS; order is irrelevant downstream —
/// only intersections over the whole ball are taken).
fn damage_masks(n_bits: usize, max_damage: usize, from: usize, cur: usize, out: &mut Vec<usize>) {
    if max_damage == 0 {
        return;
    }
    for b in from..n_bits {
        let m = cur | (1 << b);
        out.push(m);
        damage_masks(n_bits, max_damage - 1, b + 1, m, out);
    }
}

/// Adversarial K-maintainability frontiers on the compressed path: the
/// min-max fixed point of [`analyze_bit_dcsp_adversarial`] computed as
/// monotone level sets from below instead of per-state value iteration.
/// With `V_d` = states of adversarial value ≤ `d`:
///
/// * `V_0` = the normal set;
/// * `W_d` (states whose worst-case environment reply stays in `V_d`) =
///   non-normal members of `V_d`, plus normal states whose whole damage
///   ball lies in `V_d` — an *erosion* of `V_d` by the mask set;
/// * `V_{d+1}` = normal ∪ one-flip *dilation* of `W_d`.
///
/// Erosion and dilation are word-level XOR gathers, so each level is a
/// few linear passes over three `2^n / 8`-byte bitsets. The per-depth
/// counts `|V_d| − |V_{d−1}|` equal the dense adversarial report's
/// [`MaintainabilityReport::frontier_sizes`], for any `threads`.
///
/// # Panics
///
/// Panics unless `6 <= n_bits <= 30`.
pub fn analyze_bit_dcsp_adversarial_frontiers(
    n_bits: usize,
    env: &dyn Constraint,
    max_damage: usize,
    threads: usize,
) -> FrontierSummary {
    assert!(
        (6..=30).contains(&n_bits),
        "compressed frontiers support 6..=30 bits"
    );
    let threads = threads.max(1);
    let n_states = 1usize << n_bits;
    let words = n_states >> 6;
    let mut masks = Vec::new();
    damage_masks(n_bits, max_damage, 0, 0, &mut masks);
    let mut arena = vec![0u64; 3 * words];
    let (normal, rest) = arena.split_at_mut(words);
    let (vd, scratch) = rest.split_at_mut(words);
    normal_words(n_bits, env, threads, normal);
    vd.copy_from_slice(normal);
    let first = count_words(vd);
    if first == 0 {
        return FrontierSummary {
            n_bits,
            frontier_sizes: Vec::new(),
            hopeless: n_states as u64,
        };
    }
    let mut frontier_sizes = vec![first];
    let mut reached = first;
    loop {
        // W_d into `scratch`: erosion of V_d by the damage ball on the
        // normal states, V_d itself elsewhere.
        run_chunks(scratch, threads, |start, chunk| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                let w = start + i;
                let mut ero = vd[w];
                for &m in &masks {
                    ero &= xor_shifted_word(vd, w, m);
                }
                *slot = (vd[w] & !normal[w]) | (normal[w] & ero);
            }
        });
        // V_{d+1} in place: normal ∪ V_d ∪ one-flip dilation of W_d (the
        // V_d term is index-local, so in-place writes are safe).
        run_chunks(vd, threads, |start, chunk| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                let w = start + i;
                let mut acc = *slot | normal[w];
                for b in 0..n_bits {
                    acc |= xor_shifted_word(scratch, w, 1usize << b);
                }
                *slot = acc;
            }
        });
        let total = count_words(vd);
        let newly = total - reached;
        if newly == 0 {
            break;
        }
        frontier_sizes.push(newly);
        reached = total;
    }
    FrontierSummary {
        n_bits,
        frontier_sizes,
        hopeless: n_states as u64 - reached,
    }
}

/// Route an implicit quiet analysis to the right engine for its size:
/// dense ([`try_analyze_bit_dcsp`], full report summarized) up to 24
/// bits, compressed frontiers above. `threads` only affects the
/// compressed branch; the summary is identical either way on instances
/// both engines accept.
pub fn analyze_bit_dcsp_auto(
    n_bits: usize,
    env: &dyn Constraint,
    threads: usize,
) -> FrontierSummary {
    match try_analyze_bit_dcsp(n_bits, env) {
        Ok(report) => FrontierSummary {
            n_bits,
            frontier_sizes: report.frontier_sizes(),
            hopeless: report.hopeless_states().len() as u64,
        },
        Err(_) => analyze_bit_dcsp_frontiers(n_bits, env, threads),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use resilience_core::{seeded_rng, AllOnes, AtLeastOnes, ExplicitSet, PredicateConstraint};

    /// A 4-state chain: 3 → 2 → 1 → 0(normal), controllable steps.
    fn chain() -> TransitionSystem {
        let mut ts = TransitionSystem::new(4);
        ts.mark_normal(0);
        ts.add_controllable(1, 0);
        ts.add_controllable(2, 1);
        ts.add_controllable(3, 2);
        ts
    }

    #[test]
    fn chain_levels_and_policy() {
        let report = chain().analyze();
        assert_eq!(report.levels, vec![Some(0), Some(1), Some(2), Some(3)]);
        assert_eq!(report.min_k(), Some(3));
        assert!(report.is_k_maintainable(3));
        assert!(!report.is_k_maintainable(2));
        assert_eq!(report.policy.next_state(3), Some(2));
        assert_eq!(report.policy.next_state(0), None);
        let ts = chain();
        assert_eq!(report.policy.execute(&ts, 3, 10), vec![3, 2, 1, 0]);
    }

    #[test]
    fn unreachable_state_blocks_maintainability() {
        let mut ts = chain();
        // Add an isolated state 4? n_states fixed at 4; rebuild with 5.
        let mut ts5 = TransitionSystem::new(5);
        ts5.mark_normal(0);
        ts5.add_controllable(1, 0);
        // State 2,3,4 have no moves.
        ts5.add_controllable(3, 4);
        let report = ts5.analyze();
        assert_eq!(report.min_k(), None);
        assert_eq!(report.hopeless_states(), vec![2, 3, 4]);
        assert!(!report.is_k_maintainable(100));
        // The original chain has no hopeless states.
        assert!(chain().analyze().hopeless_states().is_empty());
        ts.add_exogenous(0, 3); // exogenous moves don't affect plain analysis
        assert_eq!(ts.analyze().min_k(), Some(3));
    }

    #[test]
    fn policy_chooses_shortest_route() {
        // Diamond: 3 →{1,2}, 1→0, 2→0, and a long detour 3→4→...→0.
        let mut ts = TransitionSystem::new(5);
        ts.mark_normal(0);
        ts.add_controllable(3, 4);
        ts.add_controllable(4, 1);
        ts.add_controllable(3, 1);
        ts.add_controllable(1, 0);
        ts.add_controllable(2, 0);
        let report = ts.analyze();
        assert_eq!(report.levels[3], Some(2));
        // Policy from 3 must go via 1 (level 1), not 4 (level 2).
        assert_eq!(report.policy.next_state(3), Some(1));
    }

    #[test]
    fn bit_dcsp_min_k_equals_max_damage_for_all_ones() {
        // The spacecraft: from 1^n, ≤ d failures, one repair per step.
        // Every state with z zeros is z steps from normal, so the worst
        // reachable state after a shock is d away — but analyze() covers
        // ALL states, whose worst is n. Restrict to the shocked set by
        // checking the level of each exogenous successor of the normal
        // state.
        let n = 6;
        let d = 2;
        let env = AllOnes::new(n);
        let ts = TransitionSystem::from_bit_dcsp(n, &env, d);
        let report = ts.analyze();
        let normal = (1usize << n) - 1; // all ones encoded
        assert!(ts.is_normal(normal));
        let worst = ts
            .exogenous_moves(normal)
            .iter()
            .map(|&s| report.levels[s].unwrap())
            .max()
            .unwrap();
        assert_eq!(worst, d);
        // Global min_k is n (the all-zeros state).
        assert_eq!(report.min_k(), Some(n));
    }

    #[test]
    fn bit_dcsp_tolerant_constraint_shrinks_levels() {
        let n = 6;
        let env = AtLeastOnes::new(n, 4);
        let ts = TransitionSystem::from_bit_dcsp(n, &env, 2);
        let report = ts.analyze();
        // All-zeros needs exactly 4 set bits.
        assert_eq!(report.levels[0], Some(4));
        assert_eq!(report.min_k(), Some(4));
    }

    #[test]
    fn adversarial_is_at_least_plain() {
        let n = 5;
        let env = AtLeastOnes::new(n, 3);
        let ts = TransitionSystem::from_bit_dcsp(n, &env, 1);
        let plain = ts.analyze();
        let adv = ts.analyze_adversarial();
        for s in 0..ts.len() {
            match (plain.levels[s], adv.levels[s]) {
                (Some(p), Some(a)) => assert!(a >= p, "state {s}: adv {a} < plain {p}"),
                (None, Some(_)) => panic!("adversarial easier than plain at {s}"),
                _ => {}
            }
        }
    }

    #[test]
    fn adversarial_with_hostile_environment_can_be_unwinnable() {
        // 0 normal; 1 →ctrl 0 but exo(0) = {1}: the environment undoes
        // every repair, so adversarially the system never stabilizes…
        // Actually V(1) = 1 + max(V(0), V(1-after-exo)): the exo move out
        // of the *target* 0 goes back to 1, so V(1) = 1 + max(0, V(1)) ⇒
        // unbounded ⇒ None.
        let mut ts = TransitionSystem::new(2);
        ts.mark_normal(0);
        ts.add_controllable(1, 0);
        ts.add_exogenous(0, 1);
        let adv = ts.analyze_adversarial();
        assert_eq!(adv.levels[1], None);
        // Plain analysis (quiet environment) says 1 step.
        assert_eq!(ts.analyze().levels[1], Some(1));
    }

    #[test]
    fn adversarial_quiet_environment_matches_plain() {
        let ts = chain();
        let plain = ts.analyze();
        let adv = ts.analyze_adversarial();
        assert_eq!(plain.levels, adv.levels);
    }

    #[test]
    #[should_panic(expected = "20 bits")]
    fn from_bit_dcsp_rejects_huge_spaces() {
        let env = AllOnes::new(25);
        let _ = TransitionSystem::from_bit_dcsp(25, &env, 1);
    }

    #[test]
    fn empty_system() {
        let ts = TransitionSystem::new(0);
        assert!(ts.is_empty());
        let report = ts.analyze();
        assert_eq!(report.min_k(), Some(0));
        assert_eq!(ts.analyze_adversarial().min_k(), Some(0));
    }

    /// Seeded random system: sparse normal set, random controllable and
    /// exogenous edges (duplicates and self-loops allowed on purpose).
    fn random_system(seed: u64, n: usize) -> TransitionSystem {
        let mut rng = seeded_rng(seed);
        let mut ts = TransitionSystem::new(n);
        for s in 0..n {
            if rng.gen_bool(0.2) {
                ts.mark_normal(s);
            }
        }
        for _ in 0..n * 3 {
            ts.add_controllable(rng.gen_range(0..n), rng.gen_range(0..n));
            if rng.gen_bool(0.5) {
                ts.add_exogenous(rng.gen_range(0..n), rng.gen_range(0..n));
            }
        }
        ts
    }

    #[test]
    fn csr_analyze_matches_reference_on_random_systems() {
        for seed in 0..20 {
            let ts = random_system(seed, 30 + (seed as usize % 17));
            assert_eq!(ts.analyze(), ts.analyze_reference(), "seed {seed}");
        }
    }

    #[test]
    fn adversarial_matches_reference_and_is_thread_invariant() {
        for seed in 0..12 {
            let ts = random_system(100 + seed, 40);
            let new = ts.analyze_adversarial();
            assert_eq!(new, ts.analyze_adversarial_reference(), "seed {seed}");
            for threads in [2, 4, 7] {
                assert_eq!(
                    new,
                    ts.analyze_adversarial_threads(threads),
                    "seed {seed} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn edge_mutation_invalidates_cached_csr() {
        let mut ts = TransitionSystem::new(3);
        ts.mark_normal(0);
        assert_eq!(ts.analyze().levels[2], None);
        ts.add_controllable(2, 0);
        let after = ts.analyze();
        assert_eq!(after.levels[2], Some(1));
        assert_eq!(after.policy.next_state(2), Some(0));
        // The environment undoing the repair flips the adversarial answer.
        assert_eq!(ts.analyze_adversarial().levels[2], Some(1));
        ts.add_exogenous(0, 2);
        assert_eq!(ts.analyze_adversarial().levels[2], None);
    }

    #[test]
    fn implicit_bit_dcsp_matches_explicit() {
        for (n, need, d) in [(5, 3, 1), (6, 4, 2), (4, 4, 2)] {
            let env = AtLeastOnes::new(n, need);
            let ts = TransitionSystem::from_bit_dcsp(n, &env, d);
            assert_eq!(
                analyze_bit_dcsp(n, &env),
                ts.analyze(),
                "plain n={n} need={need}"
            );
            let adv = ts.analyze_adversarial();
            assert_eq!(
                analyze_bit_dcsp_adversarial(n, &env, d, 1),
                adv,
                "adversarial n={n} need={need} d={d}"
            );
            assert_eq!(
                analyze_bit_dcsp_adversarial(n, &env, d, 4),
                adv,
                "threaded adversarial n={n} need={need} d={d}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "2^24")]
    fn implicit_rejects_huge_spaces() {
        let env = AllOnes::new(30);
        let _ = analyze_bit_dcsp(30, &env);
    }

    #[test]
    fn oversized_dense_requests_yield_typed_errors() {
        let env = AllOnes::new(30);
        let err = try_analyze_bit_dcsp(30, &env).expect_err("over the dense limit");
        assert!(matches!(
            err,
            CoreError::StateSpaceTooLarge {
                n_bits: 30,
                limit: 24
            }
        ));
        let msg = err.to_string();
        assert!(msg.contains("2^30") && msg.contains("2^24"), "{msg}");
        assert!(try_analyze_bit_dcsp_adversarial(27, &env, 1, 2).is_err());
        // In-range requests succeed through the fallible entry points.
        let small = AtLeastOnes::new(8, 5);
        assert_eq!(
            try_analyze_bit_dcsp(8, &small).expect("in range"),
            analyze_bit_dcsp(8, &small)
        );
    }

    #[test]
    fn compressed_frontiers_match_dense_quiet_analysis() {
        let all = AllOnes::new(10);
        let atleast = AtLeastOnes::new(10, 6);
        let envs: [&dyn Constraint; 2] = [&all, &atleast];
        for env in envs {
            let dense = analyze_bit_dcsp(10, env);
            for threads in [1usize, 3, 4] {
                let summary = analyze_bit_dcsp_frontiers(10, env, threads);
                assert_eq!(summary.frontier_sizes, dense.frontier_sizes());
                assert_eq!(summary.hopeless, dense.hopeless_states().len() as u64);
                assert_eq!(summary.min_k(), dense.min_k(), "threads={threads}");
                assert_eq!(summary.total_states(), 1 << 10);
            }
        }
        // Single-bit flips reach every state, so hopeless states require
        // an empty normal set.
        let never = ExplicitSet::new(Vec::<Config>::new());
        let summary = analyze_bit_dcsp_frontiers(6, &never, 2);
        assert_eq!(summary.hopeless, 64);
        assert_eq!(summary.min_k(), None);
        assert!(!summary.is_k_maintainable(100));
        assert_eq!(summary.frontier_peak(), 0);
    }

    #[test]
    fn compressed_adversarial_matches_dense_level_histogram() {
        for (n, need, d) in [(6usize, 4usize, 1usize), (8, 6, 2), (10, 7, 1)] {
            let env = AtLeastOnes::new(n, need);
            let dense = analyze_bit_dcsp_adversarial(n, &env, d, 1);
            let hopeless = dense.hopeless_states().len() as u64;
            for threads in [1usize, 4] {
                let summary = analyze_bit_dcsp_adversarial_frontiers(n, &env, d, threads);
                assert_eq!(
                    summary.frontier_sizes,
                    dense.frontier_sizes(),
                    "n={n} need={need} d={d} threads={threads}"
                );
                assert_eq!(summary.hopeless, hopeless);
                assert_eq!(summary.min_k(), dense.min_k());
            }
        }
        // Hostile case: AllOnes with any damage keeps knocking the system
        // out of its single normal state; values stay finite because the
        // environment only strikes normal states and repair outruns a
        // bounded ball — compare against the dense oracle either way.
        let env = AllOnes::new(7);
        let dense = analyze_bit_dcsp_adversarial(7, &env, 2, 1);
        let summary = analyze_bit_dcsp_adversarial_frontiers(7, &env, 2, 2);
        assert_eq!(summary.frontier_sizes, dense.frontier_sizes());
        assert_eq!(summary.hopeless, dense.hopeless_states().len() as u64);
    }

    #[test]
    fn auto_routes_by_size() {
        let env = AtLeastOnes::new(9, 5);
        let auto = analyze_bit_dcsp_auto(9, &env, 2);
        let dense = analyze_bit_dcsp(9, &env);
        assert_eq!(auto.frontier_sizes, dense.frontier_sizes());
        assert_eq!(auto.hopeless, 0);
        // The compressed branch agrees with the dense-derived summary.
        assert_eq!(auto, analyze_bit_dcsp_frontiers(9, &env, 2));
    }

    #[test]
    fn popcount_fast_path_matches_generic_probing() {
        // AtLeastOnes declares full symmetry (popcount table); an
        // equivalent PredicateConstraint does not, so it takes the
        // per-state probe path. Same fit set → same normal words.
        let n = 8;
        let words = (1usize << n) >> 6;
        let sym = AtLeastOnes::new(n, 5);
        let opaque = PredicateConstraint::new("at-least-5", move |c: &Config| c.count_ones() >= 5);
        let mut a = vec![0u64; words];
        let mut b = vec![0u64; words];
        normal_words(n, &sym, 2, &mut a);
        normal_words(n, &opaque, 2, &mut b);
        assert_eq!(a, b);
    }
}

//! *K*-maintainability (the paper's §4.3, after Baral & Eiter 2004).
//!
//! "We say that a system is K-maintainable if, for any non-normal state of
//! the system, there exists a sequence of actions (i.e., events controllable
//! by a system administrator) that move the system back to one of the normal
//! states within k steps."
//!
//! [`TransitionSystem`] is an explicit-state model with *controllable*
//! actions (the administrator's moves) and *exogenous* transitions (the
//! environment's moves). Two analyses are provided:
//!
//! * [`TransitionSystem::analyze`] — the paper's definition: the
//!   environment stays quiet during repair. Backward BFS from the normal
//!   states yields, for every state, the minimum number of controllable
//!   steps to normality, and a [`MaintenancePolicy`] achieving it. This is
//!   the polynomial-time construction of Baral & Eiter.
//! * [`TransitionSystem::analyze_adversarial`] — a strictly stronger
//!   variant in which after every administrator action the environment may
//!   take one worst-case exogenous step; computed as a min-max fixed point.

use std::collections::VecDeque;

use resilience_core::{Config, Constraint};

/// Explicit-state transition system with controllable and exogenous moves.
#[derive(Debug, Clone)]
pub struct TransitionSystem {
    n_states: usize,
    normal: Vec<bool>,
    /// `controllable[s]` = administrator moves available in `s`.
    controllable: Vec<Vec<usize>>,
    /// `exogenous[s]` = environment moves possible from `s`.
    exogenous: Vec<Vec<usize>>,
}

/// A memoryless repair policy: for each state, the controllable successor
/// to move to (or `None` for normal/hopeless states).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaintenancePolicy {
    action: Vec<Option<usize>>,
}

impl MaintenancePolicy {
    /// The successor this policy chooses in `state`, if any.
    pub fn next_state(&self, state: usize) -> Option<usize> {
        self.action.get(state).copied().flatten()
    }

    /// Execute the policy from `state` for at most `budget` steps over
    /// `system`, returning the visited states (including the start).
    pub fn execute(&self, system: &TransitionSystem, state: usize, budget: usize) -> Vec<usize> {
        let mut path = vec![state];
        let mut cur = state;
        for _ in 0..budget {
            if system.is_normal(cur) {
                break;
            }
            match self.next_state(cur) {
                Some(next) => {
                    path.push(next);
                    cur = next;
                }
                None => break,
            }
        }
        path
    }
}

/// Result of a maintainability analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct MaintainabilityReport {
    /// `levels[s]` = minimum controllable steps from `s` to a normal state
    /// (`None` if unreachable — the system is not maintainable from `s`).
    pub levels: Vec<Option<usize>>,
    /// The constructed policy.
    pub policy: MaintenancePolicy,
}

impl MaintainabilityReport {
    /// The smallest `k` such that the system is k-maintainable, or `None`
    /// if some state can never reach normality.
    pub fn min_k(&self) -> Option<usize> {
        let mut max = 0;
        for lvl in &self.levels {
            match lvl {
                Some(l) => max = max.max(*l),
                None => return None,
            }
        }
        Some(max)
    }

    /// Whether every state reaches a normal state within `k` controllable
    /// steps.
    pub fn is_k_maintainable(&self, k: usize) -> bool {
        self.levels.iter().all(|l| matches!(l, Some(x) if *x <= k))
    }

    /// States from which normality is unreachable.
    pub fn hopeless_states(&self) -> Vec<usize> {
        self.levels
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.is_none().then_some(i))
            .collect()
    }
}

impl TransitionSystem {
    /// Empty system with `n_states` states, no moves, no normal states.
    pub fn new(n_states: usize) -> Self {
        TransitionSystem {
            n_states,
            normal: vec![false; n_states],
            controllable: vec![Vec::new(); n_states],
            exogenous: vec![Vec::new(); n_states],
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.n_states
    }

    /// Whether the system has no states.
    pub fn is_empty(&self) -> bool {
        self.n_states == 0
    }

    /// Mark `state` as normal.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn mark_normal(&mut self, state: usize) {
        self.normal[state] = true;
    }

    /// Whether `state` is normal.
    pub fn is_normal(&self, state: usize) -> bool {
        self.normal[state]
    }

    /// Add a controllable (administrator) move `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_controllable(&mut self, from: usize, to: usize) {
        assert!(from < self.n_states && to < self.n_states);
        self.controllable[from].push(to);
    }

    /// Add an exogenous (environment) move `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_exogenous(&mut self, from: usize, to: usize) {
        assert!(from < self.n_states && to < self.n_states);
        self.exogenous[from].push(to);
    }

    /// Controllable successors of `state`.
    pub fn controllable_moves(&self, state: usize) -> &[usize] {
        &self.controllable[state]
    }

    /// Exogenous successors of `state`.
    pub fn exogenous_moves(&self, state: usize) -> &[usize] {
        &self.exogenous[state]
    }

    /// Build the full `2^n`-state transition system of an `n`-bit DCSP:
    /// states are configurations (encoded as integers), controllable moves
    /// are single-bit flips, normal states are those satisfying `env`, and
    /// exogenous moves are all damages of up to `max_damage` bit flips from
    /// a *normal* state (shocks strike fit systems).
    ///
    /// # Panics
    ///
    /// Panics if `n_bits > 20` (the explicit state space would exceed ~1M
    /// states).
    pub fn from_bit_dcsp(n_bits: usize, env: &dyn Constraint, max_damage: usize) -> Self {
        assert!(n_bits <= 20, "explicit construction limited to 20 bits");
        let n_states = 1usize << n_bits;
        let mut ts = TransitionSystem::new(n_states);
        for s in 0..n_states {
            let cfg = Config::from_u64(s as u64, n_bits);
            if env.is_fit(&cfg) {
                ts.mark_normal(s);
            }
            for b in 0..n_bits {
                ts.add_controllable(s, s ^ (1 << b));
            }
        }
        // Exogenous damage: from each normal state, every ≤ max_damage flip.
        for s in 0..n_states {
            if !ts.normal[s] {
                continue;
            }
            let mut frontier = vec![s];
            let mut seen = vec![s];
            for _ in 0..max_damage {
                let mut next = Vec::new();
                for &f in &frontier {
                    for b in 0..n_bits {
                        let t = f ^ (1 << b);
                        if !seen.contains(&t) {
                            seen.push(t);
                            next.push(t);
                            ts.add_exogenous(s, t);
                        }
                    }
                }
                frontier = next;
            }
        }
        ts
    }

    /// The paper's K-maintainability: backward BFS from the normal states
    /// over reversed controllable edges. Runs in `O(states + edges)` — the
    /// polynomial-time construction the paper cites from Baral & Eiter.
    pub fn analyze(&self) -> MaintainabilityReport {
        let mut levels: Vec<Option<usize>> = vec![None; self.n_states];
        let mut policy: Vec<Option<usize>> = vec![None; self.n_states];
        // Reverse controllable adjacency.
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); self.n_states];
        for (from, tos) in self.controllable.iter().enumerate() {
            for &to in tos {
                rev[to].push(from);
            }
        }
        let mut queue = VecDeque::new();
        for (s, lvl) in levels.iter_mut().enumerate() {
            if self.normal[s] {
                *lvl = Some(0);
                queue.push_back(s);
            }
        }
        while let Some(s) = queue.pop_front() {
            let next_level = levels[s].expect("queued states have levels") + 1;
            for &p in &rev[s] {
                if levels[p].is_none() {
                    levels[p] = Some(next_level);
                    policy[p] = Some(s);
                    queue.push_back(p);
                }
            }
        }
        MaintainabilityReport {
            levels,
            policy: MaintenancePolicy { action: policy },
        }
    }

    /// Adversarial maintainability: after each administrator action landing
    /// in `t`, the environment may take one exogenous move out of `t` (or
    /// stay). `levels[s]` is the worst-case number of administrator steps
    /// needed; computed by value iteration on the min-max recurrence
    /// `V(s) = 1 + min_a max_{u ∈ {t_a} ∪ exo(t_a)} V(u)`, `V = 0` on
    /// normal states.
    pub fn analyze_adversarial(&self) -> MaintainabilityReport {
        const INF: usize = usize::MAX / 4;
        let mut v = vec![INF; self.n_states];
        let mut policy: Vec<Option<usize>> = vec![None; self.n_states];
        for (s, value) in v.iter_mut().enumerate() {
            if self.normal[s] {
                *value = 0;
            }
        }
        // Value iteration: at most n_states sweeps are needed because
        // levels only take values in 0..n_states.
        for _ in 0..self.n_states {
            let mut changed = false;
            for s in 0..self.n_states {
                if self.normal[s] {
                    continue;
                }
                let mut best = INF;
                let mut best_to = None;
                for &t in &self.controllable[s] {
                    // Worst case over the environment's reply.
                    let mut worst = v[t];
                    for &u in &self.exogenous[t] {
                        worst = worst.max(v[u]);
                    }
                    if worst < best {
                        best = worst;
                        best_to = Some(t);
                    }
                }
                let candidate = if best >= INF { INF } else { best + 1 };
                if candidate < v[s] {
                    v[s] = candidate;
                    policy[s] = best_to;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let levels = v
            .into_iter()
            .map(|x| if x >= INF { None } else { Some(x) })
            .collect();
        MaintainabilityReport {
            levels,
            policy: MaintenancePolicy { action: policy },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::{AllOnes, AtLeastOnes};

    /// A 4-state chain: 3 → 2 → 1 → 0(normal), controllable steps.
    fn chain() -> TransitionSystem {
        let mut ts = TransitionSystem::new(4);
        ts.mark_normal(0);
        ts.add_controllable(1, 0);
        ts.add_controllable(2, 1);
        ts.add_controllable(3, 2);
        ts
    }

    #[test]
    fn chain_levels_and_policy() {
        let report = chain().analyze();
        assert_eq!(report.levels, vec![Some(0), Some(1), Some(2), Some(3)]);
        assert_eq!(report.min_k(), Some(3));
        assert!(report.is_k_maintainable(3));
        assert!(!report.is_k_maintainable(2));
        assert_eq!(report.policy.next_state(3), Some(2));
        assert_eq!(report.policy.next_state(0), None);
        let ts = chain();
        assert_eq!(report.policy.execute(&ts, 3, 10), vec![3, 2, 1, 0]);
    }

    #[test]
    fn unreachable_state_blocks_maintainability() {
        let mut ts = chain();
        // Add an isolated state 4? n_states fixed at 4; rebuild with 5.
        let mut ts5 = TransitionSystem::new(5);
        ts5.mark_normal(0);
        ts5.add_controllable(1, 0);
        // State 2,3,4 have no moves.
        ts5.add_controllable(3, 4);
        let report = ts5.analyze();
        assert_eq!(report.min_k(), None);
        assert_eq!(report.hopeless_states(), vec![2, 3, 4]);
        assert!(!report.is_k_maintainable(100));
        // The original chain has no hopeless states.
        assert!(chain().analyze().hopeless_states().is_empty());
        ts.add_exogenous(0, 3); // exogenous moves don't affect plain analysis
        assert_eq!(ts.analyze().min_k(), Some(3));
    }

    #[test]
    fn policy_chooses_shortest_route() {
        // Diamond: 3 →{1,2}, 1→0, 2→0, and a long detour 3→4→...→0.
        let mut ts = TransitionSystem::new(5);
        ts.mark_normal(0);
        ts.add_controllable(3, 4);
        ts.add_controllable(4, 1);
        ts.add_controllable(3, 1);
        ts.add_controllable(1, 0);
        ts.add_controllable(2, 0);
        let report = ts.analyze();
        assert_eq!(report.levels[3], Some(2));
        // Policy from 3 must go via 1 (level 1), not 4 (level 2).
        assert_eq!(report.policy.next_state(3), Some(1));
    }

    #[test]
    fn bit_dcsp_min_k_equals_max_damage_for_all_ones() {
        // The spacecraft: from 1^n, ≤ d failures, one repair per step.
        // Every state with z zeros is z steps from normal, so the worst
        // reachable state after a shock is d away — but analyze() covers
        // ALL states, whose worst is n. Restrict to the shocked set by
        // checking the level of each exogenous successor of the normal
        // state.
        let n = 6;
        let d = 2;
        let env = AllOnes::new(n);
        let ts = TransitionSystem::from_bit_dcsp(n, &env, d);
        let report = ts.analyze();
        let normal = (1usize << n) - 1; // all ones encoded
        assert!(ts.is_normal(normal));
        let worst = ts
            .exogenous_moves(normal)
            .iter()
            .map(|&s| report.levels[s].unwrap())
            .max()
            .unwrap();
        assert_eq!(worst, d);
        // Global min_k is n (the all-zeros state).
        assert_eq!(report.min_k(), Some(n));
    }

    #[test]
    fn bit_dcsp_tolerant_constraint_shrinks_levels() {
        let n = 6;
        let env = AtLeastOnes::new(n, 4);
        let ts = TransitionSystem::from_bit_dcsp(n, &env, 2);
        let report = ts.analyze();
        // All-zeros needs exactly 4 set bits.
        assert_eq!(report.levels[0], Some(4));
        assert_eq!(report.min_k(), Some(4));
    }

    #[test]
    fn adversarial_is_at_least_plain() {
        let n = 5;
        let env = AtLeastOnes::new(n, 3);
        let ts = TransitionSystem::from_bit_dcsp(n, &env, 1);
        let plain = ts.analyze();
        let adv = ts.analyze_adversarial();
        for s in 0..ts.len() {
            match (plain.levels[s], adv.levels[s]) {
                (Some(p), Some(a)) => assert!(a >= p, "state {s}: adv {a} < plain {p}"),
                (None, Some(_)) => panic!("adversarial easier than plain at {s}"),
                _ => {}
            }
        }
    }

    #[test]
    fn adversarial_with_hostile_environment_can_be_unwinnable() {
        // 0 normal; 1 →ctrl 0 but exo(0) = {1}: the environment undoes
        // every repair, so adversarially the system never stabilizes…
        // Actually V(1) = 1 + max(V(0), V(1-after-exo)): the exo move out
        // of the *target* 0 goes back to 1, so V(1) = 1 + max(0, V(1)) ⇒
        // unbounded ⇒ None.
        let mut ts = TransitionSystem::new(2);
        ts.mark_normal(0);
        ts.add_controllable(1, 0);
        ts.add_exogenous(0, 1);
        let adv = ts.analyze_adversarial();
        assert_eq!(adv.levels[1], None);
        // Plain analysis (quiet environment) says 1 step.
        assert_eq!(ts.analyze().levels[1], Some(1));
    }

    #[test]
    fn adversarial_quiet_environment_matches_plain() {
        let ts = chain();
        let plain = ts.analyze();
        let adv = ts.analyze_adversarial();
        assert_eq!(plain.levels, adv.levels);
    }

    #[test]
    #[should_panic(expected = "20 bits")]
    fn from_bit_dcsp_rejects_huge_spaces() {
        let env = AllOnes::new(25);
        let _ = TransitionSystem::from_bit_dcsp(25, &env, 1);
    }

    #[test]
    fn empty_system() {
        let ts = TransitionSystem::new(0);
        assert!(ts.is_empty());
        let report = ts.analyze();
        assert_eq!(report.min_k(), Some(0));
    }
}

//! Constraint-automorphism orbits for symmetry-reduced verification.
//!
//! The recoverability enumerator pays Σ_s C(n,s) repair walks. When the
//! environment declares variable automorphisms
//! ([`Constraint::symmetry_classes`]) — permutations of interchangeable
//! variables that fix the fit set — damage patterns fall into *orbits*
//! that all share one verdict: a pattern's repair length is invariant
//! under any automorphism that also fixes the start configuration. The
//! symmetry-reduced checker therefore canonicalizes each orbit to its
//! preorder-minimal representative, verifies that one member, and
//! multiplies by the orbit size, breaking the combinatorial ceiling
//! because whole orbits cost one check.
//!
//! An orbit is identified by its *signature*: the number of damaged
//! variables per interchangeability class. The orbit size is the product
//! of per-class binomials, and the representative takes the
//! lowest-indexed members of each class — which is exactly the
//! lowest-preorder-rank member, so counterexamples come out bit-identical
//! to the unreduced enumerator (see `tests/symmetry_equivalence.rs`).

use std::cmp::Ordering;

use resilience_core::{Config, Constraint};

/// A partition of a constraint's variables into interchangeability
/// classes, validated against a start configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymmetryClasses {
    /// Compacted class id per variable (ids are `0..n_classes`, numbered
    /// by first appearance).
    class_of: Vec<usize>,
    /// Members of each class, ascending.
    members: Vec<Vec<usize>>,
}

impl SymmetryClasses {
    /// Build the orbit structure for verifying recoverability of `start`
    /// under `env`. Returns `None` when no reduction is sound:
    ///
    /// * the constraint declares no symmetry,
    /// * the declared partition does not cover `start.len()` variables, or
    /// * `start` is not constant within some class (then the class's
    ///   permutations move the start configuration, so damage orbits no
    ///   longer share repair lengths).
    pub fn detect(env: &dyn Constraint, start: &Config) -> Option<SymmetryClasses> {
        let declared = env.symmetry_classes()?;
        if declared.len() != start.len() {
            return None;
        }
        // Compact ids in order of first appearance so downstream
        // enumeration order is a pure function of the declaration.
        let mut remap: Vec<Option<usize>> = vec![None; declared.len()];
        let mut members: Vec<Vec<usize>> = Vec::new();
        let mut class_of = Vec::with_capacity(declared.len());
        for (var, &raw) in declared.iter().enumerate() {
            if raw >= remap.len() {
                return None; // malformed declaration
            }
            let id = match remap[raw] {
                Some(id) => id,
                None => {
                    let id = members.len();
                    remap[raw] = Some(id);
                    members.push(Vec::new());
                    id
                }
            };
            members[id].push(var);
            class_of.push(id);
        }
        // Start must be class-constant: an automorphism permuting a class
        // with mixed start bits maps the verification problem to a
        // different start configuration.
        for class in &members {
            let first = start.get(class[0]);
            if class.iter().any(|&v| start.get(v) != first) {
                return None;
            }
        }
        Some(SymmetryClasses { class_of, members })
    }

    /// Number of variables covered.
    pub fn n_vars(&self) -> usize {
        self.class_of.len()
    }

    /// Number of interchangeability classes.
    pub fn n_classes(&self) -> usize {
        self.members.len()
    }

    /// Class id of a variable.
    pub fn class_of(&self, var: usize) -> usize {
        self.class_of[var]
    }

    /// Members of class `c`, ascending.
    pub fn class_members(&self, c: usize) -> &[usize] {
        &self.members[c]
    }

    /// Whether every variable is interchangeable with every other (one
    /// class — the spacecraft/tiger-team shape, where orbits are exactly
    /// the damage sizes).
    pub fn is_fully_symmetric(&self) -> bool {
        self.members.len() == 1
    }

    /// Enumerate every damage orbit with `1..=max_damage` damaged
    /// variables, in a deterministic order (total damage ascending, then
    /// per-class counts lexicographically descending). The orbit sizes
    /// partition the unreduced case count exactly:
    /// Σ sizes = Σ_{s=1..max_damage} C(n, s).
    pub fn damage_orbits(&self, max_damage: usize) -> Vec<DamageOrbit> {
        let max_damage = max_damage.min(self.n_vars());
        let mut orbits = Vec::new();
        let mut counts = vec![0usize; self.n_classes()];
        for total in 1..=max_damage {
            self.fill_signatures(total, 0, &mut counts, &mut orbits);
        }
        orbits
    }

    /// Recursively distribute `remaining` damaged variables over classes
    /// `from..`, emitting one [`DamageOrbit`] per complete signature.
    fn fill_signatures(
        &self,
        remaining: usize,
        from: usize,
        counts: &mut Vec<usize>,
        out: &mut Vec<DamageOrbit>,
    ) {
        if remaining == 0 {
            out.push(self.orbit_of_signature(counts));
            return;
        }
        if from == self.n_classes() {
            return;
        }
        let cap = self.members[from].len().min(remaining);
        // Descending count first: for the fully symmetric single-class
        // case this visits sizes in the natural ascending-total order
        // driven by the caller.
        for c in (0..=cap).rev() {
            counts[from] = c;
            self.fill_signatures(remaining - c, from + 1, counts, out);
        }
        counts[from] = 0;
    }

    /// The orbit of one signature: its size (product of per-class
    /// binomials) and its preorder-minimal representative (the lowest
    /// `count` indices of each class, merged ascending).
    fn orbit_of_signature(&self, counts: &[usize]) -> DamageOrbit {
        let mut size: u64 = 1;
        let mut representative = Vec::new();
        for (class, &count) in counts.iter().enumerate() {
            size = size
                .checked_mul(binomial(self.members[class].len(), count))
                .expect("orbit size fits u64 (bounded by the total case count)");
            representative.extend_from_slice(&self.members[class][..count]);
        }
        representative.sort_unstable();
        DamageOrbit {
            signature: counts.to_vec(),
            size,
            representative,
        }
    }
}

/// One equivalence class of damage patterns under the declared
/// automorphisms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DamageOrbit {
    /// Damaged-variable count per interchangeability class.
    pub signature: Vec<usize>,
    /// Number of damage patterns in the orbit.
    pub size: u64,
    /// The orbit member with the lowest subset-preorder rank (damaged
    /// variable indices, ascending).
    pub representative: Vec<usize>,
}

/// Compare two damage subsets (ascending index sequences) by the
/// enumeration preorder of the exhaustive checker: a subset precedes its
/// extensions, and siblings order by their first differing element. This
/// is the rank order that decides which failure survives as the
/// counterexample.
pub fn preorder_cmp(a: &[usize], b: &[usize]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        match x.cmp(y) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    // One is a prefix of the other: the prefix (shorter) comes first.
    a.len().cmp(&b.len())
}

/// C(n, k) in `u64`, panicking on overflow (orbit sizes are bounded by
/// the unreduced case count, which the enumerator already requires to
/// fit `u64`).
pub fn binomial(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc * (n - i) as u128 / (i + 1) as u128;
    }
    u64::try_from(acc).expect("binomial fits u64")
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::{AllOnes, AtLeastOnes, ExplicitSet};

    #[test]
    fn binomial_small_values() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(8, 3), 56);
        assert_eq!(binomial(3, 4), 0);
        assert_eq!(binomial(64, 32), 1_832_624_140_942_590_534);
    }

    #[test]
    fn detect_accepts_counting_constraints_from_uniform_start() {
        let start = Config::ones(6);
        let classes = SymmetryClasses::detect(&AllOnes::new(6), &start).expect("symmetric");
        assert!(classes.is_fully_symmetric());
        assert_eq!(classes.n_vars(), 6);
        assert_eq!(classes.class_members(0), &[0, 1, 2, 3, 4, 5]);
        assert!(SymmetryClasses::detect(&AtLeastOnes::new(6, 2), &start).is_some());
    }

    #[test]
    fn detect_rejects_undeclared_and_mismatched() {
        let set: ExplicitSet = ["1111".parse().unwrap()].into_iter().collect();
        assert!(SymmetryClasses::detect(&set, &Config::ones(4)).is_none());
        // Declared arity differs from the start length.
        assert!(SymmetryClasses::detect(&AllOnes::new(5), &Config::ones(4)).is_none());
    }

    #[test]
    fn mixed_start_within_a_class_blocks_reduction() {
        // AtLeastOnes(4, 2) is symmetric, but a start of 1100 is not
        // class-constant, so permutations move the start and orbits are
        // not verdict-uniform.
        let start: Config = "1100".parse().unwrap();
        assert!(SymmetryClasses::detect(&AtLeastOnes::new(4, 2), &start).is_none());
        // A uniform start is fine.
        assert!(SymmetryClasses::detect(&AtLeastOnes::new(4, 2), &Config::ones(4)).is_some());
    }

    #[test]
    fn fully_symmetric_orbits_are_damage_sizes() {
        let classes = SymmetryClasses::detect(&AllOnes::new(8), &Config::ones(8)).unwrap();
        let orbits = classes.damage_orbits(3);
        assert_eq!(orbits.len(), 3);
        for (i, orbit) in orbits.iter().enumerate() {
            let s = i + 1;
            assert_eq!(orbit.size, binomial(8, s));
            // Representative is the prefix {0..s-1} — the lowest-ranked
            // member of the size-s orbit.
            let want: Vec<usize> = (0..s).collect();
            assert_eq!(orbit.representative, want);
        }
        let total: u64 = orbits.iter().map(|o| o.size).sum();
        assert_eq!(total, 8 + 28 + 56);
    }

    #[test]
    fn orbit_sizes_partition_the_case_count() {
        // Two-class partition exercised directly (no constraint in the
        // workspace declares one yet, but the machinery is general).
        let classes = SymmetryClasses {
            class_of: vec![0, 0, 1, 1, 1],
            members: vec![vec![0, 1], vec![2, 3, 4]],
        };
        let orbits = classes.damage_orbits(2);
        let total: u64 = orbits.iter().map(|o| o.size).sum();
        assert_eq!(total, 5 + 10); // C(5,1) + C(5,2)
        for orbit in &orbits {
            // Representative matches its signature and is ascending.
            let mut per_class = vec![0usize; 2];
            for &v in &orbit.representative {
                per_class[classes.class_of(v)] += 1;
            }
            assert_eq!(per_class, orbit.signature);
            assert!(orbit.representative.windows(2).all(|w| w[0] < w[1]));
        }
        // Representatives are unique.
        let mut reps: Vec<_> = orbits.iter().map(|o| o.representative.clone()).collect();
        reps.sort();
        reps.dedup();
        assert_eq!(reps.len(), orbits.len());
    }

    #[test]
    fn preorder_cmp_matches_enumeration_rank() {
        // Preorder over {0..3}, max size 2: {0}, {0,1}, {0,2}, {1}, {1,2}, {2}.
        let order: Vec<Vec<usize>> = vec![
            vec![0],
            vec![0, 1],
            vec![0, 2],
            vec![1],
            vec![1, 2],
            vec![2],
        ];
        for i in 0..order.len() {
            for j in 0..order.len() {
                assert_eq!(
                    preorder_cmp(&order[i], &order[j]),
                    i.cmp(&j),
                    "{:?} vs {:?}",
                    order[i],
                    order[j]
                );
            }
        }
    }
}

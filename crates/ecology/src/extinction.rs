//! Mass-extinction experiments (the paper's §3.2.1).
//!
//! "The Permian–Triassic extinction event … caused up to 96% of marine
//! species to become extinct. One of the reasons that the biological
//! systems as a whole survived is because of their diversity — some species
//! had better capability to deal with changing environments."
//!
//! Model: each species has a scalar *trait*; the environment has an
//! *optimum* and a *tolerance*; a species survives a period iff its trait
//! is within tolerance of the optimum. An extinction event jumps the
//! optimum. Communities with more trait diversity are more likely to have
//! at least one survivor.

use rand::Rng;

use crate::diversity::diversity_index;

/// A community of species with scalar traits and populations.
#[derive(Debug, Clone, PartialEq)]
pub struct Community {
    /// Trait value per species.
    pub traits: Vec<f64>,
    /// Population per species.
    pub populations: Vec<f64>,
}

impl Community {
    /// A monoculture: all population in one trait value.
    pub fn monoculture(trait_value: f64, population: f64) -> Self {
        Community {
            traits: vec![trait_value],
            populations: vec![population],
        }
    }

    /// A community of `n` species with traits spread uniformly over
    /// `center ± spread`, equal populations.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn spread(n: usize, center: f64, spread: f64, total_population: f64) -> Self {
        assert!(n > 0, "a community needs at least one species");
        let traits = (0..n)
            .map(|i| {
                if n == 1 {
                    center
                } else {
                    center - spread + 2.0 * spread * i as f64 / (n - 1) as f64
                }
            })
            .collect();
        Community {
            traits,
            populations: vec![total_population / n as f64; n],
        }
    }

    /// Inverse-Simpson diversity of the community.
    pub fn diversity(&self) -> f64 {
        diversity_index(&self.populations).unwrap_or(0.0)
    }

    /// Species (indices) surviving an environment with the given optimum
    /// and tolerance.
    pub fn survivors(&self, optimum: f64, tolerance: f64) -> Vec<usize> {
        self.traits
            .iter()
            .enumerate()
            .filter(|&(i, &t)| self.populations[i] > 0.0 && (t - optimum).abs() <= tolerance)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Parameters of the extinction experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtinctionExperiment {
    /// Environmental optimum before the event.
    pub initial_optimum: f64,
    /// Survival tolerance around the optimum.
    pub tolerance: f64,
    /// Magnitude scale of the shock (optimum jump is uniform in
    /// `±shock_scale`).
    pub shock_scale: f64,
}

/// Aggregate outcome over many shock realizations.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtinctionOutcome {
    /// Trials run.
    pub trials: usize,
    /// Trials in which at least one species survived.
    pub survivals: usize,
    /// Mean fraction of species surviving per trial.
    pub mean_survivor_fraction: f64,
}

impl ExtinctionOutcome {
    /// Probability the community as a whole persisted.
    pub fn survival_probability(&self) -> f64 {
        if self.trials == 0 {
            1.0
        } else {
            self.survivals as f64 / self.trials as f64
        }
    }
}

impl ExtinctionExperiment {
    /// Run `trials` independent shock realizations against `community`.
    pub fn run<R: Rng + ?Sized>(
        &self,
        community: &Community,
        trials: usize,
        rng: &mut R,
    ) -> ExtinctionOutcome {
        let mut survivals = 0;
        let mut frac_sum = 0.0;
        let n = community.traits.len().max(1);
        for _ in 0..trials {
            let jump = rng.gen_range(-self.shock_scale..=self.shock_scale);
            let new_optimum = self.initial_optimum + jump;
            let survivors = community.survivors(new_optimum, self.tolerance);
            if !survivors.is_empty() {
                survivals += 1;
            }
            frac_sum += survivors.len() as f64 / n as f64;
        }
        ExtinctionOutcome {
            trials,
            survivals,
            mean_survivor_fraction: frac_sum / trials.max(1) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::seeded_rng;

    #[test]
    fn spread_community_layout() {
        let c = Community::spread(5, 0.0, 2.0, 100.0);
        assert_eq!(c.traits.len(), 5);
        assert_eq!(c.traits[0], -2.0);
        assert_eq!(c.traits[4], 2.0);
        assert!((c.populations.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert!((c.diversity() - 5.0).abs() < 1e-9);
        let mono = Community::monoculture(0.0, 100.0);
        assert!((mono.diversity() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn survivors_respect_tolerance() {
        let c = Community::spread(5, 0.0, 2.0, 100.0);
        // Optimum at 2.0, tolerance 0.5: only the trait-2.0 species.
        assert_eq!(c.survivors(2.0, 0.5), vec![4]);
        // Wide tolerance: everyone.
        assert_eq!(c.survivors(0.0, 3.0).len(), 5);
        // Nobody.
        assert!(c.survivors(10.0, 0.5).is_empty());
    }

    #[test]
    fn extinct_species_do_not_survive() {
        let mut c = Community::spread(3, 0.0, 1.0, 30.0);
        c.populations[1] = 0.0;
        assert_eq!(c.survivors(0.0, 10.0), vec![0, 2]);
    }

    /// The E6 reproduction: diversity buys survival under large shocks.
    #[test]
    fn diverse_community_outlives_monoculture() {
        let mut rng = seeded_rng(71);
        let exp = ExtinctionExperiment {
            initial_optimum: 0.0,
            tolerance: 0.5,
            shock_scale: 3.0,
        };
        let mono = Community::monoculture(0.0, 100.0);
        let diverse = Community::spread(20, 0.0, 3.0, 100.0);
        let mono_out = exp.run(&mono, 3_000, &mut rng);
        let div_out = exp.run(&diverse, 3_000, &mut rng);
        // Monoculture survives only if the jump stays within ±0.5 of 0:
        // probability ≈ 1/6.
        assert!(
            (mono_out.survival_probability() - 1.0 / 6.0).abs() < 0.05,
            "mono {}",
            mono_out.survival_probability()
        );
        // The spread community covers ±3 with tolerance 0.5 ⇒ ~always
        // someone survives.
        assert!(
            div_out.survival_probability() > 0.95,
            "diverse {}",
            div_out.survival_probability()
        );
    }

    #[test]
    fn diversity_trades_mean_for_tail() {
        // Under *small* shocks the monoculture (optimally placed) does
        // fine, and diversity's benefit disappears — the optimum-vs-robust
        // tradeoff of §3.2.3's investment story.
        let mut rng = seeded_rng(72);
        let exp = ExtinctionExperiment {
            initial_optimum: 0.0,
            tolerance: 0.5,
            shock_scale: 0.3,
        };
        let mono = Community::monoculture(0.0, 100.0);
        let diverse = Community::spread(20, 0.0, 3.0, 100.0);
        let mono_out = exp.run(&mono, 2_000, &mut rng);
        let div_out = exp.run(&diverse, 2_000, &mut rng);
        assert_eq!(mono_out.survival_probability(), 1.0);
        // The diverse community also survives (some species near 0)…
        assert_eq!(div_out.survival_probability(), 1.0);
        // …but its mean survivor fraction is far lower: most species are
        // poorly adapted to the mild environment.
        assert!(div_out.mean_survivor_fraction < 0.5);
        assert_eq!(mono_out.mean_survivor_fraction, 1.0);
    }

    #[test]
    fn zero_trials_is_vacuous_survival() {
        let mut rng = seeded_rng(73);
        let exp = ExtinctionExperiment {
            initial_optimum: 0.0,
            tolerance: 1.0,
            shock_scale: 1.0,
        };
        let out = exp.run(&Community::monoculture(0.0, 1.0), 0, &mut rng);
        assert_eq!(out.survival_probability(), 1.0);
    }
}

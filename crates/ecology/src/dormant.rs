//! Dormant-trait reactivation — the stickleback armor plates (the paper's
//! §3.1.1 and Fig. 1).
//!
//! "Three-spine stickleback … had lost their armor plates when they
//! migrated to fresh water … more recent samples have armor plates … they
//! regained armor plates because of the predation pressure by trouts. The
//! genotype of the armor plates was dormant (and thus, redundant) during
//! the peaceful years but became active when the necessity arose."
//!
//! Model: a biallelic locus (armored / unarmored) in a Wright–Fisher
//! population with mutation and *time-varying* selection: unarmored is
//! favored while predation is absent; armored is favored once predators
//! return. The dormant allele persists at mutation–selection balance (the
//! population's redundancy reserve) and sweeps back when selection flips.

use rand::Rng;

use resilience_core::TimeSeries;

/// The stickleback locus model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DormantTraitModel {
    /// Population size.
    pub population: usize,
    /// Selection against the armored allele in peace (armored fitness
    /// `1 − cost` without predators: plates are expensive).
    pub armor_cost: f64,
    /// Selection for the armored allele under predation (armored fitness
    /// `1 + benefit` with predators).
    pub armor_benefit: f64,
    /// Per-generation, per-individual mutation rate between alleles
    /// (symmetric).
    pub mutation: f64,
}

/// Result of a predation-cycle simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct DormantTraitOutcome {
    /// Armored-allele frequency per generation.
    pub armored_frequency: TimeSeries,
    /// Frequency at the end of the peaceful era (the dormant reserve).
    pub dormant_reserve: f64,
    /// Generations after predation onset until armored frequency exceeded
    /// 0.5, if it did.
    pub recovery_generations: Option<usize>,
}

impl Default for DormantTraitModel {
    fn default() -> Self {
        DormantTraitModel {
            population: 2_000,
            armor_cost: 0.05,
            armor_benefit: 0.1,
            mutation: 1e-3,
        }
    }
}

impl DormantTraitModel {
    /// Simulate `peace_generations` without predators followed by
    /// `predation_generations` with predators, starting from armored
    /// frequency `initial_armored`.
    pub fn simulate<R: Rng + ?Sized>(
        &self,
        initial_armored: f64,
        peace_generations: usize,
        predation_generations: usize,
        rng: &mut R,
    ) -> DormantTraitOutcome {
        let n = self.population;
        let mut count = ((initial_armored.clamp(0.0, 1.0)) * n as f64).round() as usize;
        let mut freq_series = TimeSeries::new();
        let mut dormant_reserve = 0.0;
        let mut recovery_generations = None;
        let total = peace_generations + predation_generations;
        for generation in 0..total {
            let predation = generation >= peace_generations;
            let s = if predation {
                self.armor_benefit
            } else {
                -self.armor_cost
            };
            let p = count as f64 / n as f64;
            // Selection.
            let p_sel = (p * (1.0 + s) / (1.0 + p * s)).clamp(0.0, 1.0);
            // Symmetric mutation.
            let p_mut = p_sel * (1.0 - self.mutation) + (1.0 - p_sel) * self.mutation;
            // Wright–Fisher resampling.
            count = binomial(n, p_mut, rng);
            let freq = count as f64 / n as f64;
            freq_series.push(freq);
            if generation + 1 == peace_generations {
                dormant_reserve = freq;
            }
            if predation && recovery_generations.is_none() && freq > 0.5 {
                recovery_generations = Some(generation - peace_generations + 1);
            }
        }
        DormantTraitOutcome {
            armored_frequency: freq_series,
            dormant_reserve,
            recovery_generations,
        }
    }
}

fn binomial<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> usize {
    let p = p.clamp(0.0, 1.0);
    // Normal approximation for large n, exact for small.
    if n >= 200 {
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mean + sd * z).round().clamp(0.0, n as f64) as usize
    } else {
        (0..n).filter(|_| rng.gen_bool(p)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::seeded_rng;

    /// The E7(b) reproduction: Fig. 1's armor reactivation.
    #[test]
    fn armor_goes_dormant_then_reactivates() {
        let mut rng = seeded_rng(91);
        let model = DormantTraitModel::default();
        let out = model.simulate(0.9, 400, 400, &mut rng);
        // Peace drives armor to a low (but nonzero!) dormant reserve…
        assert!(
            out.dormant_reserve < 0.1,
            "reserve {} should be low",
            out.dormant_reserve
        );
        assert!(
            out.dormant_reserve > 0.0,
            "mutation keeps the allele in reserve"
        );
        // …and predation sweeps it back.
        let recovery = out.recovery_generations.expect("armor must recover");
        assert!(recovery < 400);
        let final_freq = *out.armored_frequency.values().last().unwrap();
        assert!(final_freq > 0.8, "final armored freq {final_freq}");
    }

    #[test]
    fn standing_variation_recovers_faster_than_rare_reserve() {
        // Redundancy value: a larger dormant reserve shortens recovery.
        let mut rng = seeded_rng(92);
        let model = DormantTraitModel {
            mutation: 1e-4,
            ..DormantTraitModel::default()
        };
        let mut slow_recoveries = Vec::new();
        let mut fast_recoveries = Vec::new();
        for _ in 0..10 {
            // Small reserve: start predation era from near-zero frequency.
            let out_rare = model.simulate(0.002, 0, 600, &mut rng);
            if let Some(r) = out_rare.recovery_generations {
                slow_recoveries.push(r as f64);
            }
            let out_standing = model.simulate(0.05, 0, 600, &mut rng);
            if let Some(r) = out_standing.recovery_generations {
                fast_recoveries.push(r as f64);
            }
        }
        assert!(!fast_recoveries.is_empty());
        let fast = fast_recoveries.iter().sum::<f64>() / fast_recoveries.len() as f64;
        // Either the rare-reserve runs often failed to recover at all, or
        // they recovered more slowly on average.
        if slow_recoveries.len() == 10 {
            let slow = slow_recoveries.iter().sum::<f64>() / slow_recoveries.len() as f64;
            assert!(slow > fast, "slow {slow} vs fast {fast}");
        } else {
            assert!(slow_recoveries.len() < 10);
        }
    }

    #[test]
    fn no_mutation_and_no_reserve_means_no_recovery() {
        let mut rng = seeded_rng(93);
        let model = DormantTraitModel {
            mutation: 0.0,
            ..DormantTraitModel::default()
        };
        let out = model.simulate(0.0, 0, 300, &mut rng);
        assert_eq!(out.recovery_generations, None);
        assert_eq!(*out.armored_frequency.values().last().unwrap(), 0.0);
    }

    #[test]
    fn peaceful_era_only_keeps_armor_down() {
        let mut rng = seeded_rng(94);
        let model = DormantTraitModel::default();
        let out = model.simulate(0.5, 500, 0, &mut rng);
        assert!(out.dormant_reserve < 0.2);
        assert_eq!(out.recovery_generations, None);
    }
}

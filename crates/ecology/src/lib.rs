//! Ecological and evolutionary dynamics for the Systems Resilience project
//! (the paper's §3.1.1, §3.2.1, §3.2.4, §3.3.1).
//!
//! * [`diversity`] — the paper's Diversity Index (inverse Simpson,
//!   `G = 1/Σ qᵢ²`), Shannon entropy, richness, evenness.
//! * [`fitness`] — fitness landscapes: linear (constant), *concave /
//!   diminishing-return* (the paper's Fig. 2), and density-dependent
//!   (fitness decreasing in own population — the paper's mechanism for
//!   sustained diversity).
//! * [`replicator`] — the discrete replicator equation
//!   `pᵢᵗ⁺¹ = pᵢᵗ · πᵢ/π̄ᵗ` with optional mutation.
//! * [`weak_selection`] — Wright–Fisher allele dynamics in the
//!   near-neutral regime (Kimura/Ohta/Akashi): concave cumulative-advantage
//!   fitness makes selection on further mutations weak.
//! * [`moran`] — the Moran birth–death process with exact fixation
//!   probabilities for cross-checking.
//! * [`polarization`] — §3.2.4's closing claim: linear (financial)
//!   accumulation polarizes wealth and concentrates fragility; diminishing
//!   returns equalize.
//! * [`extinction`] — mass-extinction experiments: diverse vs. monoculture
//!   communities under abrupt environment shifts (§3.2.1).
//! * [`genome`] — redundant genomes under gene knockouts (E. coli, §3.1.1).
//! * [`dormant`] — dormant-trait reactivation (the stickleback armor
//!   plates, §3.1.1 and Fig. 1).
//!
//! # Example
//!
//! ```
//! use resilience_ecology::diversity_index;
//! // Four equally-sized species: G = 4. One dominant: G → 1.
//! assert!((diversity_index(&[25.0, 25.0, 25.0, 25.0]).unwrap() - 4.0).abs() < 1e-9);
//! assert!(diversity_index(&[97.0, 1.0, 1.0, 1.0]).unwrap() < 1.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diversity;
pub mod dormant;
pub mod extinction;
pub mod fitness;
pub mod genome;
pub mod granularity;
pub mod moran;
pub mod polarization;
pub mod replicator;
pub mod weak_selection;

pub use diversity::{diversity_index, evenness, raw_diversity_index, richness, shannon_entropy};
pub use dormant::{DormantTraitModel, DormantTraitOutcome};
pub use extinction::{ExtinctionExperiment, ExtinctionOutcome};
pub use fitness::{ConcaveFitness, DensityDependent, FitnessFn, LinearFitness};
pub use genome::{KnockoutOutcome, RedundantGenome};
pub use granularity::{hierarchical_experiment, hierarchical_survival, GranularityReport};
pub use moran::MoranProcess;
pub use polarization::{gini, top_share, WealthModel};
pub use replicator::{ReplicatorSim, ReplicatorTrajectory};
pub use weak_selection::{AlleleDynamics, SelectionRegime};

//! The discrete replicator equation (the paper's §3.2.4).
//!
//! `pᵢᵗ⁺¹ = pᵢᵗ · πᵢ / π̄ᵗ` — "the population of a fit species will get
//! larger by each generation, and the most fit species will ultimately
//! dominate the entire ecosystem without a mechanism that penalizes such
//! domination."

use std::sync::Arc;

use resilience_core::TimeSeries;

use crate::diversity::diversity_index;
use crate::fitness::FitnessFn;

/// A replicator-dynamics simulation.
///
/// # Example
///
/// ```
/// use resilience_ecology::replicator::ReplicatorSim;
/// use resilience_ecology::fitness::LinearFitness;
/// use std::sync::Arc;
///
/// // Constant fitness gradient: the fittest species takes over (§3.2.4).
/// let mut sim = ReplicatorSim::uniform(Arc::new(LinearFitness::graded(4, 0.1)));
/// let trajectory = sim.run(300);
/// assert_eq!(trajectory.dominant_species(), 3);
/// assert!(*trajectory.diversity.values().last().unwrap() < 1.1);
/// ```
#[derive(Clone)]
pub struct ReplicatorSim {
    fitness: Arc<dyn FitnessFn>,
    proportions: Vec<f64>,
    mutation: f64,
}

impl std::fmt::Debug for ReplicatorSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatorSim")
            .field("n_species", &self.proportions.len())
            .field("proportions", &self.proportions)
            .field("mutation", &self.mutation)
            .finish()
    }
}

/// Trajectory of a replicator run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicatorTrajectory {
    /// Diversity index `G` per generation.
    pub diversity: TimeSeries,
    /// Mean fitness per generation.
    pub mean_fitness: TimeSeries,
    /// Final proportions.
    pub final_proportions: Vec<f64>,
}

impl ReplicatorTrajectory {
    /// Index of the most abundant species at the end.
    pub fn dominant_species(&self) -> usize {
        self.final_proportions
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("proportions are finite"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

impl ReplicatorSim {
    /// Start from explicit proportions (normalized internally).
    ///
    /// # Panics
    ///
    /// Panics if the species count mismatches the landscape, any proportion
    /// is negative/non-finite, or all are zero.
    pub fn new(fitness: Arc<dyn FitnessFn>, initial: Vec<f64>) -> Self {
        assert_eq!(
            initial.len(),
            fitness.n_species(),
            "proportions must match the landscape's species count"
        );
        assert!(
            initial.iter().all(|p| p.is_finite() && *p >= 0.0),
            "proportions must be finite and non-negative"
        );
        let total: f64 = initial.iter().sum();
        assert!(total > 0.0, "at least one species must be present");
        let proportions = initial.iter().map(|p| p / total).collect();
        ReplicatorSim {
            fitness,
            proportions,
            mutation: 0.0,
        }
    }

    /// Start from the uniform community.
    pub fn uniform(fitness: Arc<dyn FitnessFn>) -> Self {
        let n = fitness.n_species();
        ReplicatorSim::new(fitness, vec![1.0; n])
    }

    /// Enable symmetric mutation: after selection, a fraction `mu` of each
    /// species redistributes uniformly over all species (keeps extinct
    /// types recoverable; `mu = 0` is pure selection).
    ///
    /// # Panics
    ///
    /// Panics if `mu ∉ [0, 1]`.
    pub fn with_mutation(mut self, mu: f64) -> Self {
        assert!((0.0..=1.0).contains(&mu), "mutation rate must be in [0,1]");
        self.mutation = mu;
        self
    }

    /// Current proportions (sum to 1).
    pub fn proportions(&self) -> &[f64] {
        &self.proportions
    }

    /// One generation of selection (+ optional mutation).
    pub fn step(&mut self) {
        let mean = self.fitness.mean_fitness(&self.proportions);
        if mean <= 0.0 {
            return; // degenerate landscape: freeze rather than divide by zero
        }
        let n = self.proportions.len();
        let mut next: Vec<f64> = (0..n)
            .map(|i| self.proportions[i] * self.fitness.fitness(i, &self.proportions) / mean)
            .collect();
        // Renormalize to wash out floating-point drift.
        let total: f64 = next.iter().sum();
        for p in &mut next {
            *p /= total;
        }
        if self.mutation > 0.0 {
            let share = self.mutation / n as f64;
            for p in &mut next {
                *p = *p * (1.0 - self.mutation) + share;
            }
        }
        self.proportions = next;
    }

    /// Run `generations` steps, recording diversity and mean fitness.
    pub fn run(&mut self, generations: usize) -> ReplicatorTrajectory {
        let mut diversity = TimeSeries::new();
        let mut mean_fitness = TimeSeries::new();
        diversity.push(diversity_index(&self.proportions).unwrap_or(f64::NAN));
        mean_fitness.push(self.fitness.mean_fitness(&self.proportions));
        for _ in 0..generations {
            self.step();
            diversity.push(diversity_index(&self.proportions).unwrap_or(f64::NAN));
            mean_fitness.push(self.fitness.mean_fitness(&self.proportions));
        }
        ReplicatorTrajectory {
            diversity,
            mean_fitness,
            final_proportions: self.proportions.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::{DensityDependent, LinearFitness};

    #[test]
    fn fitter_species_grows() {
        let f = Arc::new(LinearFitness::new(vec![1.0, 1.2]));
        let mut sim = ReplicatorSim::uniform(f);
        sim.step();
        let p = sim.proportions();
        assert!(p[1] > 0.5, "fitter species should exceed half: {p:?}");
        assert!((p[0] + p[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fitness_collapses_diversity() {
        // The paper's §3.2.4 claim: without a penalizing mechanism, the
        // most fit species ultimately dominates.
        let f = Arc::new(LinearFitness::graded(5, 0.1));
        let mut sim = ReplicatorSim::uniform(f);
        let traj = sim.run(400);
        assert_eq!(traj.dominant_species(), 4);
        assert!(traj.final_proportions[4] > 0.99);
        let g_start = traj.diversity.values()[0];
        let g_end = *traj.diversity.values().last().unwrap();
        assert!((g_start - 5.0).abs() < 1e-9);
        assert!(g_end < 1.05, "diversity collapsed to {g_end}");
    }

    #[test]
    fn density_dependence_preserves_diversity() {
        // The paper's counter-mechanism: decreasing π(p) gives space to
        // other species.
        let f = Arc::new(DensityDependent::new(vec![1.0, 1.05, 1.1, 1.15, 1.2], 0.9));
        let mut sim = ReplicatorSim::uniform(f);
        let traj = sim.run(400);
        let g_end = *traj.diversity.values().last().unwrap();
        assert!(g_end > 2.5, "diversity retained: G = {g_end}");
        // Every species survives.
        assert!(traj.final_proportions.iter().all(|&p| p > 0.01));
    }

    #[test]
    fn mean_fitness_nondecreasing_under_constant_landscape() {
        // Fisher's fundamental theorem (discrete flavor) holds for
        // frequency-independent fitness.
        let f = Arc::new(LinearFitness::graded(4, 0.2));
        let mut sim = ReplicatorSim::uniform(f);
        let traj = sim.run(100);
        for w in traj.mean_fitness.values().windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn mutation_keeps_extinct_types_alive() {
        let f = Arc::new(LinearFitness::graded(3, 0.5));
        let mut sim = ReplicatorSim::new(f, vec![1.0, 1.0, 0.0]).with_mutation(0.01);
        let traj = sim.run(200);
        // Species 2 was absent but mutation reintroduces it; being fittest
        // it then dominates.
        assert!(traj.final_proportions[2] > 0.5);
    }

    #[test]
    fn extinct_stays_extinct_without_mutation() {
        let f = Arc::new(LinearFitness::graded(3, 0.5));
        let mut sim = ReplicatorSim::new(f, vec![1.0, 1.0, 0.0]);
        let traj = sim.run(200);
        assert_eq!(traj.final_proportions[2], 0.0);
    }

    #[test]
    fn proportions_always_normalized() {
        let f = Arc::new(LinearFitness::graded(6, 0.3));
        let mut sim = ReplicatorSim::uniform(f).with_mutation(0.05);
        for _ in 0..50 {
            sim.step();
            let total: f64 = sim.proportions().iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "match the landscape")]
    fn mismatched_lengths_rejected() {
        let f = Arc::new(LinearFitness::graded(3, 0.1));
        let _ = ReplicatorSim::new(f, vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one species")]
    fn all_zero_rejected() {
        let f = Arc::new(LinearFitness::graded(2, 0.1));
        let _ = ReplicatorSim::new(f, vec![0.0, 0.0]);
    }

    #[test]
    fn debug_is_informative() {
        let f = Arc::new(LinearFitness::graded(2, 0.1));
        let sim = ReplicatorSim::uniform(f);
        assert!(format!("{sim:?}").contains("n_species"));
    }
}

//! Redundant genomes under gene knockouts (the paper's §3.1.1).
//!
//! "E. Coli has approximately 4,300 genes, each of which has its unique
//! function, but almost 4,000 of them are known to be redundant — that is,
//! knocking out one of them will not hamper its ability to reproduce"
//! (Baba et al., the Keio collection).
//!
//! Model: a genome of `g` genes of which `e` are *essential*; a knockout
//! of an essential gene is lethal. Redundancy = the non-essential fraction.

use rand::seq::index::sample;
use rand::Rng;

/// A genome with a designated essential subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedundantGenome {
    genes: usize,
    essential: usize,
}

/// Outcome of a batch of knockout experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct KnockoutOutcome {
    /// Trials run.
    pub trials: usize,
    /// Trials in which the organism remained viable.
    pub viable: usize,
}

impl KnockoutOutcome {
    /// Fraction of knockout trials that stayed viable.
    pub fn viability(&self) -> f64 {
        if self.trials == 0 {
            1.0
        } else {
            self.viable as f64 / self.trials as f64
        }
    }
}

impl RedundantGenome {
    /// A genome of `genes` genes, the first `essential` of which are
    /// essential.
    ///
    /// # Panics
    ///
    /// Panics if `essential > genes` or `genes == 0`.
    pub fn new(genes: usize, essential: usize) -> Self {
        assert!(genes > 0, "a genome needs at least one gene");
        assert!(
            essential <= genes,
            "essential subset cannot exceed the genome"
        );
        RedundantGenome { genes, essential }
    }

    /// The E. coli numbers from the paper: 4,300 genes, ~300 essential
    /// (≈ 4,000 redundant).
    pub fn e_coli() -> Self {
        RedundantGenome::new(4_300, 300)
    }

    /// Total gene count.
    pub fn genes(&self) -> usize {
        self.genes
    }

    /// Essential gene count.
    pub fn essential(&self) -> usize {
        self.essential
    }

    /// Redundant (non-essential) fraction of the genome.
    pub fn redundancy(&self) -> f64 {
        (self.genes - self.essential) as f64 / self.genes as f64
    }

    /// Probability that a *single* uniformly-random knockout is viable
    /// (exact).
    pub fn single_knockout_viability(&self) -> f64 {
        self.redundancy()
    }

    /// Probability that knocking out `k` distinct uniformly-random genes
    /// is viable (exact, hypergeometric: all `k` must miss the essential
    /// set).
    pub fn multi_knockout_viability(&self, k: usize) -> f64 {
        if k > self.genes - self.essential {
            return 0.0;
        }
        // Π_{i=0..k-1} (redundant − i) / (genes − i)
        let mut p = 1.0;
        for i in 0..k {
            p *= (self.genes - self.essential - i) as f64 / (self.genes - i) as f64;
        }
        p
    }

    /// Monte-Carlo knockout experiment: `trials` experiments each knocking
    /// out `k` distinct random genes.
    pub fn knockout_trials<R: Rng + ?Sized>(
        &self,
        k: usize,
        trials: usize,
        rng: &mut R,
    ) -> KnockoutOutcome {
        let mut viable = 0;
        for _ in 0..trials {
            let k = k.min(self.genes);
            let lethal = sample(rng, self.genes, k)
                .into_iter()
                .any(|g| g < self.essential);
            if !lethal {
                viable += 1;
            }
        }
        KnockoutOutcome { trials, viable }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use resilience_core::seeded_rng;

    #[test]
    fn e_coli_numbers() {
        let g = RedundantGenome::e_coli();
        assert_eq!(g.genes(), 4_300);
        assert_eq!(g.essential(), 300);
        // "almost 4,000 of them are known to be redundant"
        assert!((g.redundancy() - 4_000.0 / 4_300.0).abs() < 1e-12);
        assert!(g.single_knockout_viability() > 0.9);
    }

    #[test]
    fn single_knockout_matches_fraction() {
        let g = RedundantGenome::new(100, 25);
        assert!((g.single_knockout_viability() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn multi_knockout_exact_values() {
        let g = RedundantGenome::new(4, 1);
        // k=1: 3/4. k=2: 3/4 · 2/3 = 1/2. k=3: 1/2 · 1/2 = 1/4.
        assert!((g.multi_knockout_viability(1) - 0.75).abs() < 1e-12);
        assert!((g.multi_knockout_viability(2) - 0.5).abs() < 1e-12);
        assert!((g.multi_knockout_viability(3) - 0.25).abs() < 1e-12);
        assert_eq!(g.multi_knockout_viability(4), 0.0);
    }

    #[test]
    fn zero_knockouts_always_viable() {
        let g = RedundantGenome::new(10, 5);
        assert_eq!(g.multi_knockout_viability(0), 1.0);
    }

    #[test]
    fn monte_carlo_matches_exact() {
        let mut rng = seeded_rng(81);
        let g = RedundantGenome::new(200, 40);
        for k in [1usize, 3, 10] {
            let out = g.knockout_trials(k, 20_000, &mut rng);
            let exact = g.multi_knockout_viability(k);
            assert!(
                (out.viability() - exact).abs() < 0.02,
                "k={k}: mc {} vs exact {exact}",
                out.viability()
            );
        }
    }

    #[test]
    fn no_redundancy_means_no_viability() {
        let mut rng = seeded_rng(82);
        let fragile = RedundantGenome::new(50, 50);
        assert_eq!(fragile.single_knockout_viability(), 0.0);
        let out = fragile.knockout_trials(1, 100, &mut rng);
        assert_eq!(out.viability(), 0.0);
    }

    #[test]
    #[should_panic(expected = "essential subset")]
    fn rejects_impossible_essential_count() {
        let _ = RedundantGenome::new(5, 6);
    }

    proptest! {
        #[test]
        fn prop_viability_decreases_in_k(genes in 10usize..200, ess_frac in 0.1f64..0.9) {
            let essential = ((genes as f64) * ess_frac) as usize;
            let g = RedundantGenome::new(genes, essential);
            let mut prev = 1.0;
            for k in 1..genes.min(20) {
                let v = g.multi_knockout_viability(k);
                prop_assert!(v <= prev + 1e-12);
                prev = v;
            }
        }

        #[test]
        fn prop_more_redundancy_more_viability(genes in 20usize..200, k in 1usize..5) {
            let tight = RedundantGenome::new(genes, genes / 2);
            let loose = RedundantGenome::new(genes, genes / 10);
            prop_assert!(loose.multi_knockout_viability(k) >= tight.multi_knockout_viability(k));
        }
    }
}

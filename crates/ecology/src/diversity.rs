//! Diversity indices (the paper's §3.2.4).
//!
//! The paper defines the Diversity Index of an ecosystem with populations
//! `pᵢ` as `G = (Σ pᵢ²/N)⁻¹` and notes it is maximal when all species are
//! equal and minimal when one dominates. The text's formula has a typo
//! (dimensional analysis and the stated extremes only work on
//! *proportions*); the intended quantity is the standard **inverse Simpson
//! index** `G = 1/Σ qᵢ²` over proportions `qᵢ = pᵢ/Σp`, which ranges from 1
//! (monoculture) to N (uniform). Both the corrected and the literal
//! formulas are provided.

use resilience_core::error::invalid_param;
use resilience_core::CoreError;

fn validate(populations: &[f64]) -> Result<f64, CoreError> {
    if populations.is_empty() {
        return Err(invalid_param("populations", "must be non-empty"));
    }
    let mut total = 0.0;
    for &p in populations {
        if !p.is_finite() || p < 0.0 {
            return Err(invalid_param(
                "populations",
                format!("entries must be finite and non-negative, got {p}"),
            ));
        }
        total += p;
    }
    if total <= 0.0 {
        return Err(invalid_param("populations", "total population is zero"));
    }
    Ok(total)
}

/// Inverse Simpson diversity `G = 1/Σ qᵢ²` over proportions.
///
/// `G = N` for `N` equal species; `G → 1` under monoculture.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for empty, negative, non-finite,
/// or all-zero populations.
pub fn diversity_index(populations: &[f64]) -> Result<f64, CoreError> {
    let total = validate(populations)?;
    let sum_sq: f64 = populations.iter().map(|p| (p / total).powi(2)).sum();
    Ok(1.0 / sum_sq)
}

/// The paper's formula exactly as printed: `G = (Σ pᵢ²/N)⁻¹` over raw
/// populations (not proportions). Kept for fidelity; prefer
/// [`diversity_index`].
///
/// # Errors
///
/// Same domain errors as [`diversity_index`].
pub fn raw_diversity_index(populations: &[f64]) -> Result<f64, CoreError> {
    validate(populations)?;
    let n = populations.len() as f64;
    let sum_sq: f64 = populations.iter().map(|p| p * p / n).sum();
    Ok(1.0 / sum_sq)
}

/// Shannon entropy `H = −Σ qᵢ ln qᵢ` (nats). Zero-population species
/// contribute zero.
///
/// # Errors
///
/// Same domain errors as [`diversity_index`].
pub fn shannon_entropy(populations: &[f64]) -> Result<f64, CoreError> {
    let total = validate(populations)?;
    Ok(populations
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| {
            let q = p / total;
            -q * q.ln()
        })
        .sum())
}

/// Species richness: the number of species with positive population.
pub fn richness(populations: &[f64]) -> usize {
    populations.iter().filter(|&&p| p > 0.0).count()
}

/// Pielou evenness `H / ln(richness)`, in `[0, 1]`; 1 when all extant
/// species are equal. Defined as 1.0 when richness ≤ 1.
///
/// # Errors
///
/// Same domain errors as [`diversity_index`].
pub fn evenness(populations: &[f64]) -> Result<f64, CoreError> {
    let h = shannon_entropy(populations)?;
    let r = richness(populations);
    if r <= 1 {
        Ok(1.0)
    } else {
        Ok(h / (r as f64).ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_population_has_g_equal_n() {
        for n in [1usize, 2, 5, 50] {
            let pops = vec![10.0; n];
            let g = diversity_index(&pops).unwrap();
            assert!((g - n as f64).abs() < 1e-9, "n={n}: G={g}");
        }
    }

    #[test]
    fn monoculture_has_g_one() {
        let g = diversity_index(&[42.0, 0.0, 0.0]).unwrap();
        assert!((g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dominance_pushes_g_toward_one() {
        let g_even = diversity_index(&[1.0, 1.0, 1.0, 1.0]).unwrap();
        let g_skew = diversity_index(&[10.0, 1.0, 1.0, 1.0]).unwrap();
        let g_dom = diversity_index(&[100.0, 1.0, 1.0, 1.0]).unwrap();
        assert!(g_even > g_skew && g_skew > g_dom);
        assert!(g_dom > 1.0 && g_dom < 1.1);
    }

    #[test]
    fn scale_invariance() {
        let a = diversity_index(&[1.0, 2.0, 3.0]).unwrap();
        let b = diversity_index(&[10.0, 20.0, 30.0]).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn raw_index_matches_paper_extremes_shape() {
        // The paper: "takes the largest value 1/p² when all species have
        // the same size p". With N species of size p: Σ pᵢ²/N = p², so
        // G_raw = 1/p².
        let p = 3.0;
        let g = raw_diversity_index(&[p, p, p, p]).unwrap();
        assert!((g - 1.0 / (p * p)).abs() < 1e-12);
        // "smallest when one species dominates: p₁ = N·p ⇒ G = 1/(p²N)".
        let n = 4.0;
        let g_dom = raw_diversity_index(&[n * p, 0.0, 0.0, 0.0]).unwrap();
        assert!((g_dom - 1.0 / (p * p * n)).abs() < 1e-12);
        assert!(g > g_dom);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(diversity_index(&[]).is_err());
        assert!(diversity_index(&[-1.0, 2.0]).is_err());
        assert!(diversity_index(&[f64::NAN]).is_err());
        assert!(diversity_index(&[0.0, 0.0]).is_err());
        assert!(raw_diversity_index(&[]).is_err());
        assert!(shannon_entropy(&[]).is_err());
        assert!(evenness(&[]).is_err());
    }

    #[test]
    fn shannon_extremes() {
        let h_uniform = shannon_entropy(&[1.0, 1.0, 1.0, 1.0]).unwrap();
        assert!((h_uniform - (4.0f64).ln()).abs() < 1e-12);
        let h_mono = shannon_entropy(&[5.0, 0.0, 0.0]).unwrap();
        assert!(h_mono.abs() < 1e-12);
    }

    #[test]
    fn richness_and_evenness() {
        assert_eq!(richness(&[1.0, 0.0, 2.0]), 2);
        assert_eq!(richness(&[0.0]), 0);
        assert!((evenness(&[3.0, 3.0, 3.0]).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(evenness(&[3.0, 0.0]).unwrap(), 1.0); // richness 1
        assert!(evenness(&[10.0, 1.0, 1.0]).unwrap() < 0.8);
    }

    proptest! {
        #[test]
        fn prop_g_between_one_and_n(pops in proptest::collection::vec(0.001f64..1e6, 1..40)) {
            let g = diversity_index(&pops).unwrap();
            prop_assert!(g >= 1.0 - 1e-9);
            prop_assert!(g <= pops.len() as f64 + 1e-9);
        }

        #[test]
        fn prop_shannon_le_ln_n(pops in proptest::collection::vec(0.001f64..1e6, 1..40)) {
            let h = shannon_entropy(&pops).unwrap();
            prop_assert!(h >= -1e-12);
            prop_assert!(h <= (pops.len() as f64).ln() + 1e-9);
        }

        #[test]
        fn prop_evenness_in_unit_interval(pops in proptest::collection::vec(0.001f64..1e6, 1..40)) {
            let e = evenness(&pops).unwrap();
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&e));
        }
    }
}

//! Weak selection and the near-neutral theory (the paper's §3.2.4 and
//! Fig. 2; Kimura 1968, Ohta 1992, Akashi et al. 2012).
//!
//! A new allele with selection coefficient `s` in a haploid Wright–Fisher
//! population of size `N` fixes with probability
//! `u(s) = (1 − e^(−2s)) / (1 − e^(−2Ns))` (Kimura). When `|Ns| ≲ 1` the
//! allele behaves *nearly neutrally*: even slightly deleterious mutations
//! fix at appreciable rates — which, combined with Fig. 2's concave
//! fitness (selection coefficients shrinking as cumulative advantage
//! grows), explains "why we observe so much of slightly deleterious
//! mutations in the nature".

use rand::Rng;

use crate::fitness::ConcaveFitness;

/// Classification of a mutation's selection regime by `|2Ns|` (Ohta's
/// near-neutral zone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectionRegime {
    /// `|2Ns| < 0.5` — drift dominates entirely.
    EffectivelyNeutral,
    /// `0.5 ≤ |2Ns| < 4` — selection and drift comparable (the
    /// near-neutral zone).
    NearlyNeutral,
    /// `|2Ns| ≥ 4` — selection dominates.
    Strong,
}

impl SelectionRegime {
    /// Classify a selection coefficient in a population of size `n`.
    pub fn classify(n: usize, s: f64) -> SelectionRegime {
        let x = (2.0 * n as f64 * s).abs();
        if x < 0.5 {
            SelectionRegime::EffectivelyNeutral
        } else if x < 4.0 {
            SelectionRegime::NearlyNeutral
        } else {
            SelectionRegime::Strong
        }
    }
}

/// Haploid Wright–Fisher dynamics of a biallelic locus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlleleDynamics {
    /// Population size.
    pub n: usize,
    /// Selection coefficient of the focal allele (relative fitness 1+s).
    pub s: f64,
}

impl AlleleDynamics {
    /// New dynamics.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s ≤ −1` (fitness must stay positive).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "population size must be positive");
        assert!(
            s > -1.0 && s.is_finite(),
            "selection coefficient must exceed -1"
        );
        AlleleDynamics { n, s }
    }

    /// Kimura's fixation probability for an allele starting at one copy.
    pub fn fixation_probability(&self) -> f64 {
        let n = self.n as f64;
        if self.s.abs() < 1e-12 {
            return 1.0 / n;
        }
        let num = 1.0 - (-2.0 * self.s).exp();
        let den = 1.0 - (-2.0 * n * self.s).exp();
        num / den
    }

    /// The regime of this locus.
    pub fn regime(&self) -> SelectionRegime {
        SelectionRegime::classify(self.n, self.s)
    }

    /// Simulate one trajectory from `copies` initial copies until fixation
    /// (`true`) or loss (`false`).
    pub fn simulate_to_fixation<R: Rng + ?Sized>(&self, copies: usize, rng: &mut R) -> bool {
        let mut i = copies.min(self.n);
        loop {
            if i == 0 {
                return false;
            }
            if i == self.n {
                return true;
            }
            let p = i as f64 / self.n as f64;
            // Selection shifts the sampling probability.
            let p_sel = p * (1.0 + self.s) / (1.0 + p * self.s);
            i = binomial(self.n, p_sel, rng);
        }
    }

    /// Monte-Carlo fixation probability from a single copy.
    pub fn simulate_fixation_probability<R: Rng + ?Sized>(
        &self,
        trials: usize,
        rng: &mut R,
    ) -> f64 {
        let fixed = (0..trials)
            .filter(|_| self.simulate_to_fixation(1, rng))
            .count();
        fixed as f64 / trials.max(1) as f64
    }
}

/// One fixed mutation in the accumulation experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedMutation {
    /// Advantage level the lineage had when the mutation arose.
    pub background_advantage: f64,
    /// The mutation's selection coefficient on that background.
    pub s: f64,
    /// Whether the mutation was deleterious (`s < 0`).
    pub deleterious: bool,
}

/// The Akashi et al. experiment behind Fig. 2: a lineage accumulates
/// mutations; fitness is a concave function of cumulative advantage, so
/// the selection coefficient of each ±1-advantage mutation shrinks as the
/// lineage climbs. Track which mutations *fix* (by Kimura probability).
///
/// Returns the list of fixed mutations in order.
pub fn concave_accumulation<R: Rng + ?Sized>(
    landscape: &ConcaveFitness,
    population: usize,
    attempts: usize,
    rng: &mut R,
) -> Vec<FixedMutation> {
    let mut advantage: f64 = 5.0; // start partway up the curve
    let mut fixed = Vec::new();
    for _ in 0..attempts {
        // Half the proposed mutations are deleterious, half beneficial.
        let delta = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        let target = (advantage + delta).max(0.0);
        let s = landscape.at(target) / landscape.at(advantage) - 1.0;
        let dynamics = AlleleDynamics::new(population, s.max(-0.99));
        if rng.gen_bool(dynamics.fixation_probability().clamp(0.0, 1.0)) {
            fixed.push(FixedMutation {
                background_advantage: advantage,
                s,
                deleterious: s < 0.0,
            });
            advantage = target;
        }
    }
    fixed
}

/// Sample `Binomial(n, p)` by inversion for moderate `n` (exact, O(n) worst
/// case; fine for the population sizes used here).
fn binomial<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> usize {
    let p = p.clamp(0.0, 1.0);
    let mut count = 0;
    for _ in 0..n {
        if rng.gen_bool(p) {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::seeded_rng;

    #[test]
    fn neutral_fixation_is_one_over_n() {
        let d = AlleleDynamics::new(100, 0.0);
        assert!((d.fixation_probability() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn beneficial_fixes_more_deleterious_less() {
        let neutral = AlleleDynamics::new(100, 0.0).fixation_probability();
        let good = AlleleDynamics::new(100, 0.05).fixation_probability();
        let bad = AlleleDynamics::new(100, -0.05).fixation_probability();
        assert!(good > neutral && neutral > bad);
        // Strongly beneficial: ≈ 2s.
        let strong = AlleleDynamics::new(10_000, 0.05).fixation_probability();
        assert!((strong - (1.0 - (-0.1f64).exp())).abs() < 1e-6);
    }

    #[test]
    fn regime_classification() {
        assert_eq!(
            SelectionRegime::classify(100, 0.001),
            SelectionRegime::EffectivelyNeutral
        );
        assert_eq!(
            SelectionRegime::classify(100, 0.01),
            SelectionRegime::NearlyNeutral
        );
        assert_eq!(SelectionRegime::classify(100, 0.5), SelectionRegime::Strong);
        assert_eq!(
            AlleleDynamics::new(100, -0.01).regime(),
            SelectionRegime::NearlyNeutral
        );
    }

    #[test]
    fn simulation_matches_kimura() {
        let mut rng = seeded_rng(51);
        let d = AlleleDynamics::new(50, 0.02);
        let sim = d.simulate_fixation_probability(4_000, &mut rng);
        let theory = d.fixation_probability();
        assert!((sim - theory).abs() < 0.015, "sim {sim} vs theory {theory}");
    }

    #[test]
    fn neutral_simulation_matches_one_over_n() {
        let mut rng = seeded_rng(52);
        let d = AlleleDynamics::new(40, 0.0);
        let sim = d.simulate_fixation_probability(4_000, &mut rng);
        assert!((sim - 0.025).abs() < 0.012, "sim {sim}");
    }

    #[test]
    fn fixation_from_full_population_is_certain() {
        let mut rng = seeded_rng(53);
        let d = AlleleDynamics::new(30, -0.1);
        assert!(d.simulate_to_fixation(30, &mut rng));
        assert!(!d.simulate_to_fixation(0, &mut rng));
    }

    #[test]
    #[should_panic(expected = "population size")]
    fn zero_population_rejected() {
        let _ = AlleleDynamics::new(0, 0.1);
    }

    #[test]
    fn concave_accumulation_fixes_slightly_deleterious() {
        // The near-neutral prediction: on a concave landscape a material
        // share of FIXED mutations is slightly deleterious, because |s|
        // shrinks with advantage; and every fixed deleterious mutation is
        // only *slightly* deleterious (|2Ns| small or modest).
        let mut rng = seeded_rng(54);
        let landscape = ConcaveFitness::new(0.3);
        let n = 200;
        let fixed = concave_accumulation(&landscape, n, 60_000, &mut rng);
        assert!(
            fixed.len() > 100,
            "need enough fixations, got {}",
            fixed.len()
        );
        let del = fixed.iter().filter(|m| m.deleterious).count();
        let frac_del = del as f64 / fixed.len() as f64;
        assert!(
            frac_del > 0.2,
            "deleterious fixations should be common: {frac_del}"
        );
        for m in fixed.iter().filter(|m| m.deleterious) {
            assert!(
                m.s > -0.05,
                "fixed deleterious mutations are only slightly deleterious: s={}",
                m.s
            );
        }
    }

    #[test]
    fn accumulation_climbs_on_average() {
        let mut rng = seeded_rng(55);
        let landscape = ConcaveFitness::new(0.3);
        let fixed = concave_accumulation(&landscape, 200, 60_000, &mut rng);
        let beneficial = fixed.iter().filter(|m| !m.deleterious).count();
        let deleterious = fixed.len() - beneficial;
        // Selection still biases fixations towards beneficial overall.
        assert!(beneficial > deleterious);
    }
}

//! System granularity (the paper's §5.2).
//!
//! "Conflict of resilience requirements among different levels of system
//! granularity appears in many domains. … The most granular level would be
//! the individual of a species. … Then there is the species level. … The
//! most coarse level is the entire ecosystem as a whole. In this case, if
//! at least one species survives, the system is considered to be resilient.
//! … In general, the more coarse the system is, the easier it is to make
//! the system resilient."
//!
//! [`hierarchical_survival`] measures one shock at all three levels;
//! [`hierarchical_experiment`] averages over shocks — confirming the
//! monotone ordering individual ≤ species ≤ ecosystem.

use rand::Rng;

use crate::extinction::Community;

/// Survival measured at the paper's three granularity levels.
///
/// Individuals bear the brunt: within a surviving species, the fraction of
/// individuals that make it falls linearly with the species' distance from
/// the new optimum (`1 − |trait − optimum|/tolerance`). A species survives
/// if *any* member does ("species can survive even if it loses some of its
/// members"); the ecosystem survives if any species does.
#[derive(Debug, Clone, PartialEq)]
pub struct GranularityReport {
    /// Individual level: surviving fraction of the total population.
    pub individual_survival: f64,
    /// Species level: fraction of species with at least one survivor.
    pub species_survival: f64,
    /// Ecosystem level: 1 if any species survived, else 0.
    pub system_survival: f64,
}

impl GranularityReport {
    /// The §5.2 ordering: survival is non-decreasing with coarseness.
    pub fn ordering_holds(&self) -> bool {
        self.individual_survival <= self.species_survival + 1e-12
            && self.species_survival <= self.system_survival + 1e-12
    }
}

/// Measure one environment `(optimum, tolerance)` against `community` at
/// all three levels.
pub fn hierarchical_survival(
    community: &Community,
    optimum: f64,
    tolerance: f64,
) -> GranularityReport {
    let total_pop: f64 = community.populations.iter().sum();
    let survivors = community.survivors(optimum, tolerance);
    // Within a surviving species, the member survival fraction falls
    // linearly with mal-adaptation; a perfectly-adapted species keeps
    // everyone, one at the tolerance edge keeps almost no one.
    let surviving_pop: f64 = survivors
        .iter()
        .map(|&i| {
            let misfit = (community.traits[i] - optimum).abs() / tolerance.max(f64::MIN_POSITIVE);
            community.populations[i] * (1.0 - misfit).max(0.0)
        })
        .sum();
    let extant_species = community
        .populations
        .iter()
        .filter(|&&p| p > 0.0)
        .count()
        .max(1);
    GranularityReport {
        individual_survival: if total_pop > 0.0 {
            surviving_pop / total_pop
        } else {
            0.0
        },
        species_survival: survivors.len() as f64 / extant_species as f64,
        system_survival: if survivors.is_empty() { 0.0 } else { 1.0 },
    }
}

/// Average the three levels over `trials` random optimum jumps of scale
/// `shock_scale` (uniform in `±shock_scale` around `initial_optimum`).
pub fn hierarchical_experiment<R: Rng + ?Sized>(
    community: &Community,
    initial_optimum: f64,
    tolerance: f64,
    shock_scale: f64,
    trials: usize,
    rng: &mut R,
) -> GranularityReport {
    let mut acc = GranularityReport {
        individual_survival: 0.0,
        species_survival: 0.0,
        system_survival: 0.0,
    };
    for _ in 0..trials {
        let jump = rng.gen_range(-shock_scale..=shock_scale);
        let r = hierarchical_survival(community, initial_optimum + jump, tolerance);
        acc.individual_survival += r.individual_survival;
        acc.species_survival += r.species_survival;
        acc.system_survival += r.system_survival;
    }
    let n = trials.max(1) as f64;
    GranularityReport {
        individual_survival: acc.individual_survival / n,
        species_survival: acc.species_survival / n,
        system_survival: acc.system_survival / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::seeded_rng;

    #[test]
    fn single_shock_levels() {
        let c = Community::spread(4, 0.0, 3.0, 40.0);
        // Optimum 3.0, tolerance 1.5: traits are −3, −1, 1, 3 ⇒ survivors
        // at 3 (and 1.5 within? |1−3|=2 > 1.5 no). So 1 of 4 species.
        let r = hierarchical_survival(&c, 3.0, 1.5);
        assert!((r.species_survival - 0.25).abs() < 1e-12);
        assert!((r.individual_survival - 0.25).abs() < 1e-12); // equal pops
        assert_eq!(r.system_survival, 1.0);
        assert!(r.ordering_holds());
    }

    #[test]
    fn total_wipeout() {
        let c = Community::spread(3, 0.0, 1.0, 30.0);
        let r = hierarchical_survival(&c, 100.0, 0.5);
        assert_eq!(r.individual_survival, 0.0);
        assert_eq!(r.species_survival, 0.0);
        assert_eq!(r.system_survival, 0.0);
        assert!(r.ordering_holds());
    }

    #[test]
    fn unequal_populations_weight_individual_level() {
        let c = Community {
            traits: vec![0.0, 5.0],
            populations: vec![90.0, 10.0],
        };
        // Only the small species survives.
        let r = hierarchical_survival(&c, 5.0, 0.5);
        assert!((r.individual_survival - 0.1).abs() < 1e-12);
        assert!((r.species_survival - 0.5).abs() < 1e-12);
        assert_eq!(r.system_survival, 1.0);
    }

    /// The §5.2 claim, averaged over shocks: coarser ⇒ easier.
    #[test]
    fn coarser_levels_survive_more() {
        let mut rng = seeded_rng(501);
        let c = Community::spread(20, 0.0, 3.0, 100.0);
        let r = hierarchical_experiment(&c, 0.0, 0.5, 3.0, 3_000, &mut rng);
        assert!(r.ordering_holds());
        // Strict separation in this regime.
        assert!(
            r.individual_survival + 0.1 < r.species_survival
                || r.species_survival + 0.1 < r.system_survival,
            "{r:?}"
        );
        assert!(r.system_survival > 0.95);
        assert!(r.individual_survival < 0.3);
    }

    #[test]
    fn empty_community_is_dead_at_every_level() {
        let c = Community {
            traits: vec![0.0],
            populations: vec![0.0],
        };
        let r = hierarchical_survival(&c, 0.0, 1.0);
        assert_eq!(r.individual_survival, 0.0);
        assert_eq!(r.system_survival, 0.0);
    }
}

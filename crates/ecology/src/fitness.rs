//! Fitness landscapes (the paper's §3.2.4 and Fig. 2).
//!
//! Three shapes matter to the paper's diversity argument:
//!
//! * [`LinearFitness`] — constant per-species fitness. Under the replicator
//!   equation the fittest species "ultimately dominates the entire
//!   ecosystem without a mechanism that penalizes such domination".
//! * [`DensityDependent`] — fitness decreasing in own population share:
//!   "the dominating species loses its advantage as its population
//!   increases, and this gives spaces for other species to occupy".
//! * [`ConcaveFitness`] — Fig. 2's diminishing-return curve over
//!   *cumulative advantage*: "as the species gain a larger fitness, a
//!   contribution of each advantageous mutation to the fitness declines"
//!   (Akashi's weak-selection explanation for the near-neutral theory).

/// A fitness function over a community state.
///
/// `fitness(i, proportions)` returns the (strictly positive) fitness `πᵢ`
/// of species `i` given the current population proportions.
pub trait FitnessFn: Send + Sync {
    /// Fitness of species `i` under community `proportions` (which sum
    /// to 1).
    fn fitness(&self, i: usize, proportions: &[f64]) -> f64;

    /// Number of species this landscape describes.
    fn n_species(&self) -> usize;

    /// Mean community fitness `π̄ = Σ qᵢ πᵢ`.
    fn mean_fitness(&self, proportions: &[f64]) -> f64 {
        proportions
            .iter()
            .enumerate()
            .map(|(i, &q)| q * self.fitness(i, proportions))
            .sum()
    }
}

/// Constant per-species fitness, independent of the community.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearFitness {
    values: Vec<f64>,
}

impl LinearFitness {
    /// Fitness values, one per species.
    ///
    /// # Panics
    ///
    /// Panics if any value is non-positive or non-finite.
    pub fn new(values: Vec<f64>) -> Self {
        assert!(
            values.iter().all(|v| v.is_finite() && *v > 0.0),
            "fitness values must be positive and finite"
        );
        LinearFitness { values }
    }

    /// `n` species with fitness `1 + i·gradient` for species `i`.
    ///
    /// # Panics
    ///
    /// Panics if the weakest species would have non-positive fitness.
    pub fn graded(n: usize, gradient: f64) -> Self {
        let values: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * gradient).collect();
        LinearFitness::new(values)
    }
}

impl FitnessFn for LinearFitness {
    fn fitness(&self, i: usize, _proportions: &[f64]) -> f64 {
        self.values[i]
    }

    fn n_species(&self) -> usize {
        self.values.len()
    }
}

/// Fitness decreasing in own population share:
/// `πᵢ(q) = baseᵢ · (1 − damping·qᵢ)`, floored at `min_fitness`.
///
/// This is the paper's diversity-preserving mechanism: dominance is
/// self-limiting.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityDependent {
    base: Vec<f64>,
    damping: f64,
    min_fitness: f64,
}

impl DensityDependent {
    /// Density-dependent landscape with per-species base fitness and a
    /// shared damping coefficient in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if bases are non-positive, or `damping ∉ [0, 1]`.
    pub fn new(base: Vec<f64>, damping: f64) -> Self {
        assert!(
            base.iter().all(|v| v.is_finite() && *v > 0.0),
            "base fitness must be positive"
        );
        assert!((0.0..=1.0).contains(&damping), "damping must be in [0,1]");
        DensityDependent {
            base,
            damping,
            min_fitness: 1e-6,
        }
    }
}

impl FitnessFn for DensityDependent {
    fn fitness(&self, i: usize, proportions: &[f64]) -> f64 {
        (self.base[i] * (1.0 - self.damping * proportions[i])).max(self.min_fitness)
    }

    fn n_species(&self) -> usize {
        self.base.len()
    }
}

/// Fig. 2's concave (diminishing-return) map from cumulative advantage to
/// fitness: `π(a) = (1 + a)^exponent` with `exponent ∈ (0, 1)`.
///
/// The *selection differential* between advantage `a` and `a + δ` shrinks
/// as `a` grows — weak selection at high fitness, strong selection at low
/// fitness. Compare [`ConcaveFitness::selection_coefficient`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConcaveFitness {
    exponent: f64,
}

impl ConcaveFitness {
    /// Concave fitness with `exponent ∈ (0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `exponent` is outside `(0, 1)`.
    pub fn new(exponent: f64) -> Self {
        assert!(
            exponent > 0.0 && exponent < 1.0,
            "concavity requires exponent in (0,1), got {exponent}"
        );
        ConcaveFitness { exponent }
    }

    /// Fitness at cumulative advantage `a ≥ 0`.
    pub fn at(&self, advantage: f64) -> f64 {
        (1.0 + advantage.max(0.0)).powf(self.exponent)
    }

    /// The linear comparison curve `π(a) = 1 + exponent·a` (same slope at
    /// the origin, no diminishing returns).
    pub fn linear_at(&self, advantage: f64) -> f64 {
        1.0 + self.exponent * advantage.max(0.0)
    }

    /// Relative selection coefficient of one extra unit of advantage at
    /// level `a`: `s(a) = π(a+1)/π(a) − 1`. Strictly decreasing in `a` —
    /// the weak-selection regime of the near-neutral theory.
    pub fn selection_coefficient(&self, advantage: f64) -> f64 {
        self.at(advantage + 1.0) / self.at(advantage) - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_fitness_constant() {
        let f = LinearFitness::new(vec![1.0, 2.0]);
        assert_eq!(f.fitness(1, &[0.5, 0.5]), 2.0);
        assert_eq!(f.fitness(1, &[0.9, 0.1]), 2.0);
        assert_eq!(f.n_species(), 2);
    }

    #[test]
    fn graded_builder() {
        let f = LinearFitness::graded(3, 0.1);
        assert_eq!(f.fitness(0, &[]), 1.0);
        assert!((f.fitness(2, &[]) - 1.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn linear_rejects_nonpositive() {
        let _ = LinearFitness::new(vec![1.0, 0.0]);
    }

    #[test]
    fn mean_fitness_weighted() {
        let f = LinearFitness::new(vec![1.0, 3.0]);
        let mean = f.mean_fitness(&[0.25, 0.75]);
        assert!((mean - (0.25 + 2.25)).abs() < 1e-12);
    }

    #[test]
    fn density_dependent_penalizes_dominance() {
        let f = DensityDependent::new(vec![2.0, 2.0], 0.8);
        let dominant = f.fitness(0, &[0.9, 0.1]);
        let rare = f.fitness(1, &[0.9, 0.1]);
        assert!(rare > dominant, "rare {rare} vs dominant {dominant}");
    }

    #[test]
    fn density_dependent_floors_fitness() {
        let f = DensityDependent::new(vec![1.0], 1.0);
        assert!(f.fitness(0, &[1.0]) > 0.0);
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn density_rejects_bad_damping() {
        let _ = DensityDependent::new(vec![1.0], 1.5);
    }

    #[test]
    fn concave_is_concave() {
        let c = ConcaveFitness::new(0.5);
        // Increasing…
        assert!(c.at(1.0) > c.at(0.0));
        assert!(c.at(10.0) > c.at(1.0));
        // …with diminishing increments.
        let d1 = c.at(1.0) - c.at(0.0);
        let d2 = c.at(2.0) - c.at(1.0);
        let d10 = c.at(10.0) - c.at(9.0);
        assert!(d1 > d2 && d2 > d10);
    }

    #[test]
    fn concave_beats_linear_nowhere_after_origin() {
        let c = ConcaveFitness::new(0.5);
        for a in [0.5, 1.0, 5.0, 20.0] {
            assert!(c.at(a) < c.linear_at(a), "a={a}");
        }
        assert!((c.at(0.0) - c.linear_at(0.0)).abs() < 1e-12);
    }

    #[test]
    fn selection_weakens_with_advantage() {
        // The Akashi/near-neutral claim: the same +1 advantage confers a
        // smaller relative benefit on an already-advantaged background.
        let c = ConcaveFitness::new(0.4);
        let s0 = c.selection_coefficient(0.0);
        let s5 = c.selection_coefficient(5.0);
        let s50 = c.selection_coefficient(50.0);
        assert!(s0 > s5 && s5 > s50);
        assert!(
            s50 < 0.01,
            "selection nearly neutral at high advantage: {s50}"
        );
    }

    #[test]
    #[should_panic(expected = "concavity")]
    fn concave_rejects_exponent_one() {
        let _ = ConcaveFitness::new(1.0);
    }

    proptest! {
        #[test]
        fn prop_concave_increments_decrease(e in 0.05f64..0.95, a in 0.0f64..100.0) {
            let c = ConcaveFitness::new(e);
            let inc1 = c.at(a + 1.0) - c.at(a);
            let inc2 = c.at(a + 2.0) - c.at(a + 1.0);
            prop_assert!(inc2 <= inc1 + 1e-12);
        }

        #[test]
        fn prop_density_fitness_positive(q in 0.0f64..1.0, damping in 0.0f64..1.0) {
            let f = DensityDependent::new(vec![1.0, 1.0], damping);
            prop_assert!(f.fitness(0, &[q, 1.0 - q]) > 0.0);
        }
    }
}

//! The Moran birth–death process — a second, exactly-solvable population
//! model used to cross-check the Wright–Fisher machinery.
//!
//! For a mutant of relative fitness `r` in a population of size `N`, the
//! fixation probability from `i` copies is
//! `ρᵢ = (1 − r⁻ⁱ)/(1 − r⁻ᴺ)` (and `i/N` for `r = 1`).

use rand::Rng;

/// A two-type Moran process: mutants of relative fitness `r` vs residents
/// of fitness 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoranProcess {
    /// Population size (constant).
    pub n: usize,
    /// Mutant relative fitness.
    pub r: f64,
}

impl MoranProcess {
    /// New process.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `r ≤ 0`.
    pub fn new(n: usize, r: f64) -> Self {
        assert!(n > 0, "population size must be positive");
        assert!(
            r.is_finite() && r > 0.0,
            "relative fitness must be positive"
        );
        MoranProcess { n, r }
    }

    /// Exact fixation probability from `i` mutant copies.
    pub fn fixation_probability(&self, i: usize) -> f64 {
        let i = i.min(self.n);
        if i == 0 {
            return 0.0;
        }
        if (self.r - 1.0).abs() < 1e-12 {
            return i as f64 / self.n as f64;
        }
        let rinv = 1.0 / self.r;
        (1.0 - rinv.powi(i as i32)) / (1.0 - rinv.powi(self.n as i32))
    }

    /// Simulate one trajectory from `i` copies until fixation (`true`) or
    /// extinction (`false`).
    pub fn simulate<R: Rng + ?Sized>(&self, i: usize, rng: &mut R) -> bool {
        let mut count = i.min(self.n);
        loop {
            if count == 0 {
                return false;
            }
            if count == self.n {
                return true;
            }
            let freq = count as f64 / self.n as f64;
            // Birth: choose reproducer proportional to fitness.
            let mutant_weight = self.r * freq;
            let p_birth_mutant = mutant_weight / (mutant_weight + (1.0 - freq));
            let birth_is_mutant = rng.gen_bool(p_birth_mutant.clamp(0.0, 1.0));
            // Death: uniform.
            let death_is_mutant = rng.gen_bool(freq);
            match (birth_is_mutant, death_is_mutant) {
                (true, false) => count += 1,
                (false, true) => count -= 1,
                _ => {}
            }
        }
    }

    /// Monte-Carlo estimate of the fixation probability from one copy.
    pub fn simulate_fixation_probability<R: Rng + ?Sized>(
        &self,
        trials: usize,
        rng: &mut R,
    ) -> f64 {
        let fixed = (0..trials).filter(|_| self.simulate(1, rng)).count();
        fixed as f64 / trials.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::seeded_rng;

    #[test]
    fn neutral_fixation_is_frequency() {
        let m = MoranProcess::new(20, 1.0);
        assert!((m.fixation_probability(1) - 0.05).abs() < 1e-12);
        assert!((m.fixation_probability(10) - 0.5).abs() < 1e-12);
        assert_eq!(m.fixation_probability(0), 0.0);
        assert!((m.fixation_probability(20) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn advantageous_mutant_fixes_more_often() {
        let neutral = MoranProcess::new(50, 1.0).fixation_probability(1);
        let adv = MoranProcess::new(50, 1.1).fixation_probability(1);
        let dis = MoranProcess::new(50, 0.9).fixation_probability(1);
        assert!(adv > neutral && neutral > dis);
        // Large-N limit for advantageous: ρ ≈ 1 − 1/r.
        let big = MoranProcess::new(1_000, 1.5).fixation_probability(1);
        assert!((big - (1.0 - 2.0 / 3.0)).abs() < 1e-3);
    }

    #[test]
    fn simulation_matches_exact() {
        let mut rng = seeded_rng(61);
        for r in [0.9, 1.0, 1.2] {
            let m = MoranProcess::new(30, r);
            let sim = m.simulate_fixation_probability(3_000, &mut rng);
            let exact = m.fixation_probability(1);
            assert!(
                (sim - exact).abs() < 0.02,
                "r={r}: sim {sim} vs exact {exact}"
            );
        }
    }

    #[test]
    fn absorbing_states() {
        let mut rng = seeded_rng(62);
        let m = MoranProcess::new(10, 1.5);
        assert!(m.simulate(10, &mut rng));
        assert!(!m.simulate(0, &mut rng));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_fitness() {
        let _ = MoranProcess::new(10, 0.0);
    }
}

//! Diminishing returns vs. linear accumulation and social polarization
//! (the paper's §3.2.4, closing paragraph).
//!
//! "Many systems, especially those that appear in nature, seem to have the
//! law of diminishing return. … On the other hand, artificial systems are
//! often linear. A prominent example is our financial system. … your money
//! adds up linearly. This leads to polarization between the rich and the
//! poor, and may make the society more fragile."
//!
//! Model: `agents` accumulate wealth over rounds. Each round an agent's
//! income is `wealth^gamma × noise`: `gamma = 1` is the linear
//! (proportional, rich-get-richer) financial regime; `gamma < 1` is the
//! diminishing-return regime. [`gini`] and [`top_share`] quantify the
//! resulting polarization; fragility is the share of social wealth wiped
//! out when a shock hits the richest stratum.

use rand::Rng;

/// A wealth-accumulation society.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WealthModel {
    /// Number of agents.
    pub agents: usize,
    /// Accumulation rounds.
    pub rounds: usize,
    /// Income exponent: 1 = linear/proportional, < 1 = diminishing
    /// returns.
    pub gamma: f64,
    /// Income noise amplitude (uniform multiplicative, ±).
    pub noise: f64,
}

impl WealthModel {
    /// New model.
    ///
    /// # Panics
    ///
    /// Panics if there are no agents, `gamma ∉ (0, 1]`, or
    /// `noise ∉ [0, 1)`.
    pub fn new(agents: usize, rounds: usize, gamma: f64, noise: f64) -> Self {
        assert!(agents > 0, "need at least one agent");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        assert!((0.0..1.0).contains(&noise), "noise must be in [0, 1)");
        WealthModel {
            agents,
            rounds,
            gamma,
            noise,
        }
    }

    /// Simulate the wealth distribution (every agent starts at 1).
    pub fn simulate<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let mut wealth = vec![1.0f64; self.agents];
        for _ in 0..self.rounds {
            for w in wealth.iter_mut() {
                let factor = 1.0 + rng.gen_range(-self.noise..=self.noise);
                *w += 0.1 * w.powf(self.gamma) * factor.max(0.0);
            }
        }
        wealth
    }
}

/// The Gini coefficient of a wealth distribution, in `[0, 1)`:
/// 0 = perfect equality, → 1 = total concentration.
///
/// # Panics
///
/// Panics on an empty distribution or negative wealth.
pub fn gini(wealth: &[f64]) -> f64 {
    assert!(!wealth.is_empty(), "gini of empty distribution");
    assert!(
        wealth.iter().all(|&w| w >= 0.0),
        "wealth must be non-negative"
    );
    let mut sorted: Vec<f64> = wealth.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN wealth"));
    let n = sorted.len() as f64;
    let total: f64 = sorted.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &w)| (i as f64 + 1.0) * w)
        .sum();
    (2.0 * weighted) / (n * total) - (n + 1.0) / n
}

/// Share of total wealth held by the richest `frac` of agents.
///
/// # Panics
///
/// Panics on an empty distribution or `frac ∉ (0, 1]`.
pub fn top_share(wealth: &[f64], frac: f64) -> f64 {
    assert!(!wealth.is_empty(), "top share of empty distribution");
    assert!(frac > 0.0 && frac <= 1.0, "fraction must be in (0, 1]");
    let mut sorted: Vec<f64> = wealth.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("no NaN wealth"));
    let take = ((sorted.len() as f64) * frac).ceil() as usize;
    let top: f64 = sorted[..take.min(sorted.len())].iter().sum();
    let total: f64 = sorted.iter().sum();
    if total <= 0.0 {
        0.0
    } else {
        top / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::seeded_rng;

    #[test]
    fn gini_extremes() {
        assert!(gini(&[5.0, 5.0, 5.0, 5.0]).abs() < 1e-12);
        // One agent holds everything: Gini → (n−1)/n.
        let concentrated = gini(&[0.0, 0.0, 0.0, 100.0]);
        assert!((concentrated - 0.75).abs() < 1e-12);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn top_share_basics() {
        let w = [1.0, 1.0, 1.0, 7.0];
        assert!((top_share(&w, 0.25) - 0.7).abs() < 1e-12);
        assert!((top_share(&w, 1.0) - 1.0).abs() < 1e-12);
    }

    /// The §3.2.4 claim: linear accumulation polarizes; diminishing
    /// returns equalize.
    #[test]
    fn linear_accumulation_polarizes() {
        let mut rng = seeded_rng(901);
        let linear = WealthModel::new(500, 200, 1.0, 0.9).simulate(&mut rng);
        let diminishing = WealthModel::new(500, 200, 0.5, 0.9).simulate(&mut rng);
        let g_lin = gini(&linear);
        let g_dim = gini(&diminishing);
        assert!(
            g_lin > 2.0 * g_dim,
            "linear Gini {g_lin} vs diminishing {g_dim}"
        );
        // Fragility: in the linear society, losing the top 10% destroys a
        // far larger share of total wealth.
        let frag_lin = top_share(&linear, 0.1);
        let frag_dim = top_share(&diminishing, 0.1);
        assert!(
            frag_lin > frag_dim + 0.1,
            "top-decile exposure {frag_lin} vs {frag_dim}"
        );
    }

    #[test]
    fn no_noise_means_no_inequality() {
        let mut rng = seeded_rng(902);
        let equal = WealthModel::new(100, 100, 1.0, 0.0).simulate(&mut rng);
        assert!(gini(&equal) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn rejects_bad_gamma() {
        let _ = WealthModel::new(10, 10, 0.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn gini_rejects_empty() {
        let _ = gini(&[]);
    }
}

//! Determinism and graceful-degradation properties of the serving layer.
//!
//! The acceptance bar from DESIGN.md: the per-request outcome log must
//! replay bit-identically for any thread budget, and under a chaos fault
//! plan with brownout enabled the service must never hard-fail a request
//! — every request is served (possibly degraded) or explicitly shed —
//! while scoring a strictly lower Bruneau resilience loss than the same
//! run with degradation disabled.

use resilience_core::faults::FaultPlan;
use resilience_service::{
    Disposition, RequestTrace, ServiceConfig, ServiceEngine, ServiceReport, TraceSpec,
};

fn chaos_plan() -> FaultPlan {
    FaultPlan {
        seed: 11,
        panic_rate: 0.10,
        delay_rate: 0.05,
        poison_rate: 0.10,
        permanent_rate: 0.05,
        ..FaultPlan::none()
    }
}

fn run(threads: usize, degradation: bool, trace: &RequestTrace, plan: &FaultPlan) -> ServiceReport {
    let engine = ServiceEngine::new(ServiceConfig {
        threads,
        degradation,
        ..ServiceConfig::default()
    });
    engine.serve(trace, plan)
}

#[test]
fn outcome_log_replays_bit_identically_for_any_thread_budget() {
    let trace = RequestTrace::generate(&TraceSpec::new(400, 42));
    let plan = chaos_plan();
    for degradation in [true, false] {
        let baseline = run(1, degradation, &trace, &plan);
        for threads in [2usize, 4] {
            let other = run(threads, degradation, &trace, &plan);
            assert_eq!(
                baseline, other,
                "degradation={degradation} threads={threads}: full report must replay"
            );
        }
    }
}

#[test]
fn same_seed_same_run_different_seed_different_run() {
    let plan = chaos_plan();
    let a = run(
        2,
        true,
        &RequestTrace::generate(&TraceSpec::new(300, 7)),
        &plan,
    );
    let b = run(
        2,
        true,
        &RequestTrace::generate(&TraceSpec::new(300, 7)),
        &plan,
    );
    assert_eq!(a, b);
    let c = run(
        2,
        true,
        &RequestTrace::generate(&TraceSpec::new(300, 8)),
        &plan,
    );
    assert_ne!(a, c, "the trace seed must key the run");
}

#[test]
fn chaos_with_brownout_never_hard_fails_a_request() {
    let trace = RequestTrace::generate(&TraceSpec::new(600, 42));
    let report = run(2, true, &trace, &chaos_plan());
    assert_eq!(report.total(), 600, "every request adjudicated");
    assert_eq!(
        report.failed(),
        0,
        "with graceful degradation on, backend faults become cached fallbacks"
    );
    assert_eq!(report.served() + report.shed(), 600);
    for outcome in &report.outcomes {
        assert!(
            !matches!(outcome.disposition, Disposition::Failed { .. }),
            "hard failure leaked: {outcome}"
        );
    }
    // The chaos plan plus the surge actually disturb the run.
    assert!(report.degraded() > 0, "chaos must force some degradation");
    assert!(report.resilience_loss().is_finite());
}

#[test]
fn degradation_strictly_lowers_bruneau_resilience_loss() {
    let trace = RequestTrace::generate(&TraceSpec::new(600, 42));
    let plan = chaos_plan();
    let on = run(2, true, &trace, &plan);
    let off = run(2, false, &trace, &plan);
    let (r_on, r_off) = (on.resilience_loss(), off.resilience_loss());
    assert!(
        r_on < r_off,
        "brownout must shrink the resilience triangle: R_on={r_on} R_off={r_off}"
    );
    assert!(
        on.goodput() > off.goodput(),
        "degraded service must beat refusals on goodput: on={} off={}",
        on.goodput(),
        off.goodput()
    );
    assert!(off.shed_rate() < 1.0, "even the ablation serves something");
}

#[test]
fn quiet_plan_calm_trace_serves_everything_at_full_fidelity() {
    // Light load, no faults: admission never needs to say no.
    let spec = TraceSpec {
        base_rate: 0.2,
        surge_factor: 1.0,
        cost: (4, 8),
        ..TraceSpec::new(150, 5)
    };
    let trace = RequestTrace::generate(&spec);
    let report = run(1, true, &trace, &FaultPlan::none());
    assert_eq!(report.served(), 150);
    assert_eq!(report.degraded(), 0);
    assert_eq!(report.shed(), 0);
    assert_eq!(
        report.resilience_loss(),
        0.0,
        "undisturbed runs score R = 0"
    );
}

#[test]
fn deadlines_are_honoured_for_served_requests() {
    let trace = RequestTrace::generate(&TraceSpec::new(500, 42));
    let report = run(1, true, &trace, &chaos_plan());
    for outcome in &report.outcomes {
        if let Disposition::Served { latency, .. } = outcome.disposition {
            let request = &trace.requests[usize::try_from(outcome.id).expect("id fits")];
            assert!(
                latency <= request.deadline,
                "request {} served past its deadline: latency={latency} deadline={}",
                outcome.id,
                request.deadline
            );
        }
    }
}

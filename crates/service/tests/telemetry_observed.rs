//! Telemetry contract of the serving layer: recording observes, never
//! steers; the observed trajectory is bit-identical to the report's
//! own; and every exposition (trace JSON, Prometheus text, metrics
//! JSON) is byte-identical for any thread budget.

use resilience_core::faults::FaultPlan;
use resilience_service::{
    Disposition, RequestTrace, ServiceConfig, ServiceEngine, ServiceReport, TraceSpec,
};
use resilience_telemetry::{Event, Telemetry};

fn chaos_plan() -> FaultPlan {
    FaultPlan {
        seed: 11,
        panic_rate: 0.10,
        delay_rate: 0.05,
        poison_rate: 0.10,
        permanent_rate: 0.05,
        ..FaultPlan::none()
    }
}

fn run_traced(
    threads: usize,
    degradation: bool,
    trace: &RequestTrace,
    plan: &FaultPlan,
) -> (ServiceReport, Telemetry) {
    let engine = ServiceEngine::new(ServiceConfig {
        threads,
        degradation,
        ..ServiceConfig::default()
    });
    let mut tel = Telemetry::new(1.0);
    let report = engine.serve_traced(trace, plan, &mut tel);
    (report, tel)
}

#[test]
fn tracing_never_changes_the_report() {
    let trace = RequestTrace::generate(&TraceSpec::new(400, 42));
    let plan = chaos_plan();
    for degradation in [true, false] {
        let engine = ServiceEngine::new(ServiceConfig {
            degradation,
            ..ServiceConfig::default()
        });
        let plain = engine.serve(&trace, &plan);
        let (traced, _) = run_traced(1, degradation, &trace, &plan);
        assert_eq!(plain, traced, "degradation={degradation}");
    }
}

#[test]
fn observed_trajectory_is_bit_identical_to_the_reports() {
    let trace = RequestTrace::generate(&TraceSpec::new(500, 7));
    let (report, tel) = run_traced(1, true, &trace, &chaos_plan());
    assert_eq!(tel.trajectory.quality(), &report.quality);
    let attr = tel.trajectory.attribution();
    assert_eq!(attr.total, report.resilience_loss());
    let err = (attr.components_sum() - attr.total).abs();
    assert!(
        err <= 1e-9 * attr.total.max(1.0),
        "attribution must reconcile: {} vs {}",
        attr.components_sum(),
        attr.total
    );
    // With brownout on, nothing fails hard — the deficit is all shed
    // plus degraded service.
    assert_eq!(attr.failed, 0.0);
    assert!(attr.degraded > 0.0);
}

#[test]
fn every_exposition_is_byte_identical_across_thread_budgets() {
    let trace = RequestTrace::generate(&TraceSpec::new(400, 42));
    for plan in [FaultPlan::none(), chaos_plan()] {
        let (_, base) = run_traced(1, true, &trace, &plan);
        for threads in [2usize, 4] {
            let (_, other) = run_traced(threads, true, &trace, &plan);
            assert_eq!(
                base.tracer.to_json(),
                other.tracer.to_json(),
                "trace, threads={threads}"
            );
            assert_eq!(
                base.metrics.to_prometheus(),
                other.metrics.to_prometheus(),
                "prometheus, threads={threads}"
            );
            assert_eq!(
                base.metrics.to_json(),
                other.metrics.to_json(),
                "metrics json, threads={threads}"
            );
        }
    }
}

#[test]
fn trace_tallies_reconcile_with_the_report() {
    let trace = RequestTrace::generate(&TraceSpec::new(600, 42));
    for degradation in [true, false] {
        let (report, tel) = run_traced(1, degradation, &trace, &chaos_plan());
        let merged = tel.tracer.merged();
        let served = merged
            .iter()
            .filter(|e| matches!(e.event, Event::RequestServed { .. }))
            .count() as u64;
        let shed = merged
            .iter()
            .filter(|e| matches!(e.event, Event::RequestShed { .. }))
            .count() as u64;
        let failed = merged
            .iter()
            .filter(|e| matches!(e.event, Event::RequestFailed { .. }))
            .count() as u64;
        assert_eq!(served, report.served(), "degradation={degradation}");
        assert_eq!(shed, report.shed(), "degradation={degradation}");
        assert_eq!(failed, report.failed(), "degradation={degradation}");
        let transitions: u64 = report
            .breaker_transitions
            .iter()
            .map(|t| t.len() as u64)
            .sum();
        let transition_events = merged
            .iter()
            .filter(|e| matches!(e.event, Event::BreakerTransition { .. }))
            .count() as u64;
        assert_eq!(transition_events, transitions);
        let brownout_events = merged
            .iter()
            .filter(|e| matches!(e.event, Event::BrownoutLevelChange { .. }))
            .count();
        assert_eq!(brownout_events, report.brownout_history.len());
    }
}

#[test]
fn service_report_serializes_through_the_shared_trajectory_type() {
    let trace = RequestTrace::generate(&TraceSpec::new(100, 3));
    let (report, _) = run_traced(1, true, &trace, &FaultPlan::none());
    let value = serde::Serialize::serialize(&report);
    let text = serde_json::to_string_pretty(&value).expect("report serializes");
    assert!(text.contains("\"quality\""));
    assert!(text.contains("\"samples\""));
    assert!(text.contains("\"outcomes\""));
    // The metrics exposition names every required family.
    let mut tel = Telemetry::new(1.0);
    resilience_service::record_service_metrics(&mut tel.metrics, &report);
    let prom = tel.metrics.to_prometheus();
    for family in [
        "service_requests_total",
        "service_shed_total",
        "service_resilience_loss",
        "service_latency_ticks_bucket",
    ] {
        assert!(prom.contains(family), "missing {family} in exposition");
    }
    // `failed` count must survive the round through Disposition's serde.
    let outcome = &report.outcomes[0];
    let round: resilience_service::RequestOutcome =
        serde::Deserialize::deserialize(&serde::Serialize::serialize(outcome))
            .expect("outcome round-trips");
    assert_eq!(&round, outcome);
    let _ = Disposition::Shed {
        reason: resilience_service::ShedReason::QueueFull,
    };
}

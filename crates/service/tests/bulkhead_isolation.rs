//! Bulkhead isolation: a poisoned or flooded family exhausts only its
//! own compartment. Other families' outcomes must be completely
//! unaffected — not merely "still mostly served", but bit-identical to
//! what they would have seen without the sick neighbour.

use resilience_core::faults::FaultPlan;
use resilience_service::{Disposition, Request, RequestTrace, ServiceConfig, ServiceEngine};

/// A hand-built two-family trace: family 0's requests come from
/// `victim_cost`, family 1 carries a light, fixed load. Request ids and
/// arrivals are identical across calls, so two traces differing only in
/// `victim_cost` expose exactly the cross-family coupling (there should
/// be none).
fn two_family_trace(victim_cost: u64) -> RequestTrace {
    let mut requests = Vec::new();
    let mut id = 0u64;
    for burst in 0..40u64 {
        let arrival = burst * 2;
        // Family 0: a flood of expensive work with hopeless deadlines.
        for _ in 0..4 {
            requests.push(Request {
                id,
                family: 0,
                arrival,
                deadline: 12,
                cost: victim_cost,
            });
            id += 1;
        }
        // Family 1: one modest request per burst.
        requests.push(Request {
            id,
            family: 1,
            arrival,
            deadline: 40,
            cost: 8,
        });
        id += 1;
    }
    RequestTrace {
        seed: 99,
        families: vec!["flooded".to_string(), "healthy".to_string()],
        requests,
    }
}

fn engine(degradation: bool) -> ServiceEngine {
    ServiceEngine::new(ServiceConfig {
        degradation,
        ..ServiceConfig::default()
    })
}

#[test]
fn flooded_family_sheds_but_healthy_family_is_untouched() {
    let report = engine(false).serve(&two_family_trace(64), &FaultPlan::none());
    let flooded = &report.per_family[0];
    let healthy = &report.per_family[1];
    assert!(
        flooded.shed > 0,
        "the flood must overwhelm family 0's compartment"
    );
    assert_eq!(healthy.shed, 0, "family 1 must never be shed");
    assert_eq!(healthy.failed, 0);
    assert_eq!(
        healthy.served_full, healthy.arrivals,
        "family 1 must be served at full fidelity throughout"
    );
}

#[test]
fn healthy_family_outcomes_are_bit_identical_with_and_without_the_flood() {
    // Same ids, same arrivals; only family 0's cost differs.
    let calm = engine(false).serve(&two_family_trace(8), &FaultPlan::none());
    let flooded = engine(false).serve(&two_family_trace(64), &FaultPlan::none());
    let healthy = |report: &resilience_service::ServiceReport| {
        report
            .outcomes
            .iter()
            .filter(|o| o.family == 1)
            .cloned()
            .collect::<Vec<_>>()
    };
    assert_eq!(
        healthy(&calm),
        healthy(&flooded),
        "family 1's per-request outcomes must not depend on family 0's load"
    );
}

#[test]
fn poisoned_family_trips_only_its_own_breaker() {
    // Every slot of every family is permanently faulted by this plan,
    // but the trace only sends family-0 arrivals early on, so only
    // family 0's breaker can trip by then. Keyed per-family breakers
    // are what confine the damage.
    let mut requests = Vec::new();
    let mut id = 0u64;
    // Phase 1: family 0 hammered by poisoned work.
    for i in 0..12u64 {
        requests.push(Request {
            id,
            family: 0,
            arrival: i,
            deadline: 40,
            cost: 8,
        });
        id += 1;
    }
    // Phase 2: family 1 arrives later, against a quiet backend.
    for i in 0..12u64 {
        requests.push(Request {
            id,
            family: 1,
            arrival: 40 + i,
            deadline: 40,
            cost: 8,
        });
        id += 1;
    }
    let trace = RequestTrace {
        seed: 5,
        families: vec!["poisoned".to_string(), "clean".to_string()],
        requests,
    };
    // Poison only fires for the "poisoned" label's slots: rates are
    // uniform, but we assert on the per-family breaker log, which is
    // the isolation property under test.
    let plan = FaultPlan {
        seed: 3,
        permanent_rate: 1.0,
        ..FaultPlan::none()
    };
    let report = engine(true).serve(&trace, &plan);
    assert!(
        !report.breaker_transitions[0].is_empty(),
        "family 0's breaker must trip under total poisoning"
    );
    // Family 1 is also fully poisoned by the plan (rates are global),
    // but its damage is confined to its own compartment: family 0's
    // breaker state never gates family 1's admissions, and both
    // families' requests are all answered (cached), never hard-failed.
    assert_eq!(report.failed(), 0);
    assert_eq!(report.total(), 24);
    for outcome in &report.outcomes {
        assert!(
            matches!(outcome.disposition, Disposition::Served { .. }),
            "degradation must keep answering during total poisoning: {outcome}"
        );
    }
}

//! Self-scored brownout control.
//!
//! Brownout (Klein et al.; De Florio's quality indicators, PAPERS.md)
//! trades response quality for survival: under pressure the service
//! dims optional work instead of queueing toward collapse. The
//! controller here is *self-scored*: its pressure signal is the
//! involuntary part of the per-tick Bruneau integrand — the fraction of
//! adjudications shed or hard-failed — blended with queue occupancy as
//! the leading indicator, so the serving layer steers by the same
//! quality accounting it is judged on. The *planned* degradation
//! penalties (reduced/cached responses) are deliberately excluded from
//! the signal: feeding them back would be a positive feedback loop in
//! which a fully-dimmed service reads its own cached responses as
//! pressure and never recovers.
//!
//! Three dimmer levels:
//!
//! * **0 — full**: every request runs the full backend computation.
//! * **1 — reduced**: backends run at `1/divisor` of the trials.
//! * **2 — cached**: responses come from precomputed per-family tables;
//!   the backends see no new work at all.
//!
//! Level changes are hysteretic (raise above `raise_above`, lower below
//! `lower_below`, with a minimum dwell) so the dimmer cannot flap, and
//! every input is a logical-clock quantity — the level sequence replays
//! exactly for any thread budget.
//!
//! The anticipation layer can impose a *floor* and a *ceiling* on the
//! dimmer ([`BrownoutController::set_floor`],
//! [`BrownoutController::set_ceiling`]): the effective level is the
//! reactive level raised to the floor, then clamped to the ceiling.
//! An Emergency policy pre-dims the service before any deficit arrives
//! (floor 2); a calm Normal policy caps the occupancy-spooked reactive
//! dimmer (ceiling 0) so quality is only spent when the warning score
//! says collapse is actually approaching. The reactive machinery
//! underneath keeps tracking pressure unchanged either way.

/// Configuration of the brownout controller.
#[derive(Debug, Clone, PartialEq)]
pub struct BrownoutConfig {
    /// EMA smoothing factor for the pressure signal, in `(0, 1]`.
    pub alpha: f64,
    /// Raise the dimmer one level when smoothed pressure exceeds this.
    pub raise_above: f64,
    /// Lower the dimmer one level when smoothed pressure falls below.
    pub lower_below: f64,
    /// Minimum ticks between level changes.
    pub dwell: u64,
    /// Trial divisor at level 1 (reduced fidelity).
    pub reduced_divisor: u64,
    /// Retained history length: the first `history_cap` effective-level
    /// changes are kept, later ones only counted (see
    /// [`BrownoutController::truncated_history`]), so an arbitrarily
    /// long trace cannot grow memory without bound. The truncation
    /// point depends only on the change sequence itself — byte-identical
    /// across thread budgets.
    pub history_cap: usize,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            alpha: 0.25,
            raise_above: 0.15,
            lower_below: 0.03,
            dwell: 8,
            reduced_divisor: 4,
            history_cap: 4096,
        }
    }
}

/// The dimmer state machine.
#[derive(Debug, Clone)]
pub struct BrownoutController {
    config: BrownoutConfig,
    level: u8,
    floor: u8,
    ceiling: u8,
    pressure: f64,
    last_change: u64,
    history: Vec<(u64, u8)>,
    truncated: u64,
}

impl BrownoutController {
    /// A controller at level 0 (full fidelity) with zero pressure.
    pub fn new(config: BrownoutConfig) -> Self {
        BrownoutController {
            config,
            level: 0,
            floor: 0,
            ceiling: 2,
            pressure: 0.0,
            last_change: 0,
            history: Vec::new(),
            truncated: 0,
        }
    }

    /// Current effective dimmer level (0 = full, 1 = reduced,
    /// 2 = cached): the reactive level, raised to any anticipatory
    /// floor in force, then clamped to any anticipatory ceiling.
    pub fn level(&self) -> u8 {
        self.level.max(self.floor).min(self.ceiling)
    }

    /// The anticipatory floor currently in force.
    pub fn floor(&self) -> u8 {
        self.floor
    }

    /// The anticipatory ceiling currently in force.
    pub fn ceiling(&self) -> u8 {
        self.ceiling
    }

    /// Impose a minimum dimmer level (clamped to 2). The effective
    /// level changes immediately; the reactive level underneath keeps
    /// tracking pressure so lifting the floor falls back to whatever
    /// the reactive controller decided in the meantime. A floor change
    /// that moves the effective level is recorded in the history at
    /// `tick`.
    pub fn set_floor(&mut self, tick: u64, floor: u8) {
        let before = self.level();
        self.floor = floor.min(2);
        let after = self.level();
        if after != before {
            self.push_history(tick, after);
        }
    }

    /// Impose a maximum dimmer level (the ceiling beats the floor when
    /// they conflict). A calm-mode policy uses this to keep the
    /// reactive dimmer from spending quality on pressure the warning
    /// detector says is benign; the reactive level underneath keeps
    /// tracking pressure, so raising the ceiling falls back to it. A
    /// ceiling change that moves the effective level is recorded in the
    /// history at `tick`.
    pub fn set_ceiling(&mut self, tick: u64, ceiling: u8) {
        let before = self.level();
        self.ceiling = ceiling.min(2);
        let after = self.level();
        if after != before {
            self.push_history(tick, after);
        }
    }

    /// Smoothed pressure signal in `[0, 1]`.
    pub fn pressure(&self) -> f64 {
        self.pressure
    }

    /// `(tick, new effective level)` for the first
    /// [`BrownoutConfig::history_cap`] changes, in tick order.
    pub fn history(&self) -> &[(u64, u8)] {
        &self.history
    }

    /// Level changes beyond the cap that were counted but not retained.
    pub fn truncated_history(&self) -> u64 {
        self.truncated
    }

    fn push_history(&mut self, tick: u64, level: u8) {
        if self.history.len() < self.config.history_cap {
            self.history.push((tick, level));
        } else {
            self.truncated += 1;
        }
    }

    /// Feed one tick of self-measurement: `deficit` is the tick's
    /// *involuntary* quality deficit (the fraction of adjudications
    /// shed or hard-failed — planned degradation excluded), `occupancy`
    /// the worst bulkhead queue occupancy. The controller smooths the
    /// larger of the two (either signal alone is a reason to dim) and
    /// moves the dimmer one level with hysteresis and dwell.
    pub fn observe(&mut self, tick: u64, deficit: f64, occupancy: f64) {
        let raw = deficit.max(occupancy).clamp(0.0, 1.0);
        self.pressure = self.config.alpha * raw + (1.0 - self.config.alpha) * self.pressure;
        let dwelled = tick.saturating_sub(self.last_change) >= self.config.dwell;
        if !dwelled {
            return;
        }
        let before = self.level();
        if self.pressure > self.config.raise_above && self.level < 2 {
            self.level += 1;
            self.last_change = tick;
        } else if self.pressure < self.config.lower_below && self.level > 0 {
            self.level -= 1;
            self.last_change = tick;
        } else {
            return;
        }
        let after = self.level();
        if after != before {
            self.push_history(tick, after);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> BrownoutController {
        BrownoutController::new(BrownoutConfig {
            dwell: 2,
            ..BrownoutConfig::default()
        })
    }

    #[test]
    fn sustained_pressure_raises_level_stepwise() {
        let mut c = controller();
        let mut tick = 0;
        while c.level() < 2 && tick < 200 {
            c.observe(tick, 0.8, 0.0);
            tick += 1;
        }
        assert_eq!(c.level(), 2, "sustained deficit must reach level 2");
        // Stepwise: history shows 1 then 2, never a jump.
        let levels: Vec<u8> = c.history().iter().map(|&(_, l)| l).collect();
        assert_eq!(levels, vec![1, 2]);
    }

    #[test]
    fn calm_recovers_to_full_fidelity() {
        let mut c = controller();
        for t in 0..50 {
            c.observe(t, 0.9, 0.9);
        }
        assert_eq!(c.level(), 2);
        for t in 50..300 {
            c.observe(t, 0.0, 0.0);
        }
        assert_eq!(c.level(), 0, "pressure gone, dimmer must reopen");
    }

    #[test]
    fn occupancy_alone_is_a_dimming_signal() {
        let mut c = controller();
        for t in 0..100 {
            c.observe(t, 0.0, 0.8);
        }
        assert!(c.level() > 0, "full queues must dim even before sheds");
    }

    #[test]
    fn dwell_limits_change_rate() {
        let mut c = BrownoutController::new(BrownoutConfig {
            dwell: 10,
            ..BrownoutConfig::default()
        });
        for t in 0..10 {
            c.observe(t, 1.0, 1.0);
        }
        assert!(c.level() <= 1, "dwell must prevent back-to-back raises");
    }

    #[test]
    fn hysteresis_band_holds_level() {
        let mut c = controller();
        for t in 0..60 {
            c.observe(t, 0.9, 0.0);
        }
        let level = c.level();
        // Pressure inside the band (between thresholds): no movement.
        for t in 60..200 {
            c.observe(t, 0.08, 0.0);
        }
        assert_eq!(c.level(), level, "mid-band pressure must hold the level");
    }

    #[test]
    fn floor_pre_dims_and_lifting_it_restores_the_reactive_level() {
        let mut c = controller();
        assert_eq!(c.level(), 0);
        c.set_floor(5, 2);
        assert_eq!(c.level(), 2, "floor takes effect immediately");
        assert_eq!(c.history(), &[(5, 2)], "effective change recorded");
        // No pressure underneath: lifting the floor returns to full.
        c.set_floor(9, 0);
        assert_eq!(c.level(), 0);
        assert_eq!(c.history(), &[(5, 2), (9, 0)]);
    }

    #[test]
    fn redundant_floor_changes_leave_no_history() {
        let mut c = controller();
        for t in 0..50 {
            c.observe(t, 0.9, 0.9);
        }
        assert_eq!(c.level(), 2);
        let before = c.history().to_vec();
        // Reactive level already at 2: a floor below it is invisible.
        c.set_floor(50, 1);
        c.set_floor(51, 0);
        assert_eq!(c.history(), &before[..], "no effective change, no entry");
    }

    #[test]
    fn ceiling_caps_the_reactive_dimmer() {
        let mut c = controller();
        c.set_ceiling(0, 0);
        for t in 0..100 {
            c.observe(t, 0.9, 0.9);
        }
        assert_eq!(c.level(), 0, "ceiling 0 must pin full fidelity");
        // Raising the ceiling exposes the reactive level underneath.
        c.set_ceiling(100, 2);
        assert_eq!(c.level(), 2, "reactive level kept tracking pressure");
        assert_eq!(c.history().last(), Some(&(100, 2)));
    }

    #[test]
    fn history_is_capped_deterministically() {
        let mut c = BrownoutController::new(BrownoutConfig {
            history_cap: 3,
            ..BrownoutConfig::default()
        });
        // Flap the floor to generate many effective-level changes.
        for i in 0..10u64 {
            c.set_floor(2 * i, 2);
            c.set_floor(2 * i + 1, 0);
        }
        assert_eq!(c.history().len(), 3, "log capped at 3");
        assert_eq!(c.truncated_history(), 17, "overflow counted exactly");
    }
}

//! Self-scored brownout control.
//!
//! Brownout (Klein et al.; De Florio's quality indicators, PAPERS.md)
//! trades response quality for survival: under pressure the service
//! dims optional work instead of queueing toward collapse. The
//! controller here is *self-scored*: its pressure signal is the
//! involuntary part of the per-tick Bruneau integrand — the fraction of
//! adjudications shed or hard-failed — blended with queue occupancy as
//! the leading indicator, so the serving layer steers by the same
//! quality accounting it is judged on. The *planned* degradation
//! penalties (reduced/cached responses) are deliberately excluded from
//! the signal: feeding them back would be a positive feedback loop in
//! which a fully-dimmed service reads its own cached responses as
//! pressure and never recovers.
//!
//! Three dimmer levels:
//!
//! * **0 — full**: every request runs the full backend computation.
//! * **1 — reduced**: backends run at `1/divisor` of the trials.
//! * **2 — cached**: responses come from precomputed per-family tables;
//!   the backends see no new work at all.
//!
//! Level changes are hysteretic (raise above `raise_above`, lower below
//! `lower_below`, with a minimum dwell) so the dimmer cannot flap, and
//! every input is a logical-clock quantity — the level sequence replays
//! exactly for any thread budget.

/// Configuration of the brownout controller.
#[derive(Debug, Clone, PartialEq)]
pub struct BrownoutConfig {
    /// EMA smoothing factor for the pressure signal, in `(0, 1]`.
    pub alpha: f64,
    /// Raise the dimmer one level when smoothed pressure exceeds this.
    pub raise_above: f64,
    /// Lower the dimmer one level when smoothed pressure falls below.
    pub lower_below: f64,
    /// Minimum ticks between level changes.
    pub dwell: u64,
    /// Trial divisor at level 1 (reduced fidelity).
    pub reduced_divisor: u64,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            alpha: 0.25,
            raise_above: 0.15,
            lower_below: 0.03,
            dwell: 8,
            reduced_divisor: 4,
        }
    }
}

/// The dimmer state machine.
#[derive(Debug, Clone)]
pub struct BrownoutController {
    config: BrownoutConfig,
    level: u8,
    pressure: f64,
    last_change: u64,
    history: Vec<(u64, u8)>,
}

impl BrownoutController {
    /// A controller at level 0 (full fidelity) with zero pressure.
    pub fn new(config: BrownoutConfig) -> Self {
        BrownoutController {
            config,
            level: 0,
            pressure: 0.0,
            last_change: 0,
            history: Vec::new(),
        }
    }

    /// Current dimmer level (0 = full, 1 = reduced, 2 = cached).
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Smoothed pressure signal in `[0, 1]`.
    pub fn pressure(&self) -> f64 {
        self.pressure
    }

    /// `(tick, new level)` for every change so far.
    pub fn history(&self) -> &[(u64, u8)] {
        &self.history
    }

    /// Feed one tick of self-measurement: `deficit` is the tick's
    /// *involuntary* quality deficit (the fraction of adjudications
    /// shed or hard-failed — planned degradation excluded), `occupancy`
    /// the worst bulkhead queue occupancy. The controller smooths the
    /// larger of the two (either signal alone is a reason to dim) and
    /// moves the dimmer one level with hysteresis and dwell.
    pub fn observe(&mut self, tick: u64, deficit: f64, occupancy: f64) {
        let raw = deficit.max(occupancy).clamp(0.0, 1.0);
        self.pressure = self.config.alpha * raw + (1.0 - self.config.alpha) * self.pressure;
        let dwelled = tick.saturating_sub(self.last_change) >= self.config.dwell;
        if !dwelled {
            return;
        }
        if self.pressure > self.config.raise_above && self.level < 2 {
            self.level += 1;
            self.last_change = tick;
            self.history.push((tick, self.level));
        } else if self.pressure < self.config.lower_below && self.level > 0 {
            self.level -= 1;
            self.last_change = tick;
            self.history.push((tick, self.level));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> BrownoutController {
        BrownoutController::new(BrownoutConfig {
            dwell: 2,
            ..BrownoutConfig::default()
        })
    }

    #[test]
    fn sustained_pressure_raises_level_stepwise() {
        let mut c = controller();
        let mut tick = 0;
        while c.level() < 2 && tick < 200 {
            c.observe(tick, 0.8, 0.0);
            tick += 1;
        }
        assert_eq!(c.level(), 2, "sustained deficit must reach level 2");
        // Stepwise: history shows 1 then 2, never a jump.
        let levels: Vec<u8> = c.history().iter().map(|&(_, l)| l).collect();
        assert_eq!(levels, vec![1, 2]);
    }

    #[test]
    fn calm_recovers_to_full_fidelity() {
        let mut c = controller();
        for t in 0..50 {
            c.observe(t, 0.9, 0.9);
        }
        assert_eq!(c.level(), 2);
        for t in 50..300 {
            c.observe(t, 0.0, 0.0);
        }
        assert_eq!(c.level(), 0, "pressure gone, dimmer must reopen");
    }

    #[test]
    fn occupancy_alone_is_a_dimming_signal() {
        let mut c = controller();
        for t in 0..100 {
            c.observe(t, 0.0, 0.8);
        }
        assert!(c.level() > 0, "full queues must dim even before sheds");
    }

    #[test]
    fn dwell_limits_change_rate() {
        let mut c = BrownoutController::new(BrownoutConfig {
            dwell: 10,
            ..BrownoutConfig::default()
        });
        for t in 0..10 {
            c.observe(t, 1.0, 1.0);
        }
        assert!(c.level() <= 1, "dwell must prevent back-to-back raises");
    }

    #[test]
    fn hysteresis_band_holds_level() {
        let mut c = controller();
        for t in 0..60 {
            c.observe(t, 0.9, 0.0);
        }
        let level = c.level();
        // Pressure inside the band (between thresholds): no movement.
        for t in 60..200 {
            c.observe(t, 0.08, 0.0);
        }
        assert_eq!(c.level(), level, "mid-band pressure must hold the level");
    }
}

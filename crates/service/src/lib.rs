//! Graceful-degradation serving layer for the Systems Resilience engines.
//!
//! The paper argues that resilient systems must *degrade rather than
//! collapse*: under a type-`D` shock the system sacrifices optional
//! quality to keep its essential function alive, and its recovery is
//! scored by the Bruneau resilience triangle `R = ∫ [100 − Q(t)] dt`
//! (Fig. 3). This crate turns the workspace's own Monte Carlo engines
//! into a serving system that lives those principles:
//!
//! * [`request`] — seeded open-loop request traces (arrivals do not slow
//!   down when the service struggles) and the per-request outcome log.
//! * [`bulkhead`] — per-experiment-family compartments: bounded queues
//!   over dedicated logical servers, so a poisoned family exhausts only
//!   its own capacity.
//! * [`breaker`] — per-backend circuit breakers (closed → open →
//!   half-open) on the logical clock.
//! * [`brownout`] — a self-scored dimmer: its pressure signal is the
//!   same per-tick quality deficit that the Bruneau integral scores, so
//!   the controller steers by the metric it is judged on.
//! * [`engine`] — the admission-control tick loop composing all of the
//!   above over the deterministic parallel runtime, producing a
//!   [`ServiceReport`] with the run's Q(t) trajectory and `R`.
//!
//! Everything is driven by a logical clock and seeded randomness: a run
//! under a given trace and [`FaultPlan`](resilience_core::faults::FaultPlan)
//! replays bit-identically for any `--threads` budget.
//!
//! # Example
//!
//! ```
//! use resilience_service::{
//!     RequestTrace, ServiceConfig, ServiceEngine, TraceSpec,
//! };
//! use resilience_core::faults::FaultPlan;
//!
//! let trace = RequestTrace::generate(&TraceSpec::new(200, 42));
//! let engine = ServiceEngine::new(ServiceConfig::default());
//! let report = engine.serve(&trace, &FaultPlan::none());
//! assert_eq!(report.total(), 200);
//! // With graceful degradation on, requests are served (possibly
//! // degraded) or explicitly shed — never silently failed.
//! assert_eq!(report.failed(), 0);
//! assert!(report.resilience_loss().is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod breaker;
pub mod brownout;
pub mod bulkhead;
pub mod engine;
pub mod request;

pub use breaker::{BreakerState, BreakerTransition, CircuitBreaker};
pub use brownout::{BrownoutConfig, BrownoutController};
pub use bulkhead::{Bulkhead, Job};
pub use engine::{
    record_service_metrics, FamilyStats, ServiceConfig, ServiceEngine, ServiceReport,
};
pub use request::{
    Disposition, Fidelity, Request, RequestOutcome, RequestTrace, ShedReason, TraceSpec,
};

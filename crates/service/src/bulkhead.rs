//! Per-family bulkheads: bounded queues over dedicated logical servers.
//!
//! A bulkhead gives each experiment family its own admission queue and
//! its own slice of logical service capacity, so a poisoned or slow
//! family exhausts only its own compartment — the other families'
//! queues, servers, and breakers never see the damage. Service progress
//! is measured purely on the logical clock (work units per tick), which
//! keeps every scheduling decision independent of wall time and thread
//! count.

use std::collections::VecDeque;

/// A job admitted to a bulkhead: the request index plus the work the
/// logical servers still owe it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Job {
    /// Trace-wide request id.
    pub id: u64,
    /// Remaining work units (set to the effective, possibly degraded,
    /// cost at admission; injected delay faults inflate it).
    pub work: u64,
}

/// One family's compartment: a bounded FIFO queue feeding `servers`
/// logical servers that each retire `rate` work units per tick.
#[derive(Debug, Clone)]
pub struct Bulkhead {
    capacity: usize,
    servers: usize,
    rate: u64,
    queue: VecDeque<Job>,
    in_service: Vec<Option<Job>>,
}

impl Bulkhead {
    /// A bulkhead with `capacity` queue slots over `servers` logical
    /// servers of `rate` work units per tick.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0` or `rate == 0`.
    pub fn new(capacity: usize, servers: usize, rate: u64) -> Self {
        assert!(servers >= 1, "a bulkhead needs at least one server");
        assert!(rate >= 1, "service rate must be at least 1 work unit/tick");
        Bulkhead {
            capacity,
            servers,
            rate,
            queue: VecDeque::new(),
            in_service: vec![None; servers],
        }
    }

    /// Queue occupancy in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            return if self.queue.is_empty() { 0.0 } else { 1.0 };
        }
        self.queue.len() as f64 / self.capacity as f64
    }

    /// Whether the queue has no free slot.
    pub fn queue_full(&self) -> bool {
        self.queue.len() >= self.capacity
    }

    /// Jobs currently queued (not yet in service).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Queue slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total work still owed: queued plus in-service remainders.
    pub fn backlog(&self) -> u64 {
        let queued: u64 = self.queue.iter().map(|j| j.work).sum();
        let serving: u64 = self.in_service.iter().flatten().map(|j| j.work).sum();
        queued + serving
    }

    /// Whether any request is queued or in service.
    pub fn is_busy(&self) -> bool {
        !self.queue.is_empty() || self.in_service.iter().any(Option::is_some)
    }

    /// Ticks until a request of `work` units admitted *now* would
    /// complete, assuming FIFO drain at full aggregate rate. The
    /// aggregate-rate approximation can only underestimate server
    /// idleness, never the backlog, so admission decisions based on it
    /// are conservative in the safe direction (a request admitted on
    /// this bound may finish early, never pathologically late).
    pub fn estimated_completion_ticks(&self, work: u64) -> u64 {
        let aggregate = self.rate * self.servers as u64;
        (self.backlog() + work).div_ceil(aggregate)
    }

    /// Admit a job to the queue.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full — callers must check
    /// [`Bulkhead::queue_full`] first (admission control is the caller's
    /// policy decision, the bulkhead only enforces the bound).
    pub fn admit(&mut self, job: Job) {
        assert!(!self.queue_full(), "admit called on a full bulkhead queue");
        self.queue.push_back(job);
    }

    /// Advance one logical tick: each server retires up to `rate` work
    /// units, completed jobs are returned (in server order, which is
    /// itself deterministic FIFO dispatch order), and freed servers pull
    /// the next queued jobs. A single job's leftover tick capacity does
    /// not spill into the next queued job — one job per server per tick
    /// keeps the model simple and strictly deterministic.
    pub fn tick(&mut self) -> Vec<Job> {
        let mut completed = Vec::new();
        for slot in &mut self.in_service {
            if let Some(job) = slot {
                job.work = job.work.saturating_sub(self.rate);
                if job.work == 0 {
                    completed.push(*job);
                    *slot = None;
                }
            }
        }
        for slot in &mut self.in_service {
            if slot.is_none() {
                match self.queue.pop_front() {
                    Some(job) => *slot = Some(job),
                    None => break,
                }
            }
        }
        completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_fifo_and_reports_completions() {
        let mut b = Bulkhead::new(4, 1, 10);
        b.admit(Job { id: 0, work: 10 });
        b.admit(Job { id: 1, work: 10 });
        assert!(b.is_busy());
        // Tick 1: nothing in service yet; the server picks up job 0.
        assert!(b.tick().is_empty());
        // Tick 2: job 0 retires, job 1 enters service.
        let done = b.tick();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, 0);
        let done = b.tick();
        assert_eq!(done[0].id, 1);
        assert!(!b.is_busy());
    }

    #[test]
    fn parallel_servers_complete_in_server_order() {
        let mut b = Bulkhead::new(4, 2, 5);
        b.admit(Job { id: 7, work: 5 });
        b.admit(Job { id: 8, work: 5 });
        b.tick(); // both enter service
        let done = b.tick();
        assert_eq!(done.iter().map(|j| j.id).collect::<Vec<_>>(), vec![7, 8]);
    }

    #[test]
    fn queue_bound_is_enforced() {
        let mut b = Bulkhead::new(2, 1, 1);
        b.admit(Job { id: 0, work: 1 });
        b.admit(Job { id: 1, work: 1 });
        assert!(b.queue_full());
        assert!((b.occupancy() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "full bulkhead")]
    fn admitting_past_capacity_panics() {
        let mut b = Bulkhead::new(1, 1, 1);
        b.admit(Job { id: 0, work: 1 });
        b.admit(Job { id: 1, work: 1 });
    }

    #[test]
    fn completion_estimate_covers_backlog() {
        let mut b = Bulkhead::new(8, 2, 4);
        b.admit(Job { id: 0, work: 16 });
        b.admit(Job { id: 1, work: 16 });
        // Backlog 32 + own 8 = 40 work over aggregate rate 8 → 5 ticks.
        assert_eq!(b.estimated_completion_ticks(8), 5);
        assert_eq!(b.backlog(), 32);
    }

    #[test]
    fn zero_capacity_bulkhead_is_always_full() {
        let b = Bulkhead::new(0, 1, 1);
        assert!(b.queue_full());
        assert_eq!(b.occupancy(), 0.0);
    }
}

//! Requests, traces, and per-request outcomes.
//!
//! The serving layer is exercised with *open-loop* traces: arrivals are
//! scheduled up front from a seeded Poisson process and do not slow down
//! when the service struggles — exactly the regime in which a system must
//! shed or degrade load instead of queueing unboundedly. A
//! [`RequestTrace`] is a pure function of its [`TraceSpec`], so the same
//! spec replays the same workload forever.

use std::fmt;

use rand::Rng;
use resilience_core::{derive_seed, seeded_rng};
use serde::{Deserialize, Serialize};

/// One request for backend work, in logical-clock units.
///
/// `cost` is the request's demand in abstract *work units*; the engine
/// converts work units into Monte Carlo trials when it actually executes
/// the backend computation, and into service ticks when it schedules the
/// request on a bulkhead's logical servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Trace-unique id; also seeds the request's backend computation.
    pub id: u64,
    /// Index into the trace's family table (the bulkhead key).
    pub family: usize,
    /// Arrival tick on the logical clock.
    pub arrival: u64,
    /// Ticks after arrival by which the response must complete; admission
    /// rejects on arrival when this provably cannot be met.
    pub deadline: u64,
    /// Demand in work units at full fidelity.
    pub cost: u64,
}

/// Parameters of a seeded open-loop request trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpec {
    /// Number of requests to generate.
    pub requests: u64,
    /// Seed of the trace's arrival/cost/family streams.
    pub seed: u64,
    /// Experiment-family labels; one bulkhead per entry.
    pub families: Vec<String>,
    /// Mean arrivals per tick outside the surge window.
    pub base_rate: f64,
    /// Arrival-rate multiplier during the surge window.
    pub surge_factor: f64,
    /// Surge window as fractions of the request index space: requests
    /// with index in `[start·n, end·n)` arrive at the surged rate.
    pub surge_start_frac: f64,
    /// End fraction of the surge window.
    pub surge_end_frac: f64,
    /// Inclusive range of per-request cost in work units.
    pub cost: (u64, u64),
    /// Inclusive range of per-request deadlines in ticks.
    pub deadline: (u64, u64),
}

impl TraceSpec {
    /// The canonical benchmark workload: four experiment families, a
    /// sustainable base rate, and a mid-trace arrival surge that pushes
    /// demand well past the default engine capacity — the open-loop
    /// shock whose Q(t) response the Bruneau metric scores.
    pub fn new(requests: u64, seed: u64) -> Self {
        TraceSpec {
            requests,
            seed,
            families: vec![
                "bruneau".to_string(),
                "dcsp".to_string(),
                "ecology".to_string(),
                "networks".to_string(),
            ],
            base_rate: 1.2,
            surge_factor: 4.0,
            surge_start_frac: 0.35,
            surge_end_frac: 0.60,
            cost: (8, 64),
            deadline: (20, 60),
        }
    }
}

/// A fully materialized open-loop trace: requests sorted by arrival tick
/// (ties in id order), plus the family table and the spec seed (which
/// also keys the fault plan and the backend computations).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    /// Seed the trace was generated from.
    pub seed: u64,
    /// Family labels; `Request::family` indexes into this table.
    pub families: Vec<String>,
    /// The requests, ascending by `(arrival, id)`.
    pub requests: Vec<Request>,
}

impl RequestTrace {
    /// Generate the trace for `spec` — a pure function of the spec.
    ///
    /// Inter-arrival gaps are exponential with the phase's rate
    /// (surged inside the surge window), accumulated in continuous time
    /// and floored onto the tick grid, so several requests may share an
    /// arrival tick under load.
    pub fn generate(spec: &TraceSpec) -> Self {
        let mut rng = seeded_rng(derive_seed(spec.seed, 0x7ace));
        let n_families = spec.families.len().max(1);
        let surge_lo = (spec.surge_start_frac * spec.requests as f64) as u64;
        let surge_hi = (spec.surge_end_frac * spec.requests as f64) as u64;
        let mut clock = 0.0f64;
        let mut requests = Vec::with_capacity(usize::try_from(spec.requests).unwrap_or(0));
        for id in 0..spec.requests {
            let rate = if (surge_lo..surge_hi).contains(&id) {
                spec.base_rate * spec.surge_factor
            } else {
                spec.base_rate
            };
            let u: f64 = rng.gen();
            clock += -(1.0 - u).ln() / rate.max(1e-9);
            let family = rng.gen_range(0..n_families);
            let cost = rng.gen_range(spec.cost.0..=spec.cost.1.max(spec.cost.0));
            let deadline = rng.gen_range(spec.deadline.0..=spec.deadline.1.max(spec.deadline.0));
            requests.push(Request {
                id,
                family,
                arrival: clock as u64,
                deadline,
                cost,
            });
        }
        RequestTrace {
            seed: spec.seed,
            families: spec.families.clone(),
            requests,
        }
    }

    /// Number of requests in the trace.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Last arrival tick (0 for an empty trace).
    pub fn horizon(&self) -> u64 {
        self.requests.last().map_or(0, |r| r.arrival)
    }
}

/// The fidelity a request was served at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fidelity {
    /// Full-cost backend computation.
    Full,
    /// Brownout level 1: the backend ran at a fraction of the trials.
    Reduced,
    /// Brownout level 2 / breaker fallback: a precomputed per-family
    /// table answered instead of the backend.
    Cached,
}

impl Fidelity {
    /// Whether this fidelity counts as degraded service.
    pub fn is_degraded(&self) -> bool {
        !matches!(self, Fidelity::Full)
    }
}

impl fmt::Display for Fidelity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fidelity::Full => write!(f, "full"),
            Fidelity::Reduced => write!(f, "reduced"),
            Fidelity::Cached => write!(f, "cached"),
        }
    }
}

/// Why admission control rejected a request on arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedReason {
    /// The family's bulkhead queue was at capacity.
    QueueFull,
    /// The backlog guaranteed the deadline could not be met.
    DeadlineUnmeetable,
    /// The family's circuit breaker was open (and no cached fallback
    /// was allowed — degradation off).
    BreakerOpen,
}

impl fmt::Display for ShedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShedReason::QueueFull => write!(f, "queue-full"),
            ShedReason::DeadlineUnmeetable => write!(f, "deadline-unmeetable"),
            ShedReason::BreakerOpen => write!(f, "breaker-open"),
        }
    }
}

/// The adjudicated fate of one request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Disposition {
    /// The request was served (possibly degraded).
    Served {
        /// Fidelity it was served at.
        fidelity: Fidelity,
        /// Completion tick minus arrival tick.
        latency: u64,
        /// Folded backend result (or the cached table value) — included
        /// in the outcome log so replay tests catch any thread-dependent
        /// computation, not just thread-dependent scheduling.
        value: u64,
    },
    /// Rejected at admission — the explicit, bounded-cost "no".
    Shed {
        /// Why admission said no.
        reason: ShedReason,
    },
    /// The backend failed and no degraded fallback was allowed
    /// (degradation off). Never produced when brownout is enabled.
    Failed {
        /// The injected fault kind that killed the attempt.
        cause: String,
    },
}

/// One line of the per-request outcome log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestOutcome {
    /// Request id.
    pub id: u64,
    /// Family index.
    pub family: usize,
    /// Tick at which the fate was decided (arrival tick for sheds,
    /// completion tick for served/failed requests).
    pub decided_at: u64,
    /// The fate.
    pub disposition: Disposition,
}

impl fmt::Display for RequestOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} fam={} t={} ", self.id, self.family, self.decided_at)?;
        match &self.disposition {
            Disposition::Served {
                fidelity,
                latency,
                value,
            } => write!(f, "served {fidelity} latency={latency} value={value:016x}"),
            Disposition::Shed { reason } => write!(f, "shed {reason}"),
            Disposition::Failed { cause } => write!(f, "failed {cause}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_replay_exactly() {
        let spec = TraceSpec::new(500, 42);
        let a = RequestTrace::generate(&spec);
        let b = RequestTrace::generate(&spec);
        assert_eq!(a, b, "same spec, same trace");
        let other = RequestTrace::generate(&TraceSpec::new(500, 43));
        assert_ne!(a, other, "seed keys the trace");
    }

    #[test]
    fn arrivals_are_monotone_and_fields_in_range() {
        let spec = TraceSpec::new(400, 7);
        let trace = RequestTrace::generate(&spec);
        assert_eq!(trace.len(), 400);
        let mut last = 0;
        for (i, r) in trace.requests.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert!(r.arrival >= last, "arrivals sorted");
            last = r.arrival;
            assert!(r.family < trace.families.len());
            assert!((spec.cost.0..=spec.cost.1).contains(&r.cost));
            assert!((spec.deadline.0..=spec.deadline.1).contains(&r.deadline));
        }
        assert_eq!(trace.horizon(), last);
    }

    #[test]
    fn surge_window_compresses_interarrivals() {
        let spec = TraceSpec::new(1000, 11);
        let trace = RequestTrace::generate(&spec);
        let lo = (spec.surge_start_frac * 1000.0) as usize;
        let hi = (spec.surge_end_frac * 1000.0) as usize;
        let span = |a: usize, b: usize| {
            (trace.requests[b - 1].arrival - trace.requests[a].arrival) as f64 / (b - a) as f64
        };
        let surge_gap = span(lo, hi);
        let calm_gap = span(0, lo);
        assert!(
            surge_gap < calm_gap / 2.0,
            "surge must at least halve the mean gap: surge={surge_gap} calm={calm_gap}"
        );
    }

    #[test]
    fn empty_trace_is_well_behaved() {
        let trace = RequestTrace::generate(&TraceSpec::new(0, 1));
        assert!(trace.is_empty());
        assert_eq!(trace.horizon(), 0);
    }

    #[test]
    fn outcome_lines_render_each_disposition() {
        let served = RequestOutcome {
            id: 3,
            family: 1,
            decided_at: 9,
            disposition: Disposition::Served {
                fidelity: Fidelity::Reduced,
                latency: 4,
                value: 0xabcd,
            },
        };
        let line = served.to_string();
        assert!(line.contains("served reduced"), "{line}");
        assert!(line.contains("latency=4"), "{line}");
        let shed = RequestOutcome {
            id: 4,
            family: 0,
            decided_at: 2,
            disposition: Disposition::Shed {
                reason: ShedReason::QueueFull,
            },
        };
        assert!(shed.to_string().contains("shed queue-full"));
        let failed = RequestOutcome {
            id: 5,
            family: 2,
            decided_at: 7,
            disposition: Disposition::Failed {
                cause: "panic".into(),
            },
        };
        assert!(failed.to_string().contains("failed panic"));
    }
}

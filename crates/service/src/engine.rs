//! The graceful-degradation service engine.
//!
//! [`ServiceEngine::serve`] replays an open-loop [`RequestTrace`]
//! against the backend engines on a discrete logical clock. Per tick:
//!
//! 1. every family bulkhead advances one tick of logical service;
//!    completed requests execute their backend computation (a seeded
//!    Monte Carlo fold on the configured thread budget) and are
//!    adjudicated against the fault plan and the family's circuit
//!    breaker;
//! 2. the tick's arrivals pass admission control — bulkhead bounds,
//!    deadline feasibility, breaker state, and the brownout dimmer —
//!    and are admitted (possibly degraded), answered from cache, or
//!    explicitly shed;
//! 3. the tick's quality sample `Q(t)` is recorded and fed back to the
//!    brownout controller (self-scored control).
//!
//! **Determinism contract.** Every decision reads only logical-clock
//! state: arrival ticks, work units, seeded fault lookups, and breaker/
//! dimmer state derived from them. The only parallelism is inside the
//! backend computation, which uses [`ParallelTrials`] and is therefore
//! bit-identical for any thread budget. Consequently the entire
//! per-request outcome log — dispositions, latencies, *and* backend
//! values — replays exactly for any `threads`, which is what the replay
//! tests assert.
//!
//! **Q(t) definition.** For a tick with `n > 0` adjudications,
//! `Q(t) = 100 · (1 − deficit/n)` where each shed or failed request
//! contributes `1.0` to the deficit and each degraded response
//! contributes [`ServiceConfig::reduced_penalty`] or
//! [`ServiceConfig::cached_penalty`]; ticks with no adjudications
//! sample 100 (no demand went unserved). The run's resilience loss is
//! `bruneau::resilience_loss` over this trajectory — the service scores
//! its own resilience triangle.

use rand::Rng;
use resilience_anticipate::{
    AnticipationConfig, AnticipationController, LossWindow, ModeTransition, OperatingMode,
};
use resilience_core::bruneau::resilience_loss;
use resilience_core::faults::{FaultKind, FaultPlan, SlotFault};
use resilience_core::quality::{QualityTrajectory, FULL_QUALITY};
use resilience_core::rng::derive_seed;
use resilience_core::runtime::ParallelTrials;
use resilience_telemetry::{DeficitCause, Event, Telemetry};

use crate::breaker::{BreakerTransition, CircuitBreaker};
use crate::brownout::{BrownoutConfig, BrownoutController};
use crate::bulkhead::{Bulkhead, Job};
use crate::request::{Disposition, Fidelity, Request, RequestOutcome, RequestTrace, ShedReason};

/// Tuning of the serving layer. All quantities are logical-clock units;
/// `threads` is the only physical knob and never changes any output.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Logical servers dedicated to each family bulkhead.
    pub servers_per_family: usize,
    /// Work units one logical server retires per tick.
    pub rate_per_server: u64,
    /// Queue slots per family bulkhead.
    pub queue_capacity: usize,
    /// Consecutive backend failures that trip a family's breaker.
    pub breaker_threshold: u32,
    /// Ticks a tripped breaker stays open before probing.
    pub breaker_cooldown: u64,
    /// Whether graceful degradation (brownout + cached fallbacks) is on.
    /// Off, the service can only serve at full fidelity or say no — the
    /// ablation arm of the BENCH_4 comparison.
    pub degradation: bool,
    /// Brownout controller tuning (unused when `degradation` is off).
    pub brownout: BrownoutConfig,
    /// Quality deficit charged for a reduced-fidelity response.
    pub reduced_penalty: f64,
    /// Quality deficit charged for a cached response.
    pub cached_penalty: f64,
    /// Monte Carlo trials per work unit in the backend computation.
    pub trials_per_work_unit: u64,
    /// Physical worker threads for backend computations.
    pub threads: usize,
    /// The anticipation loop: early-warning detection over the live
    /// deficit stream plus Normal/Alert/Emergency policy switching.
    /// `None` (the default) keeps the purely reactive serve path with
    /// outputs byte-identical to previous releases.
    pub anticipation: Option<AnticipationConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            servers_per_family: 2,
            rate_per_server: 8,
            queue_capacity: 16,
            breaker_threshold: 3,
            breaker_cooldown: 30,
            degradation: true,
            brownout: BrownoutConfig::default(),
            reduced_penalty: 0.25,
            cached_penalty: 0.5,
            trials_per_work_unit: 16,
            threads: 1,
            anticipation: None,
        }
    }
}

/// Per-family tallies in the final report.
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct FamilyStats {
    /// Requests addressed to the family.
    pub arrivals: u64,
    /// Served at full fidelity.
    pub served_full: u64,
    /// Served reduced.
    pub served_reduced: u64,
    /// Served from cache.
    pub served_cached: u64,
    /// Shed at admission.
    pub shed: u64,
    /// Hard backend failures (degradation off only).
    pub failed: u64,
}

/// The run's complete, deterministic self-measurement.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ServiceReport {
    /// Per-request outcomes in request-id order; the replayable log.
    pub outcomes: Vec<RequestOutcome>,
    /// Per-family tallies, indexed like the trace's family table.
    pub per_family: Vec<FamilyStats>,
    /// Breaker transitions per family.
    pub breaker_transitions: Vec<Vec<BreakerTransition>>,
    /// Brownout level changes `(tick, level)`.
    pub brownout_history: Vec<(u64, u8)>,
    /// Operating-mode transitions of the anticipation loop (empty when
    /// anticipation is off; bounded by its configured cap).
    pub mode_transitions: Vec<ModeTransition>,
    /// Per-tick warning score in milli-units (empty when anticipation
    /// is off).
    pub warning_scores: Vec<u64>,
    /// Ticks spent in Alert.
    pub alert_ticks: u64,
    /// Ticks spent in Emergency.
    pub emergency_ticks: u64,
    /// The Q(t) trajectory (dt = 1 tick).
    pub quality: QualityTrajectory,
    /// Logical ticks the run spanned.
    pub ticks: u64,
}

impl ServiceReport {
    /// The run's Bruneau resilience loss `R = ∫ [100 − Q(t)] dt`.
    pub fn resilience_loss(&self) -> f64 {
        resilience_loss(&self.quality)
    }

    /// Requests served at any fidelity.
    pub fn served(&self) -> u64 {
        self.per_family
            .iter()
            .map(|f| f.served_full + f.served_reduced + f.served_cached)
            .sum()
    }

    /// Requests served degraded (reduced or cached).
    pub fn degraded(&self) -> u64 {
        self.per_family
            .iter()
            .map(|f| f.served_reduced + f.served_cached)
            .sum()
    }

    /// Requests shed at admission.
    pub fn shed(&self) -> u64 {
        self.per_family.iter().map(|f| f.shed).sum()
    }

    /// Hard backend failures (always 0 with degradation on).
    pub fn failed(&self) -> u64 {
        self.per_family.iter().map(|f| f.failed).sum()
    }

    /// Total requests adjudicated.
    pub fn total(&self) -> u64 {
        self.per_family.iter().map(|f| f.arrivals).sum()
    }

    /// Served fraction of all requests (any fidelity).
    pub fn goodput(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        self.served() as f64 / total as f64
    }

    /// Shed fraction of all requests.
    pub fn shed_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.shed() as f64 / total as f64
    }

    /// Mean latency over served requests in ticks (0 if none served).
    pub fn mean_latency(&self) -> f64 {
        let mut sum = 0u64;
        let mut n = 0u64;
        for o in &self.outcomes {
            if let Disposition::Served { latency, .. } = o.disposition {
                sum += latency;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }
}

/// A request admitted to a bulkhead, waiting for its logical completion.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    request: Request,
    fidelity: Fidelity,
    /// The fault adjudicated against this request (looked up once at
    /// admission; pure function of the plan and the request id).
    fault: Option<FaultKind>,
}

/// The serving front end: bulkheads, breakers, and the brownout dimmer
/// over a set of backend families.
#[derive(Debug)]
pub struct ServiceEngine {
    config: ServiceConfig,
}

impl ServiceEngine {
    /// An engine with the given tuning.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`, `servers_per_family == 0`, or
    /// `rate_per_server == 0` (delegated to the bulkhead and runtime
    /// constructors).
    pub fn new(config: ServiceConfig) -> Self {
        assert!(config.threads >= 1, "thread budget must be at least 1");
        ServiceEngine { config }
    }

    /// Replay `trace` under `plan`, returning the deterministic report.
    ///
    /// The plan is keyed by `(family label, trace seed, request id)` —
    /// the same slot-key scheme as the Monte Carlo supervisor — so a
    /// given chaos plan damages the same requests no matter how the
    /// service schedules them.
    pub fn serve(&self, trace: &RequestTrace, plan: &FaultPlan) -> ServiceReport {
        self.serve_inner(trace, plan, None)
    }

    /// [`ServiceEngine::serve`] with the telemetry spine attached:
    /// every admission verdict, disposition, cache hit/miss, breaker
    /// transition, brownout move, and bulkhead occupancy change is
    /// recorded into `telemetry` as it happens, the trajectory observer
    /// is charged in the exact order the engine accumulates its own
    /// deficit (so the observed Q(t) is bit-identical to the report's),
    /// and the service metric families are registered at the end.
    ///
    /// The returned report is byte-identical to what [`serve`]
    /// (telemetry off) produces for the same inputs — recording only
    /// observes, it never steers.
    ///
    /// [`serve`]: ServiceEngine::serve
    pub fn serve_traced(
        &self,
        trace: &RequestTrace,
        plan: &FaultPlan,
        telemetry: &mut Telemetry,
    ) -> ServiceReport {
        self.serve_inner(trace, plan, Some(telemetry))
    }

    fn serve_inner(
        &self,
        trace: &RequestTrace,
        plan: &FaultPlan,
        mut telemetry: Option<&mut Telemetry>,
    ) -> ServiceReport {
        let cfg = &self.config;
        let n_families = trace.families.len().max(1);
        let pool = ParallelTrials::new(cfg.threads);
        let backend_master = derive_seed(trace.seed, 0xbac0);

        // Precomputed per-family cache tables: the level-2 / fallback
        // answer. Deterministic (seeded) and computed before the clock
        // starts, so cache hits cost zero backend work during the run.
        let cached_values: Vec<u64> = (0..n_families)
            .map(|fam| {
                let seed = derive_seed(backend_master, 0xcafe + fam as u64);
                Self::backend_value(&pool, seed, 64)
            })
            .collect();

        let mut bulkheads: Vec<Bulkhead> = (0..n_families)
            .map(|_| {
                Bulkhead::new(
                    cfg.queue_capacity,
                    cfg.servers_per_family,
                    cfg.rate_per_server,
                )
            })
            .collect();
        let mut breakers: Vec<CircuitBreaker> = (0..n_families)
            .map(|_| CircuitBreaker::new(cfg.breaker_threshold, cfg.breaker_cooldown))
            .collect();
        let mut brownout = BrownoutController::new(cfg.brownout.clone());
        // The anticipation loop: a warning detector over the raw
        // pressure signal, the mode state machine, and the loss window
        // behind heavy-tail-aware provisioning. All logical-clock
        // state — `None` leaves the reactive path untouched.
        let mut anticipation = cfg.anticipation.as_ref().map(|a| {
            (
                AnticipationController::new(a.clone()),
                LossWindow::new(a.loss_window),
            )
        });
        // Mode-policy levers currently in force. The controller starts
        // in Normal, so Normal's policy set applies from tick 0 — not
        // only after the first transition.
        let mut deadline_scale_milli: u64 = 1000;
        let mut pressure_bias: f64 = 0.0;
        if let Some(acfg) = cfg.anticipation.as_ref() {
            brownout.set_floor(0, acfg.normal.brownout_floor);
            brownout.set_ceiling(0, acfg.normal.brownout_ceiling);
            deadline_scale_milli = acfg.normal.deadline_scale_milli;
            let cooldown = cfg
                .breaker_cooldown
                .saturating_mul(acfg.normal.cooldown_scale_milli)
                / 1000;
            for breaker in breakers.iter_mut() {
                breaker.set_cooldown(cooldown);
            }
        }
        let mut warning_scores: Vec<u64> = Vec::new();

        let mut outcomes: Vec<Option<RequestOutcome>> = vec![None; trace.len()];
        let mut per_family = vec![FamilyStats::default(); n_families];
        let mut in_flight: Vec<Option<InFlight>> = vec![None; trace.len()];
        let mut quality = QualityTrajectory::new(1.0);
        let mut next_arrival = 0usize; // index into trace.requests

        let mut tick = 0u64;
        let mut pending = trace.len() as u64;
        // Hard ceiling so a logic bug can never hang the run: every tick
        // with outstanding work retires at least one work unit somewhere
        // once arrivals stop.
        let total_work: u64 = trace.requests.iter().map(|r| r.cost).sum();
        let delay_work = plan.delay.as_millis() as u64 * cfg.rate_per_server;
        let tick_ceiling = trace
            .horizon()
            .saturating_add(total_work)
            .saturating_add(trace.len() as u64 * delay_work)
            .saturating_add(cfg.breaker_cooldown + 1000);

        // Telemetry cursors: how many breaker transitions / brownout
        // moves have already been emitted, and the last queued depth
        // emitted per family (occupancy events fire on change only).
        let mut seen_transitions = vec![0usize; n_families];
        let mut seen_brownout = 0usize;
        let mut seen_modes = 0usize;
        let mut last_warning: Option<u64> = None;
        let mut last_queued: Vec<Option<usize>> = vec![None; n_families];

        while pending > 0 {
            assert!(
                tick <= tick_ceiling,
                "service engine failed to converge by tick {tick}"
            );
            let mut deficit = 0.0f64;
            // Sheds and hard failures only — the involuntary part of the
            // deficit. The brownout controller must steer by this (plus
            // occupancy), not the full deficit: counting its own planned
            // degradation as pressure would be a positive feedback loop
            // that never lets the dimmer recover (at level 2 every
            // response charges `cached_penalty`, which would hold the
            // pressure above the raise threshold forever).
            let mut hard = 0u64;
            let mut adjudicated = 0u64;

            // --- 1. Advance service; adjudicate completions. ---------
            for fam in 0..n_families {
                for job in bulkheads[fam].tick() {
                    let idx = usize::try_from(job.id).expect("request id fits usize");
                    let flight = in_flight[idx].take().expect("completed job was in flight");
                    let (disposition, penalty) = self.adjudicate(
                        &pool,
                        backend_master,
                        &cached_values,
                        &mut breakers,
                        &flight,
                        tick,
                    );
                    match &disposition {
                        Disposition::Served { fidelity, .. } => match fidelity {
                            Fidelity::Full => per_family[fam].served_full += 1,
                            Fidelity::Reduced => per_family[fam].served_reduced += 1,
                            Fidelity::Cached => per_family[fam].served_cached += 1,
                        },
                        Disposition::Failed { .. } => {
                            per_family[fam].failed += 1;
                            hard += 1;
                        }
                        Disposition::Shed { .. } => unreachable!("completions are never shed"),
                    }
                    if let Some(tel) = telemetry.as_deref_mut() {
                        match &disposition {
                            Disposition::Served {
                                fidelity, latency, ..
                            } => {
                                tel.tracer.record(
                                    tick,
                                    Event::RequestServed {
                                        id: flight.request.id,
                                        family: fam as u32,
                                        fidelity: fidelity.to_string(),
                                        latency: *latency,
                                    },
                                );
                                tel.tracer.record(
                                    tick,
                                    match fidelity {
                                        Fidelity::Cached => Event::CacheHit { family: fam as u32 },
                                        _ => Event::CacheMiss { family: fam as u32 },
                                    },
                                );
                                tel.trajectory.charge(DeficitCause::Degraded, penalty);
                            }
                            Disposition::Failed { cause } => {
                                tel.tracer.record(
                                    tick,
                                    Event::RequestFailed {
                                        id: flight.request.id,
                                        family: fam as u32,
                                        cause: cause.clone(),
                                    },
                                );
                                tel.trajectory.charge(DeficitCause::Failed, penalty);
                            }
                            Disposition::Shed { .. } => unreachable!(),
                        }
                    }
                    outcomes[idx] = Some(RequestOutcome {
                        id: flight.request.id,
                        family: fam,
                        decided_at: tick,
                        disposition,
                    });
                    deficit += penalty;
                    adjudicated += 1;
                    pending -= 1;
                }
            }

            // --- 2. Admit this tick's arrivals, in trace order. ------
            while next_arrival < trace.len() && trace.requests[next_arrival].arrival == tick {
                let request = trace.requests[next_arrival];
                next_arrival += 1;
                let fam = request.family.min(n_families - 1);
                per_family[fam].arrivals += 1;
                let fault = plan.slot_fault(&trace.families[fam], trace.seed, request.id);
                let decision = self.admit(
                    &mut bulkheads[fam],
                    &mut breakers[fam],
                    &brownout,
                    &request,
                    fault,
                    cached_values[fam],
                    delay_work,
                    deadline_scale_milli,
                    tick,
                );
                let idx = usize::try_from(request.id).expect("request id fits usize");
                match decision {
                    Admission::Enqueued(flight) => {
                        if let Some(tel) = telemetry.as_deref_mut() {
                            tel.tracer.record(
                                tick,
                                Event::RequestAdmitted {
                                    id: request.id,
                                    family: fam as u32,
                                    fidelity: flight.fidelity.to_string(),
                                },
                            );
                        }
                        in_flight[idx] = Some(flight);
                    }
                    Admission::Immediate(disposition, penalty) => {
                        if let Disposition::Shed { .. } = disposition {
                            per_family[fam].shed += 1;
                            hard += 1;
                        } else {
                            per_family[fam].served_cached += 1;
                        }
                        if let Some(tel) = telemetry.as_deref_mut() {
                            match &disposition {
                                Disposition::Shed { reason } => {
                                    tel.tracer.record(
                                        tick,
                                        Event::RequestShed {
                                            id: request.id,
                                            family: fam as u32,
                                            reason: reason.to_string(),
                                        },
                                    );
                                    tel.trajectory.charge(DeficitCause::Shed, penalty);
                                }
                                Disposition::Served { latency, .. } => {
                                    tel.tracer.record(
                                        tick,
                                        Event::RequestServed {
                                            id: request.id,
                                            family: fam as u32,
                                            fidelity: Fidelity::Cached.to_string(),
                                            latency: *latency,
                                        },
                                    );
                                    tel.tracer
                                        .record(tick, Event::CacheHit { family: fam as u32 });
                                    tel.trajectory.charge(DeficitCause::Degraded, penalty);
                                }
                                Disposition::Failed { .. } => {
                                    unreachable!("admission never fails a request")
                                }
                            }
                        }
                        outcomes[idx] = Some(RequestOutcome {
                            id: request.id,
                            family: fam,
                            decided_at: tick,
                            disposition,
                        });
                        deficit += penalty;
                        adjudicated += 1;
                        pending -= 1;
                    }
                }
            }

            // --- 3. Sample Q(t); feed the self-scored controller. ----
            let q = if adjudicated == 0 {
                FULL_QUALITY
            } else {
                FULL_QUALITY * (1.0 - deficit / adjudicated as f64)
            };
            quality.push(q);
            let occupancy = bulkheads
                .iter()
                .map(Bulkhead::occupancy)
                .fold(0.0f64, f64::max);
            let hard_deficit = if adjudicated == 0 {
                0.0
            } else {
                hard as f64 / adjudicated as f64
            };
            if cfg.degradation {
                // `pressure_bias` is the anticipatory provisioning
                // estimate (0 in Normal): the dimmer steers by the
                // larger of what is being lost now and what the loss
                // distribution says to provision for.
                brownout.observe(tick, hard_deficit.max(pressure_bias), occupancy);
            }
            if let Some((controller, losses)) = anticipation.as_mut() {
                if adjudicated > 0 && deficit > 0.0 {
                    losses.record(deficit / adjudicated as f64);
                }
                let before = controller.mode();
                let mode = controller.observe(tick, hard_deficit.max(occupancy));
                warning_scores.push(controller.score_milli());
                if mode != before {
                    let acfg = controller.config();
                    let policy = acfg.policy(mode).clone();
                    let (quantile_milli, heavy_alpha) =
                        (acfg.quantile_milli, acfg.heavy_tail_alpha);
                    brownout.set_floor(tick, policy.brownout_floor);
                    brownout.set_ceiling(tick, policy.brownout_ceiling);
                    let cooldown = cfg
                        .breaker_cooldown
                        .saturating_mul(policy.cooldown_scale_milli)
                        / 1000;
                    for breaker in breakers.iter_mut() {
                        breaker.set_cooldown(cooldown);
                    }
                    deadline_scale_milli = policy.deadline_scale_milli;
                    // Provisioning is re-estimated at mode changes (not
                    // every tick): the quantile sort stays off the hot
                    // path and the bias is constant within a mode.
                    pressure_bias = match mode {
                        OperatingMode::Normal => 0.0,
                        _ => losses
                            .provision(policy.provisioning, quantile_milli, heavy_alpha)
                            .clamp(0.0, 1.0),
                    };
                }
            }
            if let Some(tel) = telemetry.as_deref_mut() {
                // State-machine events surfaced once per change, in
                // family order — all at the current tick, so the lane-0
                // buffer stays tick-ordered.
                for (fam, breaker) in breakers.iter().enumerate() {
                    let all = breaker.transitions();
                    for t in &all[seen_transitions[fam]..] {
                        tel.tracer.record(
                            tick,
                            Event::BreakerTransition {
                                family: fam as u32,
                                from: t.from.to_string(),
                                to: t.to.to_string(),
                            },
                        );
                    }
                    seen_transitions[fam] = all.len();
                }
                for &(_, level) in &brownout.history()[seen_brownout..] {
                    tel.tracer
                        .record(tick, Event::BrownoutLevelChange { level });
                }
                seen_brownout = brownout.history().len();
                if let Some((controller, _)) = anticipation.as_ref() {
                    for t in &controller.transitions()[seen_modes..] {
                        tel.tracer.record(
                            tick,
                            Event::ModeTransition {
                                from: t.from.to_string(),
                                to: t.to.to_string(),
                                score_milli: t.score_milli,
                            },
                        );
                    }
                    seen_modes = controller.transitions().len();
                    let score = controller.score_milli();
                    if last_warning != Some(score) {
                        tel.tracer
                            .record(tick, Event::WarningScore { score_milli: score });
                        last_warning = Some(score);
                    }
                }
                for (fam, b) in bulkheads.iter().enumerate() {
                    let queued = b.queued();
                    if last_queued[fam] != Some(queued) {
                        tel.tracer.record(
                            tick,
                            Event::BulkheadOccupancy {
                                family: fam as u32,
                                queued: queued as u32,
                                capacity: b.capacity() as u32,
                            },
                        );
                        last_queued[fam] = Some(queued);
                    }
                }
                // The observer accumulated the same penalties in the
                // same order as `deficit` above, so its sample is
                // bit-identical to the engine's own.
                let observed = tel.trajectory.end_tick(adjudicated);
                debug_assert_eq!(observed.to_bits(), q.to_bits());
            }
            tick += 1;
        }

        let outcomes: Vec<RequestOutcome> = outcomes
            .into_iter()
            .map(|o| o.expect("every request adjudicated"))
            .collect();
        let (mode_transitions, alert_ticks, emergency_ticks) = match &anticipation {
            Some((controller, _)) => (
                controller.transitions().to_vec(),
                controller.alert_ticks(),
                controller.emergency_ticks(),
            ),
            None => (Vec::new(), 0, 0),
        };
        let report = ServiceReport {
            outcomes,
            per_family,
            breaker_transitions: breakers.iter().map(|b| b.transitions().to_vec()).collect(),
            brownout_history: brownout.history().to_vec(),
            mode_transitions,
            warning_scores,
            alert_ticks,
            emergency_ticks,
            quality,
            ticks: tick,
        };
        if let Some(tel) = telemetry {
            record_service_metrics(&mut tel.metrics, &report);
        }
        report
    }

    /// Admission control for one arrival. Returns either the in-flight
    /// record (enqueued on the bulkhead) or an immediate disposition
    /// (cached answer or shed) plus its quality penalty.
    #[allow(clippy::too_many_arguments)]
    fn admit(
        &self,
        bulkhead: &mut Bulkhead,
        breaker: &mut CircuitBreaker,
        brownout: &BrownoutController,
        request: &Request,
        fault: Option<SlotFault>,
        cached_value: u64,
        delay_work: u64,
        deadline_scale_milli: u64,
        tick: u64,
    ) -> Admission {
        let cfg = &self.config;
        let fault_kind = fault.map(|f| f.kind);
        // The anticipation policy in force may tighten deadlines
        // (scale < 1000): marginal requests degrade or shed at
        // admission instead of piling onto queues the warning says are
        // about to stop draining. Integer milli-scaling keeps the
        // effective deadline a pure function of logical state.
        let deadline = request.deadline.saturating_mul(deadline_scale_milli) / 1000;

        // Breaker gate first: a tripped backend accepts no new work.
        if !breaker.allow(tick) {
            return if cfg.degradation {
                // Brownout the failure: answer from cache rather than
                // turning the caller away.
                Admission::Immediate(
                    Disposition::Served {
                        fidelity: Fidelity::Cached,
                        latency: 0,
                        value: cached_value,
                    },
                    cfg.cached_penalty,
                )
            } else {
                Admission::Immediate(
                    Disposition::Shed {
                        reason: ShedReason::BreakerOpen,
                    },
                    1.0,
                )
            };
        }

        // Candidate fidelities, cheapest-last: the dimmer level picks
        // the starting fidelity; under pressure admission may degrade
        // one step further to fit the deadline, and level 2 answers
        // from cache outright.
        let level = if cfg.degradation { brownout.level() } else { 0 };
        if cfg.degradation && level >= 2 {
            return Admission::Immediate(
                Disposition::Served {
                    fidelity: Fidelity::Cached,
                    latency: 0,
                    value: cached_value,
                },
                cfg.cached_penalty,
            );
        }
        let mut candidates: Vec<Fidelity> = Vec::with_capacity(2);
        if level == 0 {
            candidates.push(Fidelity::Full);
        }
        if cfg.degradation && level <= 1 {
            candidates.push(Fidelity::Reduced);
        }

        if bulkhead.queue_full() {
            return Admission::Immediate(
                Disposition::Shed {
                    reason: ShedReason::QueueFull,
                },
                1.0,
            );
        }
        for fidelity in candidates {
            let work = Self::effective_work(cfg, request.cost, fidelity)
                + if fault_kind == Some(FaultKind::Delay) {
                    delay_work
                } else {
                    0
                };
            if bulkhead.estimated_completion_ticks(work) <= deadline {
                bulkhead.admit(Job {
                    id: request.id,
                    work,
                });
                breaker.on_admitted();
                return Admission::Enqueued(InFlight {
                    request: *request,
                    fidelity,
                    fault: fault_kind,
                });
            }
        }
        Admission::Immediate(
            Disposition::Shed {
                reason: ShedReason::DeadlineUnmeetable,
            },
            1.0,
        )
    }

    /// Adjudicate a logically-completed request: run (or skip) the
    /// backend computation, consult the fault plan, update the breaker,
    /// and produce the disposition plus its quality penalty.
    fn adjudicate(
        &self,
        pool: &ParallelTrials,
        backend_master: u64,
        cached_values: &[u64],
        breakers: &mut [CircuitBreaker],
        flight: &InFlight,
        tick: u64,
    ) -> (Disposition, f64) {
        let cfg = &self.config;
        let request = &flight.request;
        let fam = request.family.min(breakers.len() - 1);
        let latency = tick.saturating_sub(request.arrival);
        match flight.fault {
            Some(FaultKind::Panic) | Some(FaultKind::Poison) => {
                breakers[fam].record_failure(tick);
                let cause = match flight.fault {
                    Some(FaultKind::Panic) => "backend-panic",
                    _ => "poisoned-result",
                };
                if cfg.degradation {
                    // Graceful fallback: the cached table answers for
                    // the broken backend; degraded, never an error.
                    (
                        Disposition::Served {
                            fidelity: Fidelity::Cached,
                            latency,
                            value: cached_values[fam],
                        },
                        cfg.cached_penalty,
                    )
                } else {
                    (
                        Disposition::Failed {
                            cause: cause.to_string(),
                        },
                        1.0,
                    )
                }
            }
            // Delay faults only inflate the logical service time (added
            // at admission); the computation itself is healthy.
            Some(FaultKind::Delay) | None => {
                breakers[fam].record_success(tick);
                let trials = Self::effective_work(cfg, request.cost, flight.fidelity)
                    * cfg.trials_per_work_unit;
                let value =
                    Self::backend_value(pool, derive_seed(backend_master, request.id), trials);
                (
                    Disposition::Served {
                        fidelity: flight.fidelity,
                        latency,
                        value,
                    },
                    match flight.fidelity {
                        Fidelity::Full => 0.0,
                        Fidelity::Reduced => cfg.reduced_penalty,
                        Fidelity::Cached => cfg.cached_penalty,
                    },
                )
            }
        }
    }

    /// Work units actually scheduled for a request at `fidelity`.
    fn effective_work(cfg: &ServiceConfig, cost: u64, fidelity: Fidelity) -> u64 {
        match fidelity {
            Fidelity::Full => cost.max(1),
            Fidelity::Reduced => (cost / cfg.brownout.reduced_divisor.max(1)).max(1),
            Fidelity::Cached => 0,
        }
    }

    /// The backend computation: an XOR fold of seeded Monte Carlo
    /// draws on the physical thread pool — bit-identical for any thread
    /// budget by the runtime's determinism contract.
    fn backend_value(pool: &ParallelTrials, seed: u64, trials: u64) -> u64 {
        pool.run(
            trials,
            seed,
            |idx, rng| idx.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ rng.gen::<u64>(),
            0u64,
            |acc, x| acc ^ x,
        )
    }
}

/// Register the service-layer metric families for `report` in
/// `registry`. Called by [`ServiceEngine::serve_traced`] after the run;
/// public so drivers can score an existing report into a shared
/// registry. All values are pure functions of the report, so the
/// exposition is as deterministic as the report itself.
pub fn record_service_metrics(
    registry: &mut resilience_telemetry::MetricsRegistry,
    report: &ServiceReport,
) {
    registry.inc_counter(
        "service_requests_total",
        "Requests adjudicated by the serving layer",
        report.total(),
    );
    registry.inc_counter(
        "service_served_full_total",
        "Requests served at full fidelity",
        report.per_family.iter().map(|f| f.served_full).sum(),
    );
    registry.inc_counter(
        "service_served_reduced_total",
        "Requests served at reduced fidelity",
        report.per_family.iter().map(|f| f.served_reduced).sum(),
    );
    registry.inc_counter(
        "service_served_cached_total",
        "Requests answered from the precomputed cache table",
        report.per_family.iter().map(|f| f.served_cached).sum(),
    );
    registry.inc_counter(
        "service_shed_total",
        "Requests shed at admission",
        report.shed(),
    );
    registry.inc_counter(
        "service_failed_total",
        "Requests failed hard (degradation off)",
        report.failed(),
    );
    registry.inc_counter(
        "service_breaker_transitions_total",
        "Circuit-breaker state changes across all families",
        report
            .breaker_transitions
            .iter()
            .map(|t| t.len() as u64)
            .sum(),
    );
    registry.inc_counter(
        "service_brownout_changes_total",
        "Brownout dimmer level changes",
        report.brownout_history.len() as u64,
    );
    registry.set_gauge(
        "service_ticks",
        "Logical ticks the run spanned",
        report.ticks as f64,
    );
    registry.set_gauge(
        "service_goodput",
        "Served fraction of all requests (any fidelity)",
        report.goodput(),
    );
    registry.set_gauge(
        "service_resilience_loss",
        "Bruneau resilience loss of the run's Q(t)",
        report.resilience_loss(),
    );
    for o in &report.outcomes {
        if let Disposition::Served { latency, .. } = o.disposition {
            registry.observe(
                "service_latency_ticks",
                "Served-request latency in logical ticks",
                &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
                latency as f64,
            );
        }
    }
    // Anticipation families only exist on anticipatory runs: an empty
    // warning-score log means the loop was off, and registering zeroed
    // families would change the reactive arm's exposition bytes.
    if !report.warning_scores.is_empty() {
        registry.inc_counter(
            "anticipate_mode_transitions_total",
            "Operating-mode changes of the anticipation loop",
            report.mode_transitions.len() as u64,
        );
        registry.set_gauge(
            "anticipate_alert_ticks",
            "Ticks spent in Alert mode",
            report.alert_ticks as f64,
        );
        registry.set_gauge(
            "anticipate_emergency_ticks",
            "Ticks spent in Emergency mode",
            report.emergency_ticks as f64,
        );
        registry.set_gauge(
            "anticipate_warning_score_milli",
            "Final warning score of the run, in milli-units",
            report.warning_scores.last().copied().unwrap_or(0) as f64,
        );
        for &score in &report.warning_scores {
            registry.observe(
                "anticipate_warning_score_ticks",
                "Per-tick warning score in milli-units",
                &[50.0, 100.0, 200.0, 350.0, 500.0, 750.0, 900.0],
                score as f64,
            );
        }
    }
}

/// Outcome of admission control for one arrival.
enum Admission {
    /// Admitted to the bulkhead; will complete on a later tick.
    Enqueued(InFlight),
    /// Decided on the spot (cached answer or shed) with its penalty.
    Immediate(Disposition, f64),
}

//! Per-backend circuit breakers on the logical clock.
//!
//! The classic closed → open → half-open state machine, with every
//! transition driven by the same logical tick counter as the rest of
//! the serving layer (and as `resilience_core::faults`): a run under a
//! given trace and fault plan replays its breaker trips bit-identically
//! on any thread budget, because no wall-clock time ever feeds a
//! decision.

use std::fmt;

/// Breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum BreakerState {
    /// Traffic flows; consecutive failures are counted.
    Closed,
    /// Traffic is refused until the cooldown elapses.
    Open,
    /// One probe request is allowed through; its fate decides the next
    /// state.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BreakerState::Closed => write!(f, "closed"),
            BreakerState::Open => write!(f, "open"),
            BreakerState::HalfOpen => write!(f, "half-open"),
        }
    }
}

/// One recorded state change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BreakerTransition {
    /// Logical tick of the change.
    pub tick: u64,
    /// State left.
    pub from: BreakerState,
    /// State entered.
    pub to: BreakerState,
}

/// A circuit breaker for one backend family.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    state: BreakerState,
    /// Consecutive failures that trip an open.
    failure_threshold: u32,
    /// Ticks the breaker stays open before probing.
    cooldown: u64,
    consecutive_failures: u32,
    opened_at: u64,
    probe_in_flight: bool,
    transitions: Vec<BreakerTransition>,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `failure_threshold` consecutive
    /// failures and cooling down for `cooldown` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `failure_threshold == 0`.
    pub fn new(failure_threshold: u32, cooldown: u64) -> Self {
        assert!(failure_threshold >= 1, "threshold must be at least 1");
        CircuitBreaker {
            state: BreakerState::Closed,
            failure_threshold,
            cooldown,
            consecutive_failures: 0,
            opened_at: 0,
            probe_in_flight: false,
            transitions: Vec::new(),
        }
    }

    /// Current state (after applying any due open → half-open lapse at
    /// `now`; this is the observing side of the logical clock).
    pub fn state_at(&mut self, now: u64) -> BreakerState {
        if self.state == BreakerState::Open && now >= self.opened_at + self.cooldown {
            self.transition(now, BreakerState::HalfOpen);
            self.probe_in_flight = false;
        }
        self.state
    }

    /// The state an observer at `now` would see, without committing the
    /// open → half-open lapse (no transition is recorded, no probe slot
    /// is reset). Use this for read-only inspection — dashboards,
    /// metrics, assertions — where `state_at`'s `&mut self` would
    /// mutate history as a side effect of looking.
    pub fn peek_state(&self, now: u64) -> BreakerState {
        if self.state == BreakerState::Open && now >= self.opened_at + self.cooldown {
            BreakerState::HalfOpen
        } else {
            self.state
        }
    }

    /// Ticks the breaker stays open before probing.
    pub fn cooldown(&self) -> u64 {
        self.cooldown
    }

    /// Retune the cooldown (the anticipation layer widens it in
    /// Emergency so a probe cannot re-close onto a still-collapsing
    /// backend). Takes effect from the next trip *and* for any open
    /// period still in progress.
    pub fn set_cooldown(&mut self, cooldown: u64) {
        self.cooldown = cooldown;
    }

    /// Whether a new request may be sent to the backend at `now`. In
    /// half-open state only a single probe is allowed until it settles.
    pub fn allow(&mut self, now: u64) -> bool {
        match self.state_at(now) {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => !self.probe_in_flight,
        }
    }

    /// Mark the admitted request as the half-open probe, if one is
    /// pending. Call exactly once per allowed admission.
    pub fn on_admitted(&mut self) {
        if self.state == BreakerState::HalfOpen {
            self.probe_in_flight = true;
        }
    }

    /// Record a backend success at `now`.
    pub fn record_success(&mut self, now: u64) {
        self.consecutive_failures = 0;
        if self.state_at(now) == BreakerState::HalfOpen {
            self.probe_in_flight = false;
            self.transition(now, BreakerState::Closed);
        }
    }

    /// Record a backend failure at `now`.
    pub fn record_failure(&mut self, now: u64) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        match self.state_at(now) {
            BreakerState::HalfOpen => {
                // The probe failed: re-open and restart the cooldown.
                self.probe_in_flight = false;
                self.opened_at = now;
                self.transition(now, BreakerState::Open);
            }
            BreakerState::Closed => {
                if self.consecutive_failures >= self.failure_threshold {
                    self.opened_at = now;
                    self.transition(now, BreakerState::Open);
                }
            }
            // Failures of requests admitted before the trip keep the
            // breaker open but do not extend the cooldown.
            BreakerState::Open => {}
        }
    }

    /// Every state change so far, in tick order.
    pub fn transitions(&self) -> &[BreakerTransition] {
        &self.transitions
    }

    fn transition(&mut self, tick: u64, to: BreakerState) {
        let from = self.state;
        if from != to {
            self.state = to;
            self.transitions.push(BreakerTransition { tick, from, to });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_consecutive_failures_only() {
        let mut b = CircuitBreaker::new(3, 10);
        b.record_failure(0);
        b.record_failure(1);
        b.record_success(2); // streak broken
        b.record_failure(3);
        b.record_failure(4);
        assert!(b.allow(5), "two consecutive failures stay closed");
        b.record_failure(5);
        assert!(!b.allow(6), "third consecutive failure trips the breaker");
        assert_eq!(b.peek_state(6), BreakerState::Open);
    }

    #[test]
    fn cooldown_leads_to_single_probe_then_close_on_success() {
        let mut b = CircuitBreaker::new(1, 5);
        b.record_failure(0);
        assert!(!b.allow(4), "still cooling down");
        assert!(b.allow(5), "cooldown elapsed: probe allowed");
        b.on_admitted();
        assert!(!b.allow(5), "only one probe at a time");
        b.record_success(7);
        assert_eq!(b.peek_state(7), BreakerState::Closed);
        assert!(b.allow(8));
        let states: Vec<_> = b.transitions().iter().map(|t| t.to).collect();
        assert_eq!(
            states,
            vec![
                BreakerState::Open,
                BreakerState::HalfOpen,
                BreakerState::Closed
            ]
        );
    }

    #[test]
    fn failed_probe_reopens_and_restarts_cooldown() {
        let mut b = CircuitBreaker::new(1, 5);
        b.record_failure(0);
        assert!(b.allow(5));
        b.on_admitted();
        b.record_failure(6);
        assert_eq!(b.peek_state(6), BreakerState::Open);
        assert!(!b.allow(10), "cooldown restarted at tick 6");
        assert!(b.allow(11));
    }

    #[test]
    fn stale_failures_do_not_extend_cooldown() {
        let mut b = CircuitBreaker::new(1, 5);
        b.record_failure(0);
        // A request admitted before the trip fails mid-cooldown.
        b.record_failure(2);
        assert!(b.allow(5), "cooldown still counted from the trip at 0");
    }

    #[test]
    fn peek_state_previews_the_lapse_without_committing_it() {
        let mut b = CircuitBreaker::new(1, 5);
        b.record_failure(0);
        // The observer at tick 5 sees the due lapse...
        assert_eq!(b.peek_state(5), BreakerState::HalfOpen);
        // ...but nothing was committed: no transition recorded beyond
        // the trip, and the next mutating read replays the same lapse.
        assert_eq!(b.transitions().len(), 1);
        assert_eq!(b.state_at(5), BreakerState::HalfOpen);
        assert_eq!(b.transitions().len(), 2);
    }

    #[test]
    fn widened_cooldown_extends_an_open_period_in_progress() {
        let mut b = CircuitBreaker::new(1, 5);
        b.record_failure(0);
        b.set_cooldown(20);
        assert_eq!(b.cooldown(), 20);
        assert!(!b.allow(5), "old cooldown no longer applies");
        assert_eq!(b.peek_state(19), BreakerState::Open);
        assert!(
            b.allow(20),
            "probe allowed once the widened cooldown elapses"
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_threshold_rejected() {
        let _ = CircuitBreaker::new(0, 5);
    }
}

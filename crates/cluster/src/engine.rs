//! The cluster engine: a deterministic multi-node simulation on the
//! logical tick clock.
//!
//! Every tick runs the same fixed phase order, so a run is a pure
//! function of `(config, topology seed, run seed, attack, fault plan)`:
//!
//! 1. **Execute** (MAPE-K) — revivals scheduled by earlier planning fire.
//! 2. **Burn** — the prescribed-burn policy relieves stressed nodes.
//! 3. **Surge** — seeded load grains drop onto random nodes (the slow
//!    sandpile drive toward criticality).
//! 4. **Chaos** — the fault plan's pure slot lookup kills or delays
//!    nodes (`slot_fault("cluster", tick, node)`).
//! 5. **Attack** — if scheduled this tick, remove a fraction of nodes
//!    (random or hub-targeted).
//! 6. **Cascade** — sandpile redistribution propagates to quiescence
//!    ([`crate::cascade::propagate`]).
//! 7. **Plan** (MAPE-K) — every node that died is checked against the
//!    recovery policy's retry budget; survivors of the budget get a
//!    revival scheduled after capped-exponential backoff.
//! 8. **Drain** — served work relaxes each alive node's load toward
//!    baseline.
//! 9. **Score** — giant-component analysis, then per-cause deficit
//!    charges into the [`TrajectoryObserver`]: dead-awaiting-retry
//!    (Retry), dead-for-good (Failed), alive-but-disconnected
//!    (Degraded, half weight), dropped load (Shed) and burn relief
//!    cost (Degraded).
//!
//! Float accumulation order is pinned everywhere (ascending node ids),
//! so cascade logs, Q(t) trajectories, and attributions are bit-identical
//! regardless of the thread budget running the surrounding trials.

use crate::burn::{select_most_stressed, BurnPolicy};
use crate::cascade::{propagate, CascadeScratch, CascadeStats};
use crate::node::NodeFleet;
use crate::topology::{CsrTopology, TopologyKind};
use rand::Rng;
use resilience_anticipate::OperatingMode;
use resilience_core::{resilience_loss, seeded_rng, FaultKind, FaultPlan, RecoveryPolicy};
use resilience_dcsp::BitWords;
use resilience_networks::AttackStrategy;
use resilience_telemetry::{DeficitAttribution, DeficitCause, TrajectoryObserver};
use serde::{Deserialize, Serialize};

/// Quality-point cost of one burned node for one tick (the controlled
/// degradation a prescribed burn accepts).
pub const BURN_COST: f64 = 0.25;

/// Quality-point cost of one alive-but-disconnected node for one tick
/// (it still serves locally but is cut off from the collective).
pub const DISCONNECT_COST: f64 = 0.5;

/// Static description of a cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub n: usize,
    /// Topology generator family.
    pub topology: TopologyKind,
    /// Motter–Lai overload headroom α: capacity = (1 + α)·baseline.
    pub headroom: f64,
    /// Fraction of excess load served away per tick, in `[0, 1]`.
    pub drain: f64,
    /// Seeded load grains dropped per tick (the sandpile drive).
    pub surge_drops: usize,
    /// Size of each grain, in load units.
    pub surge_grain: f64,
    /// Ticks to simulate.
    pub ticks: u64,
    /// MAPE-K recovery policy (backoff milliseconds read as ticks).
    pub recovery: RecoveryPolicy,
    /// Prescribed-burn policy.
    pub burn: BurnPolicy,
    /// Per-node anticipatory mode switching (the cross-node MAPE-K
    /// anticipation loop). `None` (the default) keeps the purely
    /// reactive engine with outputs byte-identical to previous
    /// releases.
    pub anticipation: Option<NodeAnticipationConfig>,
}

impl ClusterConfig {
    /// A quiet cluster over `topology`: moderate headroom, no surge, no
    /// burns, default recovery.
    pub fn new(n: usize, topology: TopologyKind) -> Self {
        ClusterConfig {
            n,
            topology,
            headroom: 0.25,
            drain: 0.05,
            surge_drops: 0,
            surge_grain: 0.5,
            ticks: 60,
            recovery: RecoveryPolicy::default(),
            burn: BurnPolicy::None,
            anticipation: None,
        }
    }
}

/// Tuning of per-node anticipatory mode switching.
///
/// Each alive node watches its *neighborhood cascade pressure*: the
/// worse of two signals — the fraction of dead neighbors (the cascade
/// front approaching) and its own load stress (how close it is to
/// toppling). The pressure drives a per-node Normal/Alert/Emergency
/// ladder with hysteresis; escalations fire the tick the threshold is
/// crossed (a surge can cross a whole band in one tick), while
/// de-escalations wait out the dwell — the anti-flap discipline lives
/// on the release side. Each mode carries a local policy: Alert nodes
/// drain excess load faster (serve it away before the front arrives),
/// and Emergency nodes shed their excess outright (a voluntary,
/// charged quality loss that keeps the node standing instead of
/// toppling into the cascade).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeAnticipationConfig {
    /// Enter Alert at or above this neighborhood pressure.
    pub alert_on: f64,
    /// Leave Alert for Normal below this pressure.
    pub alert_off: f64,
    /// Enter Emergency at or above this pressure.
    pub emergency_on: f64,
    /// Leave Emergency for Alert below this pressure.
    pub emergency_off: f64,
    /// Minimum ticks a node holds a mode before it may *de-escalate*
    /// (escalations are never delayed).
    pub dwell: u64,
    /// Drain multiplier for Alert nodes, in milli-units (3000 = 3× the
    /// configured drain, capped at full drain).
    pub alert_drain_milli: u64,
    /// Retained mode-shift log length; later shifts are only counted
    /// (see [`ClusterReport::truncated_mode_shifts`]).
    pub shift_cap: usize,
}

impl Default for NodeAnticipationConfig {
    fn default() -> Self {
        NodeAnticipationConfig {
            alert_on: 0.25,
            alert_off: 0.10,
            emergency_on: 0.50,
            emergency_off: 0.25,
            dwell: 4,
            alert_drain_milli: 3000,
            shift_cap: 4096,
        }
    }
}

/// One recorded per-node mode change.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeModeShift {
    /// Tick of the change.
    pub tick: u64,
    /// Node id.
    pub node: u32,
    /// Mode left.
    pub from: OperatingMode,
    /// Mode entered.
    pub to: OperatingMode,
}

/// An exogenous node-removal event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackSpec {
    /// Tick at which the attack lands.
    pub tick: u64,
    /// Victim selection strategy.
    pub strategy: AttackStrategy,
    /// Fraction of the fleet removed, in `[0, 1]`.
    pub fraction: f64,
    /// Whether victims may be recovered by the supervisor. Percolation
    /// sweeps use `false` so the damage plateau is what R integrates.
    pub recoverable: bool,
}

/// One cascade observed during a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CascadeRecord {
    /// Tick the cascade started.
    pub tick: u64,
    /// The propagation outcome.
    pub stats: CascadeStats,
}

/// Everything a cluster run produced. Serializable: the JSON encoding of
/// a report is the "cascade log" the determinism suite compares bit for
/// bit across thread budgets.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClusterReport {
    /// Fleet size.
    pub n: u64,
    /// Ticks simulated.
    pub ticks: u64,
    /// Topology family label.
    pub topology: String,
    /// The run seed.
    pub seed: u64,
    /// Q(t) samples (one baseline sample + one per tick).
    pub quality: resilience_core::QualityTrajectory,
    /// Bruneau deficit split by cause.
    pub attribution: DeficitAttribution,
    /// Every cascade with at least one death, in tick order.
    pub cascades: Vec<CascadeRecord>,
    /// Nodes revived by the supervisor.
    pub recovered: u64,
    /// Nodes dead for good (budget exhausted, condemned, or permanent).
    pub lost: u64,
    /// Nodes killed by the chaos fault plan.
    pub exo_kills: u64,
    /// Nodes killed by the attack.
    pub attack_kills: u64,
    /// Burn firings.
    pub burns: u64,
    /// Nodes relieved across all burns.
    pub burned_nodes: u64,
    /// Excess load removed by burns, in load units.
    pub burn_relieved: f64,
    /// Alive nodes at the end of the run.
    pub final_alive: u64,
    /// Giant-component size at the end of the run.
    pub final_giant: u64,
    /// Smallest giant-component size seen at any scored tick.
    pub min_giant: u64,
    /// Per-node mode changes of the anticipation loop, in tick order
    /// (empty when anticipation is off; bounded by its configured cap).
    pub mode_shifts: Vec<NodeModeShift>,
    /// Mode shifts beyond the cap, counted but not retained.
    pub truncated_mode_shifts: u64,
    /// Node-ticks spent in Alert.
    pub alert_node_ticks: u64,
    /// Node-ticks spent in Emergency.
    pub emergency_node_ticks: u64,
    /// Load shed voluntarily by Emergency nodes, in load units.
    pub anticipatory_shed: f64,
}

impl ClusterReport {
    /// Bruneau resilience loss R of the run's Q(t).
    pub fn resilience_loss(&self) -> f64 {
        resilience_loss(&self.quality)
    }

    /// Sizes (trigger + toppled) of every recorded cascade.
    pub fn cascade_sizes(&self) -> Vec<u64> {
        self.cascades.iter().map(|c| c.stats.size()).collect()
    }

    /// The largest recorded cascade (0 if none).
    pub fn largest_cascade(&self) -> u64 {
        self.cascade_sizes().into_iter().max().unwrap_or(0)
    }

    /// Total nodes toppled by overload across the run.
    pub fn total_toppled(&self) -> u64 {
        self.cascades.iter().map(|c| c.stats.toppled).sum()
    }
}

/// A provisioned cluster: topology plus fleet template, reusable across
/// many seeded runs (and shareable across trial threads — `run` takes
/// `&self`).
#[derive(Debug, Clone)]
pub struct ClusterEngine {
    topology: CsrTopology,
    template: NodeFleet,
    attack_order: Vec<u32>,
    config: ClusterConfig,
}

impl ClusterEngine {
    /// Generate the topology from `topology_seed` and provision the
    /// fleet.
    pub fn new(config: ClusterConfig, topology_seed: u64) -> Self {
        let topology = CsrTopology::generate(&config.topology, config.n, topology_seed);
        Self::with_topology(config, topology)
    }

    /// Provision over an existing topology.
    pub fn with_topology(config: ClusterConfig, topology: CsrTopology) -> Self {
        let template = NodeFleet::provision(&topology, config.headroom);
        let attack_order = topology.degrees_desc();
        ClusterEngine {
            topology,
            template,
            attack_order,
            config,
        }
    }

    /// The generated topology.
    pub fn topology(&self) -> &CsrTopology {
        &self.topology
    }

    /// The run configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Simulate one run. Pure in all arguments: the same inputs yield a
    /// bit-identical [`ClusterReport`] on any machine and thread budget.
    pub fn run(
        &self,
        run_seed: u64,
        attack: Option<&AttackSpec>,
        plan: &FaultPlan,
    ) -> ClusterReport {
        let n = self.config.n;
        let policy = &self.config.recovery;
        let mut rng = seeded_rng(run_seed);
        let mut fleet = self.template.clone();
        let mut alive = BitWords::new_filled(n);
        let mut scratch = CascadeScratch::new(n);
        let mut obs = TrajectoryObserver::new(1.0);
        obs.push_full(); // baseline sample before any damage

        let mut scheduled: Vec<u32> = Vec::new(); // dead, revival planned
        let mut due: Vec<u32> = Vec::new();
        let mut newly_dead: Vec<u32> = Vec::new();
        let mut spiked: Vec<u32> = Vec::new();
        let mut report = ClusterReport {
            n: n as u64,
            ticks: self.config.ticks,
            topology: self.config.topology.label().to_string(),
            seed: run_seed,
            quality: resilience_core::QualityTrajectory::new(1.0),
            attribution: DeficitAttribution {
                shed: 0.0,
                failed: 0.0,
                degraded: 0.0,
                retry: 0.0,
                total: 0.0,
            },
            cascades: Vec::new(),
            recovered: 0,
            lost: 0,
            exo_kills: 0,
            attack_kills: 0,
            burns: 0,
            burned_nodes: 0,
            burn_relieved: 0.0,
            final_alive: 0,
            final_giant: 0,
            min_giant: u64::MAX,
            mode_shifts: Vec::new(),
            truncated_mode_shifts: 0,
            alert_node_ticks: 0,
            emergency_node_ticks: 0,
            anticipatory_shed: 0.0,
        };
        let mut lost_count: u64 = 0;
        // Per-node anticipation state: mode ladder position and the
        // tick of each node's last change (`u64::MAX` = never changed,
        // so the dwell cannot block a node's first escalation).
        let mut modes: Vec<u8> = Vec::new();
        let mut mode_changed_at: Vec<u64> = Vec::new();
        if self.config.anticipation.is_some() {
            modes = vec![0u8; n];
            mode_changed_at = vec![u64::MAX; n];
        }

        for tick in 0..self.config.ticks {
            // 1. Execute: fire due revivals in ascending node order.
            due.clear();
            scheduled.retain(|&v| {
                if fleet.revive_at[v as usize] <= tick {
                    due.push(v);
                    false
                } else {
                    true
                }
            });
            due.sort_unstable();
            for &v in &due {
                fleet.revive(v as usize);
                alive.set(v as usize);
                report.recovered += 1;
            }

            // 2. Burn.
            let mut burned_now: u64 = 0;
            if self.config.burn.fires_at(tick) {
                let count = self.config.burn.burn_count(n);
                let victims = match self.config.burn {
                    BurnPolicy::None => Vec::new(),
                    BurnPolicy::HubRelief { .. } => {
                        select_most_stressed(&fleet.load, &fleet.baseline, &alive, count)
                    }
                    BurnPolicy::RandomRelief { .. } => {
                        let mut picks = Vec::with_capacity(count);
                        for _ in 0..count {
                            let v = rng.gen_range(0..n) as u32;
                            if alive.get(v as usize) && !picks.contains(&v) {
                                picks.push(v);
                            }
                        }
                        picks.sort_unstable();
                        picks
                    }
                };
                report.burns += 1;
                for &v in &victims {
                    let v = v as usize;
                    let excess = fleet.load[v] - fleet.baseline[v];
                    if excess > 0.0 {
                        fleet.load[v] = fleet.baseline[v];
                        report.burn_relieved += excess;
                    }
                    burned_now += 1;
                }
                report.burned_nodes += burned_now;
            }

            // 3. Surge: seeded grains; grains on dead nodes are dropped.
            spiked.clear();
            for _ in 0..self.config.surge_drops {
                let v = rng.gen_range(0..n);
                if alive.get(v) {
                    fleet.load[v] += self.config.surge_grain;
                    spiked.push(v as u32);
                }
            }

            // 4. Chaos faults: pure per-(tick, node) lookup.
            newly_dead.clear();
            if !plan.is_quiet() {
                for v in 0..n {
                    if !alive.get(v) {
                        continue;
                    }
                    if let Some(fault) = plan.slot_fault("cluster", tick, v as u64) {
                        match fault.kind {
                            FaultKind::Panic | FaultKind::Poison => {
                                alive.clear(v);
                                newly_dead.push(v as u32);
                                report.exo_kills += 1;
                                if fault.is_permanent() {
                                    fleet.condemn(v, policy);
                                }
                            }
                            FaultKind::Delay => {
                                // Timing fault: work piles up.
                                fleet.load[v] += self.config.surge_grain;
                                spiked.push(v as u32);
                            }
                        }
                    }
                }
            }

            // 5. Attack.
            if let Some(spec) = attack.filter(|s| s.tick == tick) {
                let count = ((spec.fraction * n as f64).round() as usize).min(n);
                let victims: Vec<u32> = match spec.strategy {
                    AttackStrategy::TargetedByDegree => self.attack_order[..count].to_vec(),
                    AttackStrategy::Random => {
                        // Partial Fisher–Yates over the id range.
                        let mut ids: Vec<u32> = (0..n as u32).collect();
                        for i in 0..count {
                            let j = rng.gen_range(i..n);
                            ids.swap(i, j);
                        }
                        ids.truncate(count);
                        ids
                    }
                };
                for &v in &victims {
                    let v = v as usize;
                    if alive.get(v) {
                        alive.clear(v);
                        newly_dead.push(v as u32);
                        report.attack_kills += 1;
                        if !spec.recoverable {
                            fleet.condemn(v, policy);
                        }
                    }
                }
            }

            // Surge/delay spikes can overload without a death.
            spiked.sort_unstable();
            spiked.dedup();
            for &v in &spiked {
                let v = v as usize;
                if alive.get(v) && fleet.load[v] > fleet.capacity[v] {
                    alive.clear(v);
                    newly_dead.push(v as u32);
                }
            }

            // 6. Cascade.
            newly_dead.sort_unstable();
            newly_dead.dedup();
            let mut shed_now = 0.0;
            if !newly_dead.is_empty() {
                let trigger_ids = newly_dead.clone();
                let stats = propagate(
                    &self.topology,
                    &mut alive,
                    &mut fleet.load,
                    &fleet.capacity,
                    &mut newly_dead,
                    &mut scratch,
                );
                shed_now = stats.shed_load;
                report.cascades.push(CascadeRecord { tick, stats });

                // 7. Plan: MAPE-K recovery for everything that died.
                for &v in trigger_ids.iter().chain(scratch.toppled_ids.iter()) {
                    let v = v as usize;
                    if fleet.failures[v] > policy.retries {
                        // Condemned (permanent fault / unrecoverable
                        // attack): dead for good.
                        lost_count += 1;
                    } else if fleet.plan_recovery(v, tick, policy) {
                        scheduled.push(v as u32);
                    } else {
                        lost_count += 1;
                    }
                }
            }

            // 7½. Anticipate: per-node mode switching from neighborhood
            // cascade pressure. Runs after the cascade so the
            // dead-neighbor census is current, and before the drain so
            // Alert's faster drain applies this tick. Emergency nodes
            // shed their excess outright — a voluntary, Shed-charged
            // loss that keeps the node standing instead of toppling.
            if let Some(acfg) = &self.config.anticipation {
                let mode_of = |m: u8| match m {
                    0 => OperatingMode::Normal,
                    1 => OperatingMode::Alert,
                    _ => OperatingMode::Emergency,
                };
                for v in 0..n {
                    if !alive.get(v) {
                        continue;
                    }
                    let neighbors = self.topology.neighbors(v);
                    let dead = neighbors
                        .iter()
                        .filter(|&&u| !alive.get(u as usize))
                        .count();
                    let dead_frac = if neighbors.is_empty() {
                        0.0
                    } else {
                        dead as f64 / neighbors.len() as f64
                    };
                    let span = fleet.capacity[v] - fleet.baseline[v];
                    let stress = if span > 0.0 {
                        ((fleet.load[v] - fleet.baseline[v]) / span).clamp(0.0, 1.0)
                    } else {
                        0.0
                    };
                    // The worse of the two signals, at full range: a
                    // blend would cap stress-only pressure at half
                    // scale, pushing Emergency past the topple point.
                    let pressure = dead_frac.max(stress);
                    let dwelled = mode_changed_at[v] == u64::MAX
                        || tick.saturating_sub(mode_changed_at[v]) >= acfg.dwell;
                    let current = modes[v];
                    // Escalation is immediate — stress can cross a whole
                    // band in one surge tick, and waiting out a dwell
                    // there means toppling instead. Dwell gates only
                    // de-escalation, where flapping actually lives.
                    let next = match current {
                        0 if pressure >= acfg.alert_on => 1,
                        1 if pressure >= acfg.emergency_on => 2,
                        1 if dwelled && pressure < acfg.alert_off => 0,
                        2 if dwelled && pressure < acfg.emergency_off => 1,
                        m => m,
                    };
                    if next != current {
                        modes[v] = next;
                        mode_changed_at[v] = tick;
                        if report.mode_shifts.len() < acfg.shift_cap {
                            report.mode_shifts.push(NodeModeShift {
                                tick,
                                node: v as u32,
                                from: mode_of(current),
                                to: mode_of(next),
                            });
                        } else {
                            report.truncated_mode_shifts += 1;
                        }
                    }
                    match modes[v] {
                        1 => report.alert_node_ticks += 1,
                        2 => {
                            report.emergency_node_ticks += 1;
                            let excess = fleet.load[v] - fleet.baseline[v];
                            if excess > 0.0 {
                                fleet.load[v] = fleet.baseline[v];
                                report.anticipatory_shed += excess;
                                shed_now += excess;
                            }
                        }
                        _ => {}
                    }
                }
            }

            // 8. Drain excess load on alive nodes (Alert nodes drain
            // faster — the anticipatory "serve it away before the front
            // arrives" policy).
            if self.config.drain > 0.0 {
                let keep = 1.0 - self.config.drain;
                let alert_keep = self.config.anticipation.as_ref().map(|a| {
                    1.0 - (self.config.drain * a.alert_drain_milli as f64 / 1000.0).min(1.0)
                });
                alive.for_each_one(|v| {
                    let excess = fleet.load[v] - fleet.baseline[v];
                    if excess != 0.0 {
                        let k = match alert_keep {
                            Some(ak) if modes[v] == 1 => ak,
                            _ => keep,
                        };
                        fleet.load[v] = fleet.baseline[v] + excess * k;
                    }
                });
            }

            // 9. Score the tick.
            let alive_count = alive.count() as u64;
            let giant = self.topology.giant_component(&alive).giant_size() as u64;
            report.min_giant = report.min_giant.min(giant);
            let disconnected = alive_count.saturating_sub(giant);
            obs.charge(DeficitCause::Retry, scheduled.len() as f64);
            obs.charge(DeficitCause::Failed, lost_count as f64);
            obs.charge(
                DeficitCause::Degraded,
                DISCONNECT_COST * disconnected as f64,
            );
            obs.charge(DeficitCause::Degraded, BURN_COST * burned_now as f64);
            // Shed load beyond the fleet's total demand is meaningless:
            // cap the charge so the tick's deficit never exceeds `n`
            // (dead + ½·disconnected + ¼·burned is provably ≤ n, so
            // only the shed component needs the guard — this keeps the
            // per-cause areas reconciling exactly with total R).
            let base = scheduled.len() as f64
                + lost_count as f64
                + DISCONNECT_COST * disconnected as f64
                + BURN_COST * burned_now as f64;
            obs.charge(DeficitCause::Shed, shed_now.min((n as f64 - base).max(0.0)));
            obs.end_tick(n as u64);
        }

        report.final_alive = alive.count() as u64;
        report.final_giant = self.topology.giant_component(&alive).giant_size() as u64;
        if report.min_giant == u64::MAX {
            report.min_giant = report.final_giant;
        }
        report.lost = lost_count;
        report.attribution = obs.attribution();
        report.quality = obs.quality().clone();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::quality::FULL_QUALITY;

    fn small_config() -> ClusterConfig {
        let mut c = ClusterConfig::new(400, TopologyKind::ScaleFree { m: 3 });
        c.ticks = 30;
        c
    }

    #[test]
    fn quiet_run_stays_at_full_quality() {
        let engine = ClusterEngine::new(small_config(), 7);
        let report = engine.run(1, None, &FaultPlan::none());
        assert_eq!(report.resilience_loss(), 0.0);
        assert_eq!(report.final_alive, 400);
        assert_eq!(report.final_giant as usize, 400);
        assert!(report.cascades.is_empty());
        for &q in report.quality.samples() {
            assert_eq!(q, FULL_QUALITY);
        }
    }

    #[test]
    fn attack_degrades_quality_and_targeted_beats_random() {
        let engine = ClusterEngine::new(small_config(), 7);
        let attack = |strategy, fraction| AttackSpec {
            tick: 5,
            strategy,
            fraction,
            recoverable: false,
        };
        let targeted = engine.run(
            1,
            Some(&attack(AttackStrategy::TargetedByDegree, 0.1)),
            &FaultPlan::none(),
        );
        let random = engine.run(
            1,
            Some(&attack(AttackStrategy::Random, 0.1)),
            &FaultPlan::none(),
        );
        assert!(targeted.resilience_loss() > 0.0);
        assert!(
            targeted.resilience_loss() > random.resilience_loss(),
            "hub attack should hurt a scale-free cluster more: targeted {} vs random {}",
            targeted.resilience_loss(),
            random.resilience_loss()
        );
        assert_eq!(targeted.attack_kills, 40);
    }

    #[test]
    fn runs_are_bit_identical() {
        let engine = ClusterEngine::new(small_config(), 3);
        let attack = AttackSpec {
            tick: 4,
            strategy: AttackStrategy::Random,
            fraction: 0.2,
            recoverable: true,
        };
        let plan = FaultPlan {
            panic_rate: 0.002,
            ..FaultPlan::none()
        };
        let a = engine.run(11, Some(&attack), &plan);
        let b = engine.run(11, Some(&attack), &plan);
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        let c = engine.run(12, Some(&attack), &plan);
        assert_ne!(a, c, "seed must matter");
    }

    #[test]
    fn recoverable_attack_is_healed_by_the_supervisor() {
        let mut config = small_config();
        config.ticks = 40;
        let engine = ClusterEngine::new(config, 5);
        let attack = AttackSpec {
            tick: 5,
            strategy: AttackStrategy::Random,
            fraction: 0.1,
            recoverable: true,
        };
        let report = engine.run(2, Some(&attack), &FaultPlan::none());
        assert!(report.recovered > 0, "supervisor should revive victims");
        // Healed cluster ends whole again.
        assert_eq!(report.final_alive, 400);
        // Quality dipped then recovered: R is positive but bounded well
        // below the unrecoverable plateau.
        let unrec = AttackSpec {
            recoverable: false,
            ..attack
        };
        let plateau = engine.run(2, Some(&unrec), &FaultPlan::none());
        assert!(report.resilience_loss() > 0.0);
        assert!(report.resilience_loss() < plateau.resilience_loss());
    }

    #[test]
    fn surge_without_headroom_cascades_and_attribution_reconciles() {
        let mut config = small_config();
        config.surge_drops = 80;
        config.surge_grain = 0.6;
        config.headroom = 0.4;
        config.drain = 0.02;
        config.ticks = 50;
        let engine = ClusterEngine::new(config, 9);
        let report = engine.run(4, None, &FaultPlan::none());
        assert!(
            !report.cascades.is_empty(),
            "surge pressure should topple nodes"
        );
        assert!(report.total_toppled() > 0);
        // Per-cause areas reconcile with the trajectory's total R.
        let att = report.attribution;
        assert!(
            (att.components_sum() - att.total).abs() <= 1e-6 * att.total.max(1.0),
            "attribution drift: components {} vs total {}",
            att.components_sum(),
            att.total
        );
        assert_eq!(att.total, report.resilience_loss());
    }

    /// The surge regime used by the anticipation tests: grains smaller
    /// than the headroom span, so stress accumulates across ticks and
    /// the warning signal (rising load stress, then dead neighbors)
    /// precedes the topple instead of arriving with it. Grains at 0.6
    /// would collapse the whole fleet on tick 0 — nothing left to warn.
    fn surge_config() -> ClusterConfig {
        let mut config = small_config();
        config.surge_drops = 80;
        config.surge_grain = 0.05;
        config.headroom = 0.4;
        config.drain = 0.02;
        config.ticks = 50;
        config
    }

    #[test]
    fn anticipation_off_is_byte_identical_to_the_previous_engine() {
        // `anticipation: None` must leave every output untouched —
        // same quality samples, same cascades, same attribution.
        let engine = ClusterEngine::new(surge_config(), 9);
        let report = engine.run(4, None, &FaultPlan::none());
        assert!(report.mode_shifts.is_empty());
        assert_eq!(report.alert_node_ticks, 0);
        assert_eq!(report.anticipatory_shed, 0.0);
        let again = engine.run(4, None, &FaultPlan::none());
        assert_eq!(report, again);
    }

    #[test]
    fn anticipatory_cluster_beats_reactive_under_surge() {
        let reactive = ClusterEngine::new(surge_config(), 9).run(4, None, &FaultPlan::none());
        let mut config = surge_config();
        config.anticipation = Some(NodeAnticipationConfig::default());
        let anticipatory = ClusterEngine::new(config, 9).run(4, None, &FaultPlan::none());
        assert!(
            !anticipatory.mode_shifts.is_empty(),
            "surge pressure must move node modes"
        );
        assert!(anticipatory.anticipatory_shed > 0.0);
        assert!(
            anticipatory.resilience_loss() < reactive.resilience_loss(),
            "anticipation must lower R: anticipatory {} vs reactive {}",
            anticipatory.resilience_loss(),
            reactive.resilience_loss()
        );
        assert!(
            anticipatory.total_toppled() < reactive.total_toppled(),
            "voluntary shedding must prevent topples: {} vs {}",
            anticipatory.total_toppled(),
            reactive.total_toppled()
        );
        // The anticipatory run is still bit-replayable.
        let mut config = surge_config();
        config.anticipation = Some(NodeAnticipationConfig::default());
        let again = ClusterEngine::new(config, 9).run(4, None, &FaultPlan::none());
        assert_eq!(anticipatory, again);
    }

    #[test]
    fn mode_shift_log_is_capped_deterministically() {
        let mut config = surge_config();
        config.anticipation = Some(NodeAnticipationConfig {
            shift_cap: 5,
            ..NodeAnticipationConfig::default()
        });
        let report = ClusterEngine::new(config, 9).run(4, None, &FaultPlan::none());
        assert_eq!(report.mode_shifts.len(), 5);
        assert!(report.truncated_mode_shifts > 0);
    }

    #[test]
    fn burn_policy_relieves_stress() {
        let mut config = small_config();
        // Grains smaller than the headroom: stress accumulates across
        // ticks instead of toppling nodes outright, which is the regime
        // where relieving stressed nodes has something to relieve.
        config.surge_drops = 80;
        config.surge_grain = 0.15;
        config.headroom = 0.4;
        config.drain = 0.02;
        config.ticks = 50;
        config.burn = BurnPolicy::HubRelief {
            fraction: 0.05,
            period: 4,
        };
        let engine = ClusterEngine::new(config, 9);
        let report = engine.run(4, None, &FaultPlan::none());
        assert!(report.burns > 0);
        assert!(report.burn_relieved > 0.0);
    }
}

//! The cluster engine: a deterministic multi-node simulation on the
//! logical tick clock.
//!
//! Every tick runs the same fixed phase order, so a run is a pure
//! function of `(config, topology seed, run seed, attack, fault plan)`:
//!
//! 1. **Execute** (MAPE-K) — revivals scheduled by earlier planning fire.
//! 2. **Burn** — the prescribed-burn policy relieves stressed nodes.
//! 3. **Surge** — seeded load grains drop onto random nodes (the slow
//!    sandpile drive toward criticality).
//! 4. **Chaos** — the fault plan's pure slot lookup kills or delays
//!    nodes (`slot_fault("cluster", tick, node)`).
//! 5. **Attack** — if scheduled this tick, remove a fraction of nodes
//!    (random or hub-targeted).
//! 6. **Cascade** — sandpile redistribution propagates to quiescence
//!    ([`crate::cascade::propagate`]).
//! 7. **Plan** (MAPE-K) — every node that died is checked against the
//!    recovery policy's retry budget; survivors of the budget get a
//!    revival scheduled after capped-exponential backoff.
//! 8. **Drain** — served work relaxes each alive node's load toward
//!    baseline.
//! 9. **Score** — giant-component analysis, then per-cause deficit
//!    charges into the [`TrajectoryObserver`]: dead-awaiting-retry
//!    (Retry), dead-for-good (Failed), alive-but-disconnected
//!    (Degraded, half weight), dropped load (Shed) and burn relief
//!    cost (Degraded).
//!
//! Float accumulation order is pinned everywhere (ascending node ids),
//! so cascade logs, Q(t) trajectories, and attributions are bit-identical
//! regardless of the thread budget running the surrounding trials.

use crate::burn::{select_most_stressed, BurnPolicy};
use crate::cascade::{propagate, CascadeScratch, CascadeStats};
use crate::node::NodeFleet;
use crate::topology::{CsrTopology, TopologyKind};
use rand::Rng;
use resilience_core::{resilience_loss, seeded_rng, FaultKind, FaultPlan, RecoveryPolicy};
use resilience_dcsp::BitWords;
use resilience_networks::AttackStrategy;
use resilience_telemetry::{DeficitAttribution, DeficitCause, TrajectoryObserver};
use serde::{Deserialize, Serialize};

/// Quality-point cost of one burned node for one tick (the controlled
/// degradation a prescribed burn accepts).
pub const BURN_COST: f64 = 0.25;

/// Quality-point cost of one alive-but-disconnected node for one tick
/// (it still serves locally but is cut off from the collective).
pub const DISCONNECT_COST: f64 = 0.5;

/// Static description of a cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub n: usize,
    /// Topology generator family.
    pub topology: TopologyKind,
    /// Motter–Lai overload headroom α: capacity = (1 + α)·baseline.
    pub headroom: f64,
    /// Fraction of excess load served away per tick, in `[0, 1]`.
    pub drain: f64,
    /// Seeded load grains dropped per tick (the sandpile drive).
    pub surge_drops: usize,
    /// Size of each grain, in load units.
    pub surge_grain: f64,
    /// Ticks to simulate.
    pub ticks: u64,
    /// MAPE-K recovery policy (backoff milliseconds read as ticks).
    pub recovery: RecoveryPolicy,
    /// Prescribed-burn policy.
    pub burn: BurnPolicy,
}

impl ClusterConfig {
    /// A quiet cluster over `topology`: moderate headroom, no surge, no
    /// burns, default recovery.
    pub fn new(n: usize, topology: TopologyKind) -> Self {
        ClusterConfig {
            n,
            topology,
            headroom: 0.25,
            drain: 0.05,
            surge_drops: 0,
            surge_grain: 0.5,
            ticks: 60,
            recovery: RecoveryPolicy::default(),
            burn: BurnPolicy::None,
        }
    }
}

/// An exogenous node-removal event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackSpec {
    /// Tick at which the attack lands.
    pub tick: u64,
    /// Victim selection strategy.
    pub strategy: AttackStrategy,
    /// Fraction of the fleet removed, in `[0, 1]`.
    pub fraction: f64,
    /// Whether victims may be recovered by the supervisor. Percolation
    /// sweeps use `false` so the damage plateau is what R integrates.
    pub recoverable: bool,
}

/// One cascade observed during a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CascadeRecord {
    /// Tick the cascade started.
    pub tick: u64,
    /// The propagation outcome.
    pub stats: CascadeStats,
}

/// Everything a cluster run produced. Serializable: the JSON encoding of
/// a report is the "cascade log" the determinism suite compares bit for
/// bit across thread budgets.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClusterReport {
    /// Fleet size.
    pub n: u64,
    /// Ticks simulated.
    pub ticks: u64,
    /// Topology family label.
    pub topology: String,
    /// The run seed.
    pub seed: u64,
    /// Q(t) samples (one baseline sample + one per tick).
    pub quality: resilience_core::QualityTrajectory,
    /// Bruneau deficit split by cause.
    pub attribution: DeficitAttribution,
    /// Every cascade with at least one death, in tick order.
    pub cascades: Vec<CascadeRecord>,
    /// Nodes revived by the supervisor.
    pub recovered: u64,
    /// Nodes dead for good (budget exhausted, condemned, or permanent).
    pub lost: u64,
    /// Nodes killed by the chaos fault plan.
    pub exo_kills: u64,
    /// Nodes killed by the attack.
    pub attack_kills: u64,
    /// Burn firings.
    pub burns: u64,
    /// Nodes relieved across all burns.
    pub burned_nodes: u64,
    /// Excess load removed by burns, in load units.
    pub burn_relieved: f64,
    /// Alive nodes at the end of the run.
    pub final_alive: u64,
    /// Giant-component size at the end of the run.
    pub final_giant: u64,
    /// Smallest giant-component size seen at any scored tick.
    pub min_giant: u64,
}

impl ClusterReport {
    /// Bruneau resilience loss R of the run's Q(t).
    pub fn resilience_loss(&self) -> f64 {
        resilience_loss(&self.quality)
    }

    /// Sizes (trigger + toppled) of every recorded cascade.
    pub fn cascade_sizes(&self) -> Vec<u64> {
        self.cascades.iter().map(|c| c.stats.size()).collect()
    }

    /// The largest recorded cascade (0 if none).
    pub fn largest_cascade(&self) -> u64 {
        self.cascade_sizes().into_iter().max().unwrap_or(0)
    }

    /// Total nodes toppled by overload across the run.
    pub fn total_toppled(&self) -> u64 {
        self.cascades.iter().map(|c| c.stats.toppled).sum()
    }
}

/// A provisioned cluster: topology plus fleet template, reusable across
/// many seeded runs (and shareable across trial threads — `run` takes
/// `&self`).
#[derive(Debug, Clone)]
pub struct ClusterEngine {
    topology: CsrTopology,
    template: NodeFleet,
    attack_order: Vec<u32>,
    config: ClusterConfig,
}

impl ClusterEngine {
    /// Generate the topology from `topology_seed` and provision the
    /// fleet.
    pub fn new(config: ClusterConfig, topology_seed: u64) -> Self {
        let topology = CsrTopology::generate(&config.topology, config.n, topology_seed);
        Self::with_topology(config, topology)
    }

    /// Provision over an existing topology.
    pub fn with_topology(config: ClusterConfig, topology: CsrTopology) -> Self {
        let template = NodeFleet::provision(&topology, config.headroom);
        let attack_order = topology.degrees_desc();
        ClusterEngine {
            topology,
            template,
            attack_order,
            config,
        }
    }

    /// The generated topology.
    pub fn topology(&self) -> &CsrTopology {
        &self.topology
    }

    /// The run configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Simulate one run. Pure in all arguments: the same inputs yield a
    /// bit-identical [`ClusterReport`] on any machine and thread budget.
    pub fn run(
        &self,
        run_seed: u64,
        attack: Option<&AttackSpec>,
        plan: &FaultPlan,
    ) -> ClusterReport {
        let n = self.config.n;
        let policy = &self.config.recovery;
        let mut rng = seeded_rng(run_seed);
        let mut fleet = self.template.clone();
        let mut alive = BitWords::new_filled(n);
        let mut scratch = CascadeScratch::new(n);
        let mut obs = TrajectoryObserver::new(1.0);
        obs.push_full(); // baseline sample before any damage

        let mut scheduled: Vec<u32> = Vec::new(); // dead, revival planned
        let mut due: Vec<u32> = Vec::new();
        let mut newly_dead: Vec<u32> = Vec::new();
        let mut spiked: Vec<u32> = Vec::new();
        let mut report = ClusterReport {
            n: n as u64,
            ticks: self.config.ticks,
            topology: self.config.topology.label().to_string(),
            seed: run_seed,
            quality: resilience_core::QualityTrajectory::new(1.0),
            attribution: DeficitAttribution {
                shed: 0.0,
                failed: 0.0,
                degraded: 0.0,
                retry: 0.0,
                total: 0.0,
            },
            cascades: Vec::new(),
            recovered: 0,
            lost: 0,
            exo_kills: 0,
            attack_kills: 0,
            burns: 0,
            burned_nodes: 0,
            burn_relieved: 0.0,
            final_alive: 0,
            final_giant: 0,
            min_giant: u64::MAX,
        };
        let mut lost_count: u64 = 0;

        for tick in 0..self.config.ticks {
            // 1. Execute: fire due revivals in ascending node order.
            due.clear();
            scheduled.retain(|&v| {
                if fleet.revive_at[v as usize] <= tick {
                    due.push(v);
                    false
                } else {
                    true
                }
            });
            due.sort_unstable();
            for &v in &due {
                fleet.revive(v as usize);
                alive.set(v as usize);
                report.recovered += 1;
            }

            // 2. Burn.
            let mut burned_now: u64 = 0;
            if self.config.burn.fires_at(tick) {
                let count = self.config.burn.burn_count(n);
                let victims = match self.config.burn {
                    BurnPolicy::None => Vec::new(),
                    BurnPolicy::HubRelief { .. } => {
                        select_most_stressed(&fleet.load, &fleet.baseline, &alive, count)
                    }
                    BurnPolicy::RandomRelief { .. } => {
                        let mut picks = Vec::with_capacity(count);
                        for _ in 0..count {
                            let v = rng.gen_range(0..n) as u32;
                            if alive.get(v as usize) && !picks.contains(&v) {
                                picks.push(v);
                            }
                        }
                        picks.sort_unstable();
                        picks
                    }
                };
                report.burns += 1;
                for &v in &victims {
                    let v = v as usize;
                    let excess = fleet.load[v] - fleet.baseline[v];
                    if excess > 0.0 {
                        fleet.load[v] = fleet.baseline[v];
                        report.burn_relieved += excess;
                    }
                    burned_now += 1;
                }
                report.burned_nodes += burned_now;
            }

            // 3. Surge: seeded grains; grains on dead nodes are dropped.
            spiked.clear();
            for _ in 0..self.config.surge_drops {
                let v = rng.gen_range(0..n);
                if alive.get(v) {
                    fleet.load[v] += self.config.surge_grain;
                    spiked.push(v as u32);
                }
            }

            // 4. Chaos faults: pure per-(tick, node) lookup.
            newly_dead.clear();
            if !plan.is_quiet() {
                for v in 0..n {
                    if !alive.get(v) {
                        continue;
                    }
                    if let Some(fault) = plan.slot_fault("cluster", tick, v as u64) {
                        match fault.kind {
                            FaultKind::Panic | FaultKind::Poison => {
                                alive.clear(v);
                                newly_dead.push(v as u32);
                                report.exo_kills += 1;
                                if fault.is_permanent() {
                                    fleet.condemn(v, policy);
                                }
                            }
                            FaultKind::Delay => {
                                // Timing fault: work piles up.
                                fleet.load[v] += self.config.surge_grain;
                                spiked.push(v as u32);
                            }
                        }
                    }
                }
            }

            // 5. Attack.
            if let Some(spec) = attack.filter(|s| s.tick == tick) {
                let count = ((spec.fraction * n as f64).round() as usize).min(n);
                let victims: Vec<u32> = match spec.strategy {
                    AttackStrategy::TargetedByDegree => self.attack_order[..count].to_vec(),
                    AttackStrategy::Random => {
                        // Partial Fisher–Yates over the id range.
                        let mut ids: Vec<u32> = (0..n as u32).collect();
                        for i in 0..count {
                            let j = rng.gen_range(i..n);
                            ids.swap(i, j);
                        }
                        ids.truncate(count);
                        ids
                    }
                };
                for &v in &victims {
                    let v = v as usize;
                    if alive.get(v) {
                        alive.clear(v);
                        newly_dead.push(v as u32);
                        report.attack_kills += 1;
                        if !spec.recoverable {
                            fleet.condemn(v, policy);
                        }
                    }
                }
            }

            // Surge/delay spikes can overload without a death.
            spiked.sort_unstable();
            spiked.dedup();
            for &v in &spiked {
                let v = v as usize;
                if alive.get(v) && fleet.load[v] > fleet.capacity[v] {
                    alive.clear(v);
                    newly_dead.push(v as u32);
                }
            }

            // 6. Cascade.
            newly_dead.sort_unstable();
            newly_dead.dedup();
            let mut shed_now = 0.0;
            if !newly_dead.is_empty() {
                let trigger_ids = newly_dead.clone();
                let stats = propagate(
                    &self.topology,
                    &mut alive,
                    &mut fleet.load,
                    &fleet.capacity,
                    &mut newly_dead,
                    &mut scratch,
                );
                shed_now = stats.shed_load;
                report.cascades.push(CascadeRecord { tick, stats });

                // 7. Plan: MAPE-K recovery for everything that died.
                for &v in trigger_ids.iter().chain(scratch.toppled_ids.iter()) {
                    let v = v as usize;
                    if fleet.failures[v] > policy.retries {
                        // Condemned (permanent fault / unrecoverable
                        // attack): dead for good.
                        lost_count += 1;
                    } else if fleet.plan_recovery(v, tick, policy) {
                        scheduled.push(v as u32);
                    } else {
                        lost_count += 1;
                    }
                }
            }

            // 8. Drain excess load on alive nodes.
            if self.config.drain > 0.0 {
                let keep = 1.0 - self.config.drain;
                alive.for_each_one(|v| {
                    let excess = fleet.load[v] - fleet.baseline[v];
                    if excess != 0.0 {
                        fleet.load[v] = fleet.baseline[v] + excess * keep;
                    }
                });
            }

            // 9. Score the tick.
            let alive_count = alive.count() as u64;
            let giant = self.topology.giant_component(&alive).giant_size() as u64;
            report.min_giant = report.min_giant.min(giant);
            let disconnected = alive_count.saturating_sub(giant);
            obs.charge(DeficitCause::Retry, scheduled.len() as f64);
            obs.charge(DeficitCause::Failed, lost_count as f64);
            obs.charge(
                DeficitCause::Degraded,
                DISCONNECT_COST * disconnected as f64,
            );
            obs.charge(DeficitCause::Degraded, BURN_COST * burned_now as f64);
            // Shed load beyond the fleet's total demand is meaningless:
            // cap the charge so the tick's deficit never exceeds `n`
            // (dead + ½·disconnected + ¼·burned is provably ≤ n, so
            // only the shed component needs the guard — this keeps the
            // per-cause areas reconciling exactly with total R).
            let base = scheduled.len() as f64
                + lost_count as f64
                + DISCONNECT_COST * disconnected as f64
                + BURN_COST * burned_now as f64;
            obs.charge(DeficitCause::Shed, shed_now.min((n as f64 - base).max(0.0)));
            obs.end_tick(n as u64);
        }

        report.final_alive = alive.count() as u64;
        report.final_giant = self.topology.giant_component(&alive).giant_size() as u64;
        if report.min_giant == u64::MAX {
            report.min_giant = report.final_giant;
        }
        report.lost = lost_count;
        report.attribution = obs.attribution();
        report.quality = obs.quality().clone();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::quality::FULL_QUALITY;

    fn small_config() -> ClusterConfig {
        let mut c = ClusterConfig::new(400, TopologyKind::ScaleFree { m: 3 });
        c.ticks = 30;
        c
    }

    #[test]
    fn quiet_run_stays_at_full_quality() {
        let engine = ClusterEngine::new(small_config(), 7);
        let report = engine.run(1, None, &FaultPlan::none());
        assert_eq!(report.resilience_loss(), 0.0);
        assert_eq!(report.final_alive, 400);
        assert_eq!(report.final_giant as usize, 400);
        assert!(report.cascades.is_empty());
        for &q in report.quality.samples() {
            assert_eq!(q, FULL_QUALITY);
        }
    }

    #[test]
    fn attack_degrades_quality_and_targeted_beats_random() {
        let engine = ClusterEngine::new(small_config(), 7);
        let attack = |strategy, fraction| AttackSpec {
            tick: 5,
            strategy,
            fraction,
            recoverable: false,
        };
        let targeted = engine.run(
            1,
            Some(&attack(AttackStrategy::TargetedByDegree, 0.1)),
            &FaultPlan::none(),
        );
        let random = engine.run(
            1,
            Some(&attack(AttackStrategy::Random, 0.1)),
            &FaultPlan::none(),
        );
        assert!(targeted.resilience_loss() > 0.0);
        assert!(
            targeted.resilience_loss() > random.resilience_loss(),
            "hub attack should hurt a scale-free cluster more: targeted {} vs random {}",
            targeted.resilience_loss(),
            random.resilience_loss()
        );
        assert_eq!(targeted.attack_kills, 40);
    }

    #[test]
    fn runs_are_bit_identical() {
        let engine = ClusterEngine::new(small_config(), 3);
        let attack = AttackSpec {
            tick: 4,
            strategy: AttackStrategy::Random,
            fraction: 0.2,
            recoverable: true,
        };
        let plan = FaultPlan {
            panic_rate: 0.002,
            ..FaultPlan::none()
        };
        let a = engine.run(11, Some(&attack), &plan);
        let b = engine.run(11, Some(&attack), &plan);
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        let c = engine.run(12, Some(&attack), &plan);
        assert_ne!(a, c, "seed must matter");
    }

    #[test]
    fn recoverable_attack_is_healed_by_the_supervisor() {
        let mut config = small_config();
        config.ticks = 40;
        let engine = ClusterEngine::new(config, 5);
        let attack = AttackSpec {
            tick: 5,
            strategy: AttackStrategy::Random,
            fraction: 0.1,
            recoverable: true,
        };
        let report = engine.run(2, Some(&attack), &FaultPlan::none());
        assert!(report.recovered > 0, "supervisor should revive victims");
        // Healed cluster ends whole again.
        assert_eq!(report.final_alive, 400);
        // Quality dipped then recovered: R is positive but bounded well
        // below the unrecoverable plateau.
        let unrec = AttackSpec {
            recoverable: false,
            ..attack
        };
        let plateau = engine.run(2, Some(&unrec), &FaultPlan::none());
        assert!(report.resilience_loss() > 0.0);
        assert!(report.resilience_loss() < plateau.resilience_loss());
    }

    #[test]
    fn surge_without_headroom_cascades_and_attribution_reconciles() {
        let mut config = small_config();
        config.surge_drops = 80;
        config.surge_grain = 0.6;
        config.headroom = 0.4;
        config.drain = 0.02;
        config.ticks = 50;
        let engine = ClusterEngine::new(config, 9);
        let report = engine.run(4, None, &FaultPlan::none());
        assert!(
            !report.cascades.is_empty(),
            "surge pressure should topple nodes"
        );
        assert!(report.total_toppled() > 0);
        // Per-cause areas reconcile with the trajectory's total R.
        let att = report.attribution;
        assert!(
            (att.components_sum() - att.total).abs() <= 1e-6 * att.total.max(1.0),
            "attribution drift: components {} vs total {}",
            att.components_sum(),
            att.total
        );
        assert_eq!(att.total, report.resilience_loss());
    }

    #[test]
    fn burn_policy_relieves_stress() {
        let mut config = small_config();
        // Grains smaller than the headroom: stress accumulates across
        // ticks instead of toppling nodes outright, which is the regime
        // where relieving stressed nodes has something to relieve.
        config.surge_drops = 80;
        config.surge_grain = 0.15;
        config.headroom = 0.4;
        config.drain = 0.02;
        config.ticks = 50;
        config.burn = BurnPolicy::HubRelief {
            fraction: 0.05,
            period: 4,
        };
        let engine = ClusterEngine::new(config, 9);
        let report = engine.run(4, None, &FaultPlan::none());
        assert!(report.burns > 0);
        assert!(report.burn_relieved > 0.0);
    }
}

//! Deriving telemetry expositions from a [`ClusterReport`].
//!
//! The engine's report is the single source of truth; the tracer and
//! metrics views are pure functions of it. Because the report itself is
//! bit-identical across thread budgets, so is every exposition derived
//! here — the property `tests/cluster_telemetry.rs` pins.

use crate::engine::ClusterReport;
use resilience_telemetry::{Event, MetricsRegistry, Tracer};

/// Convert load units to the integer milli-units the trace schema
/// carries (the streamed JSON writer is integer-only by design).
fn milli(x: f64) -> u64 {
    (x * 1000.0).round().max(0.0) as u64
}

/// Record a run's cascade history plus recovery/burn summaries into a
/// tracer lane. Events land on the ticks they happened on; the run-level
/// summaries land on the final tick.
pub fn record_cluster_events(tracer: &mut Tracer, report: &ClusterReport) {
    for record in &report.cascades {
        tracer.record(
            record.tick,
            Event::ClusterCascade {
                trigger: record.stats.trigger,
                toppled: record.stats.toppled,
                waves: record.stats.waves,
                shed_milli: milli(record.stats.shed_load),
            },
        );
    }
    tracer.record(
        report.ticks,
        Event::ClusterRecovery {
            revived: report.recovered,
            lost: report.lost,
        },
    );
    if report.burns > 0 {
        tracer.record(
            report.ticks,
            Event::ClusterBurn {
                burns: report.burns,
                nodes: report.burned_nodes,
                relieved_milli: milli(report.burn_relieved),
            },
        );
    }
    // Mode census: replay the retained shift log and emit one census
    // event per tick on which any node changed mode. Pure function of
    // the report, like everything else here.
    if !report.mode_shifts.is_empty() {
        use resilience_anticipate::OperatingMode;
        let mut alert: u64 = 0;
        let mut emergency: u64 = 0;
        let mut i = 0;
        let shifts = &report.mode_shifts;
        while i < shifts.len() {
            let tick = shifts[i].tick;
            while i < shifts.len() && shifts[i].tick == tick {
                let s = &shifts[i];
                match s.from {
                    OperatingMode::Alert => alert = alert.saturating_sub(1),
                    OperatingMode::Emergency => emergency = emergency.saturating_sub(1),
                    OperatingMode::Normal => {}
                }
                match s.to {
                    OperatingMode::Alert => alert += 1,
                    OperatingMode::Emergency => emergency += 1,
                    OperatingMode::Normal => {}
                }
                i += 1;
            }
            tracer.record(tick, Event::ClusterModeCensus { alert, emergency });
        }
    }
}

/// Histogram bounds for cascade sizes (powers of two — cascade-size
/// distributions are judged on their tail).
pub const CASCADE_SIZE_BOUNDS: [f64; 9] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];

/// Record a run's aggregate counters, gauges, and the cascade-size
/// histogram. Calling this for several reports accumulates counters and
/// histograms; gauges keep the last run's value.
pub fn record_cluster_metrics(registry: &mut MetricsRegistry, report: &ClusterReport) {
    registry.inc_counter(
        "cluster_cascades_total",
        "Cascades with at least one death",
        report.cascades.len() as u64,
    );
    registry.inc_counter(
        "cluster_toppled_total",
        "Nodes toppled by overload during cascades",
        report.total_toppled(),
    );
    registry.inc_counter(
        "cluster_exo_kills_total",
        "Nodes killed by the chaos fault plan",
        report.exo_kills,
    );
    registry.inc_counter(
        "cluster_attack_kills_total",
        "Nodes removed by attacks",
        report.attack_kills,
    );
    registry.inc_counter(
        "cluster_recovered_total",
        "Nodes revived by the MAPE-K supervisor",
        report.recovered,
    );
    registry.inc_counter(
        "cluster_lost_total",
        "Nodes dead for good (budget exhausted or condemned)",
        report.lost,
    );
    registry.inc_counter(
        "cluster_burns_total",
        "Prescribed-burn firings",
        report.burns,
    );
    registry.inc_counter(
        "cluster_burned_nodes_total",
        "Nodes relieved by prescribed burns",
        report.burned_nodes,
    );
    registry.set_gauge(
        "cluster_nodes",
        "Fleet size of the last recorded run",
        report.n as f64,
    );
    registry.set_gauge(
        "cluster_final_giant_fraction",
        "Giant-component fraction at the end of the last recorded run",
        if report.n == 0 {
            0.0
        } else {
            report.final_giant as f64 / report.n as f64
        },
    );
    registry.set_gauge(
        "cluster_resilience_loss",
        "Bruneau R of the last recorded run",
        report.resilience_loss(),
    );
    for size in report.cascade_sizes() {
        registry.observe(
            "cluster_cascade_size",
            "Nodes lost per cascade (trigger + toppled)",
            &CASCADE_SIZE_BOUNDS,
            size as f64,
        );
    }
    // Anticipation families only exist on runs where the loop acted:
    // registering zeroed families would change reactive expositions.
    if !report.mode_shifts.is_empty() || report.truncated_mode_shifts > 0 {
        registry.inc_counter(
            "cluster_mode_shifts_total",
            "Per-node operating-mode changes of the anticipation loop",
            report.mode_shifts.len() as u64 + report.truncated_mode_shifts,
        );
        registry.set_gauge(
            "cluster_alert_node_ticks",
            "Node-ticks spent in Alert mode",
            report.alert_node_ticks as f64,
        );
        registry.set_gauge(
            "cluster_emergency_node_ticks",
            "Node-ticks spent in Emergency mode",
            report.emergency_node_ticks as f64,
        );
        registry.set_gauge(
            "cluster_anticipatory_shed",
            "Load shed voluntarily by Emergency nodes, in load units",
            report.anticipatory_shed,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{AttackSpec, ClusterConfig, ClusterEngine};
    use crate::topology::TopologyKind;
    use resilience_core::FaultPlan;
    use resilience_networks::AttackStrategy;

    fn sample_report() -> ClusterReport {
        let mut config = ClusterConfig::new(300, TopologyKind::ScaleFree { m: 3 });
        config.ticks = 25;
        let engine = ClusterEngine::new(config, 7);
        let attack = AttackSpec {
            tick: 5,
            strategy: AttackStrategy::TargetedByDegree,
            fraction: 0.1,
            recoverable: true,
        };
        engine.run(3, Some(&attack), &FaultPlan::none())
    }

    #[test]
    fn events_mirror_the_report() {
        let report = sample_report();
        let mut tracer = Tracer::new();
        record_cluster_events(&mut tracer, &report);
        // One event per cascade + the recovery summary (+ burn if any).
        let expected = report.cascades.len() + 1 + usize::from(report.burns > 0);
        assert_eq!(tracer.len(), expected);
        let json = tracer.to_json();
        assert!(json.contains("ClusterCascade"));
        assert!(json.contains("ClusterRecovery"));
    }

    #[test]
    fn metrics_accumulate_and_expose() {
        let report = sample_report();
        let mut registry = MetricsRegistry::new();
        record_cluster_metrics(&mut registry, &report);
        record_cluster_metrics(&mut registry, &report);
        let prom = registry.to_prometheus();
        assert!(prom.contains("cluster_cascades_total"));
        assert!(prom.contains("cluster_resilience_loss"));
        assert!(prom.contains("cluster_cascade_size"));
        // Counters doubled by the second recording.
        let line = prom
            .lines()
            .find(|l| l.starts_with("cluster_attack_kills_total "))
            .expect("attack kills counter exposed");
        let value: f64 = line
            .rsplit(' ')
            .next()
            .and_then(|v| v.parse().ok())
            .expect("counter value parses");
        assert_eq!(value, 2.0 * report.attack_kills as f64);
    }
}

//! Prescribed-burn policies: small controlled perturbations that bleed
//! accumulated stress out of the cluster before it feeds a large
//! cascade — the forest-management strategy the paper carries over to
//! engineered systems.
//!
//! A burn runs periodically. It selects nodes carrying the most excess
//! load (or a seeded random sample) and relieves them back to baseline.
//! Relief is not free: each burned node is briefly degraded while its
//! overflow work is re-queued, which the engine charges against Q(t) —
//! so a burn policy only pays off if the large cascades it prevents cost
//! more than the steady trickle of small, controlled ones. That trade is
//! exactly what the `cluster_burn` experiment scores as ΔR.

use serde::{Deserialize, Serialize};

/// When and which nodes to burn.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BurnPolicy {
    /// Never intervene (the control arm).
    None,
    /// Every `period` ticks, relieve the `fraction` of nodes carrying
    /// the largest excess load (load − baseline), most-stressed first.
    HubRelief {
        /// Fraction of the fleet relieved per burn, in `[0, 1]`.
        fraction: f64,
        /// Ticks between burns (≥ 1).
        period: u64,
    },
    /// Every `period` ticks, relieve a seeded uniform sample of the
    /// fleet — the naive control showing that *where* you burn matters.
    RandomRelief {
        /// Fraction of the fleet relieved per burn, in `[0, 1]`.
        fraction: f64,
        /// Ticks between burns (≥ 1).
        period: u64,
    },
}

impl BurnPolicy {
    /// Whether a burn fires at `tick`.
    pub fn fires_at(&self, tick: u64) -> bool {
        match *self {
            BurnPolicy::None => false,
            BurnPolicy::HubRelief { period, .. } | BurnPolicy::RandomRelief { period, .. } => {
                period > 0 && tick > 0 && tick.is_multiple_of(period)
            }
        }
    }

    /// How many nodes a firing burn relieves in an `n`-node fleet.
    pub fn burn_count(&self, n: usize) -> usize {
        match *self {
            BurnPolicy::None => 0,
            BurnPolicy::HubRelief { fraction, .. } | BurnPolicy::RandomRelief { fraction, .. } => {
                ((fraction * n as f64).round() as usize).min(n)
            }
        }
    }

    /// Label for tables and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            BurnPolicy::None => "no_burn",
            BurnPolicy::HubRelief { .. } => "hub_relief",
            BurnPolicy::RandomRelief { .. } => "random_relief",
        }
    }
}

/// Select the burn victims for a [`BurnPolicy::HubRelief`] firing:
/// the `count` alive nodes with the largest positive excess load,
/// ties broken by ascending node id. Returns ascending node ids.
pub fn select_most_stressed(
    load: &[f64],
    baseline: &[f64],
    alive: &resilience_dcsp::BitWords,
    count: usize,
) -> Vec<u32> {
    let mut stressed: Vec<(f64, u32)> = Vec::new();
    alive.for_each_one(|v| {
        let excess = load[v] - baseline[v];
        if excess > 0.0 {
            stressed.push((excess, v as u32));
        }
    });
    // Largest excess first; f64 total order is safe (no NaNs in loads).
    stressed.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    stressed.truncate(count);
    let mut ids: Vec<u32> = stressed.into_iter().map(|(_, v)| v).collect();
    ids.sort_unstable();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_dcsp::BitWords;

    #[test]
    fn firing_schedule() {
        let p = BurnPolicy::HubRelief {
            fraction: 0.1,
            period: 5,
        };
        assert!(!p.fires_at(0));
        assert!(p.fires_at(5));
        assert!(!p.fires_at(6));
        assert!(p.fires_at(10));
        assert!(!BurnPolicy::None.fires_at(5));
        assert_eq!(p.burn_count(100), 10);
        assert_eq!(BurnPolicy::None.burn_count(100), 0);
    }

    #[test]
    fn most_stressed_selection() {
        let load = vec![1.0, 3.0, 2.0, 0.5, 9.0];
        let baseline = vec![1.0, 1.0, 1.0, 1.0, 1.0];
        let mut alive = BitWords::new_filled(5);
        alive.clear(4); // most stressed node is dead — skip it
        let picked = select_most_stressed(&load, &baseline, &alive, 2);
        // Excess: node1=2.0, node2=1.0, node0=0, node3<0 → top two are
        // 1 and 2, returned ascending.
        assert_eq!(picked, vec![1, 2]);
        let all = select_most_stressed(&load, &baseline, &alive, 10);
        assert_eq!(all, vec![1, 2]);
    }
}

//! Seeded topology generation in compressed-sparse-row form.
//!
//! The cluster layer needs adjacency for millions of nodes, which rules
//! out the pointer-chasing `Vec<Vec<u32>>` graphs of `crates/networks`.
//! [`CsrTopology`] stores the neighbor lists of all nodes in one flat
//! array indexed by per-node offsets — two allocations total, cache-dense
//! iteration, and `degree(v)` is a subtraction.
//!
//! Three generator families cover the paper's §5 regimes:
//!
//! * **Scale-free** — Barabási–Albert preferential attachment via the
//!   endpoint-multiset trick: every edge endpoint is pushed into a flat
//!   vector, so sampling a uniform element of that vector is sampling a
//!   node with probability proportional to its degree.
//! * **Random** — Erdős–Rényi `G(n, p)` via geometric skip-sampling:
//!   instead of flipping `n·(n−1)/2` coins we jump straight to the next
//!   successful pair, making generation `O(edges)` and therefore viable
//!   at million-node scale.
//! * **Small-world** — Watts–Strogatz: a ring lattice where each node
//!   links to its `k/2` nearest neighbors on each side, then each far
//!   endpoint is rewired to a uniform node with probability `beta`.
//!
//! All generators are pure functions of `(kind, n, seed)`.

use rand::Rng;
use resilience_core::seeded_rng;
use resilience_dcsp::BitWords;
use resilience_networks::UnionFind;
use serde::{Deserialize, Serialize};

/// Which generator family to draw the topology from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TopologyKind {
    /// Barabási–Albert preferential attachment: each new node attaches
    /// `m` edges to existing nodes with probability proportional to
    /// degree. Produces a power-law degree tail (hubs).
    ScaleFree {
        /// Edges attached by each arriving node (`m ≥ 1`).
        m: usize,
    },
    /// Erdős–Rényi `G(n, p)` with `p` chosen to hit `mean_degree`.
    /// Degree distribution is binomial — no hubs.
    Random {
        /// Expected mean degree (`p = mean_degree / (n − 1)`).
        mean_degree: f64,
    },
    /// Watts–Strogatz small-world: ring lattice of degree `k` with each
    /// far endpoint rewired with probability `beta`.
    SmallWorld {
        /// Ring degree (each node links `k/2` to each side; even, ≥ 2).
        k: usize,
        /// Rewiring probability in `[0, 1]`.
        beta: f64,
    },
}

impl TopologyKind {
    /// Short label for tables and metric names.
    pub fn label(&self) -> &'static str {
        match self {
            TopologyKind::ScaleFree { .. } => "scale_free",
            TopologyKind::Random { .. } => "random",
            TopologyKind::SmallWorld { .. } => "small_world",
        }
    }
}

/// An undirected graph over nodes `0..n` in compressed-sparse-row form.
///
/// `neighbors(v)` is the slice `adjacency[offsets[v]..offsets[v+1]]`.
/// Each undirected edge appears once in each endpoint's list. Neighbor
/// lists are sorted ascending, so iteration order — and therefore every
/// float accumulation the cascade performs — is a pure function of the
/// topology, independent of generator internals or thread budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrTopology {
    offsets: Vec<u64>,
    adjacency: Vec<u32>,
}

impl CsrTopology {
    /// Generate a topology of `n` nodes from `kind`, deterministically
    /// from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds `u32::MAX` nodes or the kind's parameters
    /// are degenerate (`m == 0`, `k < 2`, negative `mean_degree`).
    pub fn generate(kind: &TopologyKind, n: usize, seed: u64) -> Self {
        assert!(n <= u32::MAX as usize, "node ids are u32");
        let edges = match *kind {
            TopologyKind::ScaleFree { m } => {
                assert!(m >= 1, "scale-free m must be >= 1");
                barabasi_albert_edges(n, m, seed)
            }
            TopologyKind::Random { mean_degree } => {
                assert!(mean_degree >= 0.0, "mean_degree must be non-negative");
                erdos_renyi_edges(n, mean_degree, seed)
            }
            TopologyKind::SmallWorld { k, beta } => {
                assert!(k >= 2 && k % 2 == 0, "small-world k must be even and >= 2");
                assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");
                watts_strogatz_edges(n, k, beta, seed)
            }
        };
        Self::from_edges(n, &edges)
    }

    /// Build the CSR arrays from an undirected edge list (counting sort:
    /// one pass to size each neighbor list, one pass to scatter).
    /// Self-loops are dropped; parallel edges are kept (the generators
    /// above avoid them where the classical model does).
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut degree = vec![0u64; n];
        for &(a, b) in edges {
            if a == b {
                continue;
            }
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut offsets = vec![0u64; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut adjacency = vec![0u32; offsets[n] as usize];
        let mut cursor: Vec<u64> = offsets[..n].to_vec();
        for &(a, b) in edges {
            if a == b {
                continue;
            }
            adjacency[cursor[a as usize] as usize] = b;
            cursor[a as usize] += 1;
            adjacency[cursor[b as usize] as usize] = a;
            cursor[b as usize] += 1;
        }
        // Sorted neighbor lists pin the cascade's float-accumulation
        // order to the topology alone.
        for v in 0..n {
            let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
            adjacency[lo..hi].sort_unstable();
        }
        CsrTopology { offsets, adjacency }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the graph has zero nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.len() / 2
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Neighbor list of `v`, ascending.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adjacency[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Mean degree (`2·edges / n`).
    pub fn mean_degree(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.adjacency.len() as f64 / self.len() as f64
        }
    }

    /// Node ids sorted by descending degree, ties broken by ascending id
    /// — the deterministic victim order for targeted attacks.
    pub fn degrees_desc(&self) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.len() as u32).collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(self.degree(v as usize)), v));
        order
    }

    /// Size of the largest connected component among `alive` nodes,
    /// together with the union-find structure (callers can test giant
    /// membership via [`GiantView`]).
    pub fn giant_component(&self, alive: &BitWords) -> GiantView {
        let n = self.len();
        let mut uf = UnionFind::new(n);
        alive.for_each_one(|v| {
            for &w in self.neighbors(v) {
                let w = w as usize;
                // Each undirected edge is visited from both sides; the
                // `v < w` guard unions it once.
                if v < w && alive.get(w) {
                    uf.union(v, w);
                }
            }
        });
        let mut giant_root = None;
        let mut giant_size = 0usize;
        let mut view_uf = uf;
        alive.for_each_one(|v| {
            let size = view_uf.component_size(v);
            if size > giant_size {
                giant_size = size;
                giant_root = Some(view_uf.find(v));
            }
        });
        GiantView {
            uf: view_uf,
            giant_root,
            giant_size,
        }
    }
}

/// The connected-component decomposition of the alive subgraph, with the
/// giant (largest) component singled out.
#[derive(Debug)]
pub struct GiantView {
    uf: UnionFind,
    giant_root: Option<usize>,
    giant_size: usize,
}

impl GiantView {
    /// Size of the largest alive component (0 if nothing is alive).
    pub fn giant_size(&self) -> usize {
        self.giant_size
    }

    /// Whether alive node `v` sits in the giant component.
    pub fn in_giant(&mut self, v: usize) -> bool {
        match self.giant_root {
            Some(root) => self.uf.find(v) == root,
            None => false,
        }
    }
}

/// Barabási–Albert preferential attachment, endpoint-multiset form.
///
/// Seeded with a small clique of `m + 1` nodes; every subsequent node
/// attaches `m` edges whose far endpoints are drawn uniformly from the
/// flat vector of all previous edge endpoints (degree-proportional by
/// construction). Duplicate targets within one arrival are redrawn, so
/// the graph is simple.
fn barabasi_albert_edges(n: usize, m: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = seeded_rng(seed);
    let core = (m + 1).min(n);
    let mut edges: Vec<(u32, u32)> =
        Vec::with_capacity(core * core / 2 + n.saturating_sub(core) * m);
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * edges.capacity());
    for a in 0..core {
        for b in (a + 1)..core {
            edges.push((a as u32, b as u32));
            endpoints.push(a as u32);
            endpoints.push(b as u32);
        }
    }
    let mut targets: Vec<u32> = Vec::with_capacity(m);
    for v in core..n {
        targets.clear();
        while targets.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            edges.push((v as u32, t));
            endpoints.push(v as u32);
            endpoints.push(t);
        }
    }
    edges
}

/// Erdős–Rényi `G(n, p)` by geometric skip-sampling over the strictly
/// lower-triangular pair order `(1,0), (2,0), (2,1), (3,0), …` —
/// `O(edges)` instead of `O(n²)` coin flips.
fn erdos_renyi_edges(n: usize, mean_degree: f64, seed: u64) -> Vec<(u32, u32)> {
    if n < 2 {
        return Vec::new();
    }
    let p = (mean_degree / (n - 1) as f64).clamp(0.0, 1.0);
    if p <= 0.0 {
        return Vec::new();
    }
    let mut edges = Vec::with_capacity((mean_degree * n as f64 / 2.0) as usize + 16);
    if p >= 1.0 {
        for a in 1..n as u32 {
            for b in 0..a {
                edges.push((a, b));
            }
        }
        return edges;
    }
    let mut rng = seeded_rng(seed);
    let log_q = (1.0 - p).ln();
    // (v, w) walks the lower triangle; skip ~ Geometric(p) pairs ahead.
    let mut v: u64 = 1;
    let mut w: i64 = -1;
    loop {
        let u: f64 = rng.gen::<f64>();
        let skip = ((1.0 - u).ln() / log_q).floor().max(0.0) as i64;
        w += 1 + skip;
        while w >= v as i64 && (v as usize) < n {
            w -= v as i64;
            v += 1;
        }
        if v as usize >= n {
            return edges;
        }
        edges.push((v as u32, w as u32));
    }
}

/// Watts–Strogatz: ring lattice plus seeded rewiring of far endpoints.
fn watts_strogatz_edges(n: usize, k: usize, beta: f64, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = seeded_rng(seed);
    let half = (k / 2).min(n.saturating_sub(1));
    let mut edges = Vec::with_capacity(n * half);
    for v in 0..n {
        for d in 1..=half {
            let w = (v + d) % n;
            if v as u32 == w as u32 {
                continue;
            }
            let rewire = beta > 0.0 && rng.gen::<f64>() < beta;
            if rewire {
                // Redraw until the endpoint is neither `v` nor the ring
                // neighbor we are replacing (parallel edges elsewhere are
                // tolerated, as in the classical model's large-n limit).
                let mut t = rng.gen_range(0..n);
                let mut guard = 0;
                while (t == v || t == w) && guard < 64 {
                    t = rng.gen_range(0..n);
                    guard += 1;
                }
                if t != v {
                    edges.push((v as u32, t as u32));
                    continue;
                }
            }
            edges.push((v as u32, w as u32));
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_matches_edge_list() {
        let edges = [(0u32, 1u32), (1, 2), (0, 2), (2, 3), (3, 3)];
        let top = CsrTopology::from_edges(5, &edges);
        assert_eq!(top.len(), 5);
        assert_eq!(top.edge_count(), 4); // self-loop dropped
        assert_eq!(top.neighbors(0), &[1, 2]);
        assert_eq!(top.neighbors(2), &[0, 1, 3]);
        assert_eq!(top.neighbors(4), &[] as &[u32]);
        assert_eq!(top.degree(2), 3);
    }

    #[test]
    fn generation_is_deterministic() {
        for kind in [
            TopologyKind::ScaleFree { m: 3 },
            TopologyKind::Random { mean_degree: 6.0 },
            TopologyKind::SmallWorld { k: 6, beta: 0.1 },
        ] {
            let a = CsrTopology::generate(&kind, 500, 42);
            let b = CsrTopology::generate(&kind, 500, 42);
            let c = CsrTopology::generate(&kind, 500, 43);
            assert_eq!(a, b, "{kind:?} not deterministic");
            assert_ne!(a, c, "{kind:?} ignores its seed");
        }
    }

    #[test]
    fn scale_free_edge_count_and_hubs() {
        let n = 2_000;
        let m = 3;
        let top = CsrTopology::generate(&TopologyKind::ScaleFree { m }, n, 7);
        // m+1 clique seed + m edges per arrival.
        let expected = (m + 1) * m / 2 + (n - m - 1) * m;
        assert_eq!(top.edge_count(), expected);
        let order = top.degrees_desc();
        let top_degree = top.degree(order[0] as usize);
        assert!(
            top_degree > 10 * m,
            "expected a hub, max degree {top_degree}"
        );
        // Degrees descend along the attack order.
        assert!(top.degree(order[0] as usize) >= top.degree(order[n / 2] as usize));
    }

    #[test]
    fn random_graph_hits_mean_degree() {
        let top = CsrTopology::generate(&TopologyKind::Random { mean_degree: 8.0 }, 10_000, 11);
        let mean = top.mean_degree();
        assert!((mean - 8.0).abs() < 0.5, "mean degree {mean}");
        // Binomial degrees: the maximum should stay within a small
        // multiple of the mean (no hubs).
        let max_deg = (0..top.len()).map(|v| top.degree(v)).max().unwrap();
        assert!(max_deg < 40, "unexpected hub of degree {max_deg}");
    }

    #[test]
    fn small_world_keeps_ring_degree() {
        let top = CsrTopology::generate(&TopologyKind::SmallWorld { k: 6, beta: 0.05 }, 2_000, 3);
        assert_eq!(top.edge_count(), 2_000 * 3);
        assert!((top.mean_degree() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn giant_component_tracks_alive_set() {
        // Path 0-1-2-3 plus isolated 4.
        let top = CsrTopology::from_edges(5, &[(0, 1), (1, 2), (2, 3)]);
        let mut alive = BitWords::new_filled(5);
        let mut view = top.giant_component(&alive);
        assert_eq!(view.giant_size(), 4);
        assert!(view.in_giant(1));
        assert!(!view.in_giant(4));
        alive.clear(1); // split the path
        let mut view = top.giant_component(&alive);
        assert_eq!(view.giant_size(), 2);
        assert!(view.in_giant(2));
        assert!(!view.in_giant(0));
        alive.clear_all();
        let view = top.giant_component(&alive);
        assert_eq!(view.giant_size(), 0);
    }
}

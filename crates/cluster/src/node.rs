//! Per-node service state in structure-of-arrays form.
//!
//! Each cluster node runs a miniature service engine: it carries a
//! baseline demand (load it serves when healthy), a capacity with
//! headroom above that baseline (the Motter–Lai `1 + α` rule), and the
//! MAPE-K bookkeeping the supervisor needs to plan recovery — a failure
//! counter against the retry budget and the tick at which a planned
//! revival executes. Millions of nodes means no per-node structs: five
//! flat arrays, indexed by node id.

use crate::topology::CsrTopology;
use resilience_core::RecoveryPolicy;

/// Sentinel for "no revival scheduled".
pub const NEVER: u64 = u64::MAX;

/// The structure-of-arrays state of every node in the cluster.
#[derive(Debug, Clone)]
pub struct NodeFleet {
    /// Baseline demand per tick, normalized so the fleet mean is 1.
    /// Proportional to degree: hubs carry more of the cluster's work,
    /// which is exactly why targeted attacks hurt.
    pub baseline: Vec<f64>,
    /// Overload threshold: `(1 + headroom) · baseline` (Motter–Lai).
    pub capacity: Vec<f64>,
    /// Load currently carried. Dead nodes carry zero.
    pub load: Vec<f64>,
    /// Failures observed by the MAPE-K monitor, checked against the
    /// recovery policy's retry budget.
    pub failures: Vec<u32>,
    /// Tick at which the planned revival executes ([`NEVER`] if none).
    pub revive_at: Vec<u64>,
}

impl NodeFleet {
    /// Provision a fleet over `topology` with overload headroom
    /// `headroom` (the Motter–Lai α). Isolated nodes get the mean
    /// baseline of 1 so they still represent a unit of demand.
    pub fn provision(topology: &CsrTopology, headroom: f64) -> Self {
        let n = topology.len();
        let mean_degree = topology.mean_degree().max(1.0);
        let mut baseline = Vec::with_capacity(n);
        for v in 0..n {
            let d = topology.degree(v);
            baseline.push(if d == 0 { 1.0 } else { d as f64 / mean_degree });
        }
        let capacity = baseline.iter().map(|b| (1.0 + headroom) * b).collect();
        NodeFleet {
            load: baseline.clone(),
            baseline,
            capacity,
            failures: vec![0; n],
            revive_at: vec![NEVER; n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.baseline.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.baseline.is_empty()
    }

    /// MAPE-K plan step for a node that just failed: bump its failure
    /// count and, if the retry budget allows, schedule a revival after
    /// the policy's capped-exponential backoff (milliseconds read as
    /// logical ticks). Returns `true` if a revival was scheduled,
    /// `false` if the budget is exhausted (the node is lost).
    pub fn plan_recovery(&mut self, v: usize, now: u64, policy: &RecoveryPolicy) -> bool {
        self.failures[v] += 1;
        if self.failures[v] <= policy.retries {
            let backoff = policy.backoff_for(self.failures[v]).as_millis() as u64;
            self.revive_at[v] = now + 1 + backoff;
            true
        } else {
            self.revive_at[v] = NEVER;
            false
        }
    }

    /// Execute a revival: restore the node to baseline load with no
    /// pending schedule. (The caller flips the alive bit.)
    pub fn revive(&mut self, v: usize) {
        self.load[v] = self.baseline[v];
        self.revive_at[v] = NEVER;
    }

    /// Mark a node as unrecoverable (permanent fault or unrecoverable
    /// attack): exhaust its budget and cancel any schedule.
    pub fn condemn(&mut self, v: usize, policy: &RecoveryPolicy) {
        self.failures[v] = policy.retries + 1;
        self.revive_at[v] = NEVER;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{CsrTopology, TopologyKind};
    use std::time::Duration;

    fn policy() -> RecoveryPolicy {
        RecoveryPolicy {
            retries: 2,
            backoff: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(8),
            deadline: None,
        }
    }

    #[test]
    fn provisioning_tracks_degree() {
        let top = CsrTopology::generate(&TopologyKind::ScaleFree { m: 2 }, 300, 5);
        let fleet = NodeFleet::provision(&top, 0.25);
        assert_eq!(fleet.len(), 300);
        let mean: f64 = fleet.baseline.iter().sum::<f64>() / 300.0;
        assert!((mean - 1.0).abs() < 0.05, "baseline mean {mean}");
        for v in 0..fleet.len() {
            assert!((fleet.capacity[v] - 1.25 * fleet.baseline[v]).abs() < 1e-12);
            assert_eq!(fleet.load[v], fleet.baseline[v]);
        }
    }

    #[test]
    fn recovery_budget_and_backoff() {
        let top = CsrTopology::from_edges(2, &[(0, 1)]);
        let mut fleet = NodeFleet::provision(&top, 0.5);
        let p = policy();
        // First failure: backoff 2 ticks → revival at now + 3.
        assert!(fleet.plan_recovery(0, 10, &p));
        assert_eq!(fleet.revive_at[0], 13);
        // Second failure: doubled backoff.
        assert!(fleet.plan_recovery(0, 20, &p));
        assert_eq!(fleet.revive_at[0], 25);
        // Third failure exhausts retries=2.
        assert!(!fleet.plan_recovery(0, 30, &p));
        assert_eq!(fleet.revive_at[0], NEVER);
        fleet.revive(1);
        assert_eq!(fleet.load[1], fleet.baseline[1]);
        fleet.condemn(1, &p);
        assert_eq!(fleet.revive_at[1], NEVER);
        assert!(fleet.failures[1] > p.retries);
    }
}

//! Cluster-scale cascade simulation for the Systems Resilience model
//! (the paper's §5 at collective scale).
//!
//! A cluster is a fleet of miniature service nodes wired by a seeded
//! generated topology. Failures propagate sandpile-style — a dead
//! node's load sheds equally onto surviving neighbors, overloads
//! topple in waves — while the MAPE-K supervisor plans cross-node
//! recovery on the logical tick clock. The layer exists to measure
//! resilience *collectively*: attack-vs-random R curves, cascade-size
//! distributions at criticality, and prescribed-burn policies scored
//! as ΔR.
//!
//! * [`CsrTopology`] — compressed-sparse-row adjacency at million-node
//!   scale; scale-free, Erdős–Rényi, and Watts–Strogatz generators.
//! * [`NodeFleet`] — structure-of-arrays per-node service state
//!   (baseline demand, Motter–Lai capacity, load, MAPE-K bookkeeping).
//! * [`propagate`] — deterministic cascade waves over word-packed
//!   alive-sets ([`resilience_dcsp::BitWords`]).
//! * [`ClusterEngine`] — the tick loop: revive → burn → surge → chaos
//!   → attack → cascade → plan → drain → score.
//! * [`BurnPolicy`] — prescribed burns: periodic controlled relief of
//!   the most-stressed nodes.
//! * [`record_cluster_events`] / [`record_cluster_metrics`] — pure
//!   exposition of a [`ClusterReport`] through `crates/telemetry`.
//!
//! # Example
//!
//! ```
//! use resilience_cluster::{
//!     AttackSpec, ClusterConfig, ClusterEngine, TopologyKind,
//! };
//! use resilience_core::FaultPlan;
//! use resilience_networks::AttackStrategy;
//!
//! let config = ClusterConfig::new(500, TopologyKind::ScaleFree { m: 3 });
//! let engine = ClusterEngine::new(config, 7);
//! let attack = AttackSpec {
//!     tick: 5,
//!     strategy: AttackStrategy::TargetedByDegree,
//!     fraction: 0.05,
//!     recoverable: false,
//! };
//! let report = engine.run(1, Some(&attack), &FaultPlan::none());
//! assert!(report.resilience_loss() > 0.0);
//! // Bit-identical on every rerun: the run is a pure function.
//! assert_eq!(report, engine.run(1, Some(&attack), &FaultPlan::none()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as typed errors, never `unwrap()`;
// tests are exempt (the `not(test)` gate) because a failed unwrap there
// *is* the assertion.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod burn;
pub mod cascade;
pub mod engine;
pub mod node;
pub mod telemetry;
pub mod topology;

pub use burn::{select_most_stressed, BurnPolicy};
pub use cascade::{propagate, CascadeScratch, CascadeStats};
pub use engine::{
    AttackSpec, CascadeRecord, ClusterConfig, ClusterEngine, ClusterReport, NodeAnticipationConfig,
    NodeModeShift, BURN_COST, DISCONNECT_COST,
};
pub use node::{NodeFleet, NEVER};
pub use telemetry::{record_cluster_events, record_cluster_metrics, CASCADE_SIZE_BOUNDS};
pub use topology::{CsrTopology, GiantView, TopologyKind};

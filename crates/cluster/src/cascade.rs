//! Sandpile-style load-shedding cascades.
//!
//! When a node dies, the load it carried does not vanish — it sheds onto
//! its surviving neighbors in equal shares (the sandpile redistribution
//! rule, after Motter–Lai's overload model). A neighbor pushed past its
//! capacity topples in turn, and the failure front advances in waves
//! until no node is overloaded. Load shed by a node with no surviving
//! neighbors is dropped from the system entirely.
//!
//! Determinism contract: within a wave, dead nodes redistribute in
//! ascending node-id order and overload checks scan the touched set in
//! ascending order (both via [`BitWords`] iteration), so the float
//! accumulation order — and therefore every bit of the outcome — is a
//! pure function of `(topology, loads, initial frontier)`. No RNG, no
//! thread-dependent ordering.

use crate::topology::CsrTopology;
use resilience_dcsp::BitWords;
use serde::{Deserialize, Serialize};

/// Outcome of one cascade (a maximal sequence of topple waves).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CascadeStats {
    /// Nodes dead at the start of the cascade (exogenous trigger).
    pub trigger: u64,
    /// Nodes that toppled from overload during propagation.
    pub toppled: u64,
    /// Propagation waves until quiescence (0 if nothing toppled).
    pub waves: u32,
    /// Load dropped because a dead node had no surviving neighbor.
    pub shed_load: f64,
}

impl CascadeStats {
    /// Total nodes lost to this cascade (trigger + toppled).
    pub fn size(&self) -> u64 {
        self.trigger + self.toppled
    }
}

/// Scratch buffers for cascade propagation, reused across ticks so the
/// hot loop performs no allocation.
#[derive(Debug, Clone)]
pub struct CascadeScratch {
    /// Alive nodes whose load changed this wave (overload candidates).
    touched: BitWords,
    /// The next wave's frontier.
    next: Vec<u32>,
    /// Every node that toppled during the last [`propagate`] call, in
    /// topple order — the engine plans MAPE-K recovery from this list.
    pub toppled_ids: Vec<u32>,
}

impl CascadeScratch {
    /// Scratch for an `n`-node cluster.
    pub fn new(n: usize) -> Self {
        CascadeScratch {
            touched: BitWords::new(n),
            next: Vec::new(),
            toppled_ids: Vec::new(),
        }
    }
}

/// Propagate a cascade to quiescence.
///
/// `frontier` holds the nodes that just died (ascending order, already
/// cleared from `alive`, loads still carrying their at-death value).
/// On return every overloaded node reachable from the trigger has
/// toppled: cleared from `alive`, load redistributed onward.
pub fn propagate(
    topology: &CsrTopology,
    alive: &mut BitWords,
    load: &mut [f64],
    capacity: &[f64],
    frontier: &mut Vec<u32>,
    scratch: &mut CascadeScratch,
) -> CascadeStats {
    let mut stats = CascadeStats {
        trigger: frontier.len() as u64,
        toppled: 0,
        waves: 0,
        shed_load: 0.0,
    };
    scratch.toppled_ids.clear();
    while !frontier.is_empty() {
        stats.waves += 1;
        scratch.touched.clear_all();
        // Redistribute in ascending node order (frontier is sorted).
        for &v in frontier.iter() {
            let v = v as usize;
            let shed = load[v];
            load[v] = 0.0;
            if shed == 0.0 {
                continue;
            }
            let survivors = topology
                .neighbors(v)
                .iter()
                .filter(|&&w| alive.get(w as usize))
                .count();
            if survivors == 0 {
                stats.shed_load += shed;
                continue;
            }
            let share = shed / survivors as f64;
            for &w in topology.neighbors(v) {
                let w = w as usize;
                if alive.get(w) {
                    load[w] += share;
                    scratch.touched.set(w);
                }
            }
        }
        // Overload check in ascending order over the touched set.
        scratch.next.clear();
        scratch.touched.for_each_one(|w| {
            if load[w] > capacity[w] {
                scratch.next.push(w as u32);
            }
        });
        frontier.clear();
        for &w in &scratch.next {
            alive.clear(w as usize);
            frontier.push(w);
            scratch.toppled_ids.push(w);
        }
        stats.toppled += frontier.len() as u64;
    }
    // The final wave found no topples; don't count it as propagation.
    if stats.waves > 0 {
        stats.waves -= 1;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Star: hub 0 linked to 1..=4.
    fn star() -> CsrTopology {
        CsrTopology::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)])
    }

    #[test]
    fn hub_death_spreads_equally() {
        let top = star();
        let mut alive = BitWords::new_filled(5);
        let mut load = vec![4.0, 1.0, 1.0, 1.0, 1.0];
        let capacity = vec![8.0, 3.0, 3.0, 3.0, 3.0];
        alive.clear(0);
        let mut frontier = vec![0u32];
        let mut scratch = CascadeScratch::new(5);
        let stats = propagate(
            &top,
            &mut alive,
            &mut load,
            &capacity,
            &mut frontier,
            &mut scratch,
        );
        assert_eq!(stats.trigger, 1);
        assert_eq!(stats.toppled, 0);
        assert_eq!(stats.waves, 0);
        assert_eq!(stats.shed_load, 0.0);
        // 4.0 split across four leaves.
        assert_eq!(load, vec![0.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn overload_topples_in_waves() {
        // Chain 0-1-2-3 with tight capacities: killing 0 overloads 1,
        // whose shed overloads 2, etc.
        let top = CsrTopology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut alive = BitWords::new_filled(4);
        let mut load = vec![1.0, 1.0, 1.0, 1.0];
        let capacity = vec![1.5, 1.5, 1.5, 10.0];
        alive.clear(0);
        let mut frontier = vec![0u32];
        let mut scratch = CascadeScratch::new(4);
        let stats = propagate(
            &top,
            &mut alive,
            &mut load,
            &capacity,
            &mut frontier,
            &mut scratch,
        );
        // 1 gets 1.0 → 2.0 > 1.5, topples; 2 gets 2.0 → 3.0 > 1.5,
        // topples; 3 gets 3.0 → 4.0 < 10, survives.
        assert_eq!(stats.trigger, 1);
        assert_eq!(stats.toppled, 2);
        assert_eq!(stats.waves, 2);
        assert_eq!(stats.size(), 3);
        assert!(alive.get(3) && !alive.get(1) && !alive.get(2));
        assert_eq!(load[3], 4.0);
    }

    #[test]
    fn isolated_death_sheds_load() {
        let top = CsrTopology::from_edges(3, &[(0, 1)]);
        let mut alive = BitWords::new_filled(3);
        let mut load = vec![1.0, 1.0, 2.5];
        let capacity = vec![5.0, 5.0, 5.0];
        alive.clear(2);
        let mut frontier = vec![2u32];
        let mut scratch = CascadeScratch::new(3);
        let stats = propagate(
            &top,
            &mut alive,
            &mut load,
            &capacity,
            &mut frontier,
            &mut scratch,
        );
        assert_eq!(stats.shed_load, 2.5);
        assert_eq!(load[2], 0.0);
    }

    #[test]
    fn cascade_is_deterministic() {
        let top = CsrTopology::generate(&crate::TopologyKind::ScaleFree { m: 3 }, 2_000, 9);
        let run = || {
            let mut alive = BitWords::new_filled(2_000);
            let mut load: Vec<f64> = (0..2_000).map(|v| top.degree(v) as f64 / 6.0).collect();
            let capacity: Vec<f64> = load.iter().map(|l| 1.05 * l).collect();
            let order = top.degrees_desc();
            let mut frontier: Vec<u32> = order[..20].to_vec();
            frontier.sort_unstable();
            for &v in &frontier {
                alive.clear(v as usize);
            }
            let mut scratch = CascadeScratch::new(2_000);
            let stats = propagate(
                &top,
                &mut alive,
                &mut load,
                &capacity,
                &mut frontier,
                &mut scratch,
            );
            (stats, alive, load)
        };
        let (s1, a1, l1) = run();
        let (s2, a2, l2) = run();
        assert_eq!(s1, s2);
        assert_eq!(a1, a2);
        assert_eq!(l1, l2);
        assert!(s1.toppled > 0, "tight headroom should cascade");
    }
}

//! The E14 budget-allocation experiment (the paper's §4.4 question).
//!
//! "What combination of resilience strategies is optimum under a given
//! condition is one of the questions that we would like to answer."
//!
//! [`sweep_budgets`] runs the multi-agent simulation across the budget
//! simplex for a given shock regime and reports survival probabilities.

use rand::Rng;

use resilience_core::{derive_seed, seeded_rng, BudgetAllocation};
use serde::{Deserialize, Serialize};

use crate::budget::BudgetedParams;
use crate::dynamics::{SimConfig, Simulation};
use crate::environment::{Environment, EnvironmentKind};

/// The environmental regime a population must endure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShockRegime {
    /// No change at all.
    Calm,
    /// Steady drift of 2 bits/step.
    SteadyDrift,
    /// A 12-bit shock every 60 steps (rare X-events).
    RareShocks,
    /// A 6-bit shock every 12 steps (frequent mid-size events).
    FrequentShocks,
}

impl ShockRegime {
    /// All regimes, in sweep order.
    pub const ALL: [ShockRegime; 4] = [
        ShockRegime::Calm,
        ShockRegime::SteadyDrift,
        ShockRegime::RareShocks,
        ShockRegime::FrequentShocks,
    ];

    /// The environment law for this regime.
    pub fn environment_kind(&self) -> EnvironmentKind {
        match self {
            ShockRegime::Calm => EnvironmentKind::Static,
            ShockRegime::SteadyDrift => EnvironmentKind::Drift { bits_per_step: 2 },
            ShockRegime::RareShocks => EnvironmentKind::Shocks {
                period: 60,
                bits: 12,
            },
            ShockRegime::FrequentShocks => EnvironmentKind::Shocks {
                period: 12,
                bits: 6,
            },
        }
    }
}

/// Survival results for one allocation under one regime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegimeOutcome {
    /// The budget split.
    pub allocation: BudgetAllocation,
    /// The regime tested.
    pub regime: ShockRegime,
    /// Replicates run.
    pub replicates: usize,
    /// Replicates whose population survived the horizon.
    pub survivals: usize,
    /// Mean final population size across replicates (0 for extinct runs).
    pub mean_final_population: f64,
}

impl RegimeOutcome {
    /// Fraction of replicates surviving.
    pub fn survival_rate(&self) -> f64 {
        if self.replicates == 0 {
            1.0
        } else {
            self.survivals as f64 / self.replicates as f64
        }
    }
}

/// Evaluate one allocation under one regime (`replicates` independent
/// runs of `steps` steps each, seeded from `seed`).
pub fn evaluate_allocation(
    allocation: &BudgetAllocation,
    regime: ShockRegime,
    steps: usize,
    replicates: usize,
    seed: u64,
) -> RegimeOutcome {
    let params = BudgetedParams::from_allocation(allocation);
    let config = SimConfig::default();
    let mut survivals = 0;
    let mut pop_sum = 0.0;
    for rep in 0..replicates {
        let mut rng = seeded_rng(derive_seed(seed, rep as u64));
        let env = Environment::random(config.n_bits, regime.environment_kind(), &mut rng);
        let mut sim = Simulation::new(config, params, env, &mut rng);
        let out = sim.run(steps, &mut rng);
        if !out.extinct {
            survivals += 1;
            pop_sum += *out.population_series.values().last().unwrap_or(&0.0);
        }
    }
    RegimeOutcome {
        allocation: *allocation,
        regime,
        replicates,
        survivals,
        mean_final_population: pop_sum / replicates.max(1) as f64,
    }
}

/// Sweep the whole budget simplex (`grid_steps` subdivisions) under one
/// regime.
pub fn sweep_budgets(
    regime: ShockRegime,
    grid_steps: usize,
    steps: usize,
    replicates: usize,
    seed: u64,
) -> Vec<RegimeOutcome> {
    BudgetAllocation::simplex_grid(grid_steps)
        .iter()
        .enumerate()
        .map(|(i, alloc)| {
            evaluate_allocation(
                alloc,
                regime,
                steps,
                replicates,
                derive_seed(seed, i as u64),
            )
        })
        .collect()
}

/// The best allocation of a sweep (highest survival, ties broken by final
/// population).
pub fn best_allocation(outcomes: &[RegimeOutcome]) -> Option<&RegimeOutcome> {
    outcomes.iter().max_by(|a, b| {
        (a.survival_rate(), a.mean_final_population)
            .partial_cmp(&(b.survival_rate(), b.mean_final_population))
            .expect("rates are finite")
    })
}

/// Convenience used by tests and the bench harness: an ablation row
/// comparing the uniform mix against each pure corner under `regime`.
pub fn ablation_rows(
    regime: ShockRegime,
    steps: usize,
    replicates: usize,
    seed: u64,
) -> Vec<RegimeOutcome> {
    use resilience_core::Strategy;
    let allocations = [
        BudgetAllocation::uniform(),
        BudgetAllocation::pure(Strategy::Redundancy),
        BudgetAllocation::pure(Strategy::Diversity),
        BudgetAllocation::pure(Strategy::Adaptability),
    ];
    allocations
        .iter()
        .enumerate()
        .map(|(i, alloc)| {
            evaluate_allocation(
                alloc,
                regime,
                steps,
                replicates,
                derive_seed(seed, 100 + i as u64),
            )
        })
        .collect()
}

/// A deterministic RNG helper for external drivers that want their own
/// environments.
pub fn regime_environment<R: Rng + ?Sized>(
    regime: ShockRegime,
    n_bits: usize,
    rng: &mut R,
) -> Environment {
    Environment::random(n_bits, regime.environment_kind(), rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calm_regime_everything_survives() {
        let out = evaluate_allocation(&BudgetAllocation::uniform(), ShockRegime::Calm, 150, 5, 1);
        assert_eq!(out.survival_rate(), 1.0);
        assert!(out.mean_final_population > 40.0);
    }

    #[test]
    fn drift_demands_adaptability() {
        use resilience_core::Strategy;
        // Under steady drift, a zero-adaptability (pure redundancy)
        // population dies; an adaptability-heavy one survives.
        let redundancy_only = evaluate_allocation(
            &BudgetAllocation::pure(Strategy::Redundancy),
            ShockRegime::SteadyDrift,
            250,
            6,
            2,
        );
        let adaptability_heavy = evaluate_allocation(
            &BudgetAllocation::new(0.1, 0.1, 0.8).unwrap(),
            ShockRegime::SteadyDrift,
            250,
            6,
            2,
        );
        assert_eq!(
            redundancy_only.survival_rate(),
            0.0,
            "pure redundancy cannot track drift"
        );
        assert!(
            adaptability_heavy.survival_rate() > 0.8,
            "adaptability survives drift: {}",
            adaptability_heavy.survival_rate()
        );
    }

    #[test]
    fn sweep_covers_simplex() {
        let outcomes = sweep_budgets(ShockRegime::Calm, 2, 50, 2, 3);
        assert_eq!(outcomes.len(), 6); // (2+1)(2+2)/2
        let best = best_allocation(&outcomes).unwrap();
        assert!(best.survival_rate() >= outcomes[0].survival_rate());
    }

    #[test]
    fn ablation_has_four_rows() {
        let rows = ablation_rows(ShockRegime::Calm, 50, 2, 4);
        assert_eq!(rows.len(), 4);
        // All corners survive a calm world.
        for row in &rows {
            assert_eq!(row.survival_rate(), 1.0, "{:?}", row.allocation);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = evaluate_allocation(
            &BudgetAllocation::uniform(),
            ShockRegime::RareShocks,
            100,
            3,
            7,
        );
        let b = evaluate_allocation(
            &BudgetAllocation::uniform(),
            ShockRegime::RareShocks,
            100,
            3,
            7,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn regime_kinds() {
        assert_eq!(
            ShockRegime::Calm.environment_kind(),
            EnvironmentKind::Static
        );
        assert!(matches!(
            ShockRegime::SteadyDrift.environment_kind(),
            EnvironmentKind::Drift { bits_per_step: 2 }
        ));
        assert_eq!(ShockRegime::ALL.len(), 4);
    }
}

//! The evolutionary multi-agent testbed of the paper's §4.4.
//!
//! "We plan to address that question using an evolutionary multi-agent
//! system. Each agent in the system is a digital organism that can
//! self-replicate, mutate, or evolve … We quantify the three resilience
//! properties of the system as follows. First, we consider the amount of a
//! resource owned by an agent as the redundancy factor. An agent can
//! remain alive until it uses up its resources even if it does not satisfy
//! a constraint for a certain period. Second, we measure the diversity of
//! a population … with the diversity index … Third, we quantify the speed
//! of an adaptation by the number of bits an agent can flip at a time."
//!
//! * [`organism`] — a digital organism: genome (bit string), resource
//!   store, adaptation rate.
//! * [`environment`] — target configurations over time: static, drifting,
//!   or shock-driven.
//! * [`population`] — the agent population with §4.4's three metrics.
//! * [`dynamics`] — the simulation loop: adapt → earn/burn → reproduce →
//!   die.
//! * [`budget`] — [`resilience_core::BudgetAllocation`] → concrete
//!   organism parameters at equal total cost.
//! * [`experiment`] — the E14 sweep: survival across the budget simplex
//!   and shock regimes.
//!
//! # Example
//!
//! ```
//! use resilience_agents::experiment::{evaluate_allocation, ShockRegime};
//! use resilience_core::{BudgetAllocation, Strategy};
//!
//! // Pure redundancy cannot track a drifting environment (§4.4).
//! let redundancy = BudgetAllocation::pure(Strategy::Redundancy);
//! let outcome = evaluate_allocation(&redundancy, ShockRegime::SteadyDrift, 200, 3, 42);
//! assert_eq!(outcome.survival_rate(), 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod dynamics;
pub mod environment;
pub mod experiment;
pub mod organism;
pub mod population;

pub use budget::{BudgetedParams, BUDGET_POINTS};
pub use dynamics::{SimConfig, SimOutcome, Simulation};
pub use environment::{Environment, EnvironmentKind};
pub use experiment::{sweep_budgets, RegimeOutcome, ShockRegime};
pub use organism::Organism;
pub use population::{Population, PopulationStats};

//! A digital organism (the paper's §4.4 agent).

use rand::Rng;

use resilience_core::Config;

/// A self-replicating digital organism.
///
/// The three §4.4 resilience quantities live here: `resource` is the
/// redundancy store, the genome's spread across the population is the
/// diversity, and `adaptation_rate` (bits flippable per step) is the
/// adaptability.
#[derive(Debug, Clone, PartialEq)]
pub struct Organism {
    /// The genotype: a configuration that wants to match the environment.
    pub genome: Config,
    /// Stored resource; the organism dies when it reaches zero.
    pub resource: f64,
    /// Bits the organism can flip towards the target per step.
    pub adaptation_rate: usize,
    /// Age in steps.
    pub age: usize,
}

impl Organism {
    /// A new organism.
    pub fn new(genome: Config, resource: f64, adaptation_rate: usize) -> Self {
        Organism {
            genome,
            resource,
            adaptation_rate,
            age: 0,
        }
    }

    /// Fitness against a target: fraction of matching bits, in `[0, 1]`.
    pub fn fitness(&self, target: &Config) -> f64 {
        match self.genome.hamming(target) {
            Ok(d) => 1.0 - d as f64 / self.genome.len().max(1) as f64,
            Err(_) => 0.0,
        }
    }

    /// Whether the organism satisfies the environment's constraint
    /// (fitness ≥ `threshold`).
    pub fn is_fit(&self, target: &Config, threshold: f64) -> bool {
        self.fitness(target) >= threshold
    }

    /// One adaptation move: flip up to `adaptation_rate` mismatched bits
    /// toward the target (the organism senses its own misfit). Returns the
    /// number of bits fixed.
    pub fn adapt(&mut self, target: &Config) -> usize {
        let mismatched = match self.genome.differing_bits(target) {
            Ok(m) => m,
            Err(_) => return 0,
        };
        let fix = mismatched.len().min(self.adaptation_rate);
        for &bit in mismatched.iter().take(fix) {
            self.genome.flip(bit);
        }
        fix
    }

    /// Produce an offspring: the parent's resource is split in half, and
    /// the child's genome mutates at per-bit rate `mutation`.
    pub fn reproduce<R: Rng + ?Sized>(&mut self, mutation: f64, rng: &mut R) -> Organism {
        self.resource /= 2.0;
        let mut child_genome = self.genome.clone();
        child_genome.mutate(mutation, rng);
        Organism {
            genome: child_genome,
            resource: self.resource,
            adaptation_rate: self.adaptation_rate,
            age: 0,
        }
    }

    /// Whether the organism is dead (resource exhausted).
    pub fn is_dead(&self) -> bool {
        self.resource <= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::seeded_rng;

    #[test]
    fn fitness_fraction() {
        let target: Config = "1111".parse().unwrap();
        let o = Organism::new("1100".parse().unwrap(), 1.0, 1);
        assert!((o.fitness(&target) - 0.5).abs() < 1e-12);
        assert!(!o.is_fit(&target, 0.9));
        assert!(o.is_fit(&target, 0.5));
        // Length mismatch is zero fitness, not a panic.
        assert_eq!(o.fitness(&Config::ones(6)), 0.0);
    }

    #[test]
    fn adapt_fixes_up_to_rate() {
        let target: Config = "111111".parse().unwrap();
        let mut o = Organism::new("000000".parse().unwrap(), 1.0, 2);
        assert_eq!(o.adapt(&target), 2);
        assert!((o.fitness(&target) - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(o.adapt(&target), 2);
        assert_eq!(o.adapt(&target), 2);
        assert_eq!(o.adapt(&target), 0); // already perfect
        assert!(o.is_fit(&target, 1.0));
    }

    #[test]
    fn zero_rate_cannot_adapt() {
        let target: Config = "11".parse().unwrap();
        let mut o = Organism::new("00".parse().unwrap(), 1.0, 0);
        assert_eq!(o.adapt(&target), 0);
        assert_eq!(o.fitness(&target), 0.0);
    }

    #[test]
    fn reproduction_splits_resource_and_mutates() {
        let mut rng = seeded_rng(221);
        let mut parent = Organism::new(Config::ones(64), 10.0, 3);
        let child = parent.reproduce(0.1, &mut rng);
        assert!((parent.resource - 5.0).abs() < 1e-12);
        assert!((child.resource - 5.0).abs() < 1e-12);
        assert_eq!(child.adaptation_rate, 3);
        assert_eq!(child.age, 0);
        // With rate 0.1 over 64 bits a mutation is overwhelmingly likely.
        assert!(child.genome.hamming(&parent.genome).unwrap() > 0);
    }

    #[test]
    fn zero_mutation_clones_exactly() {
        let mut rng = seeded_rng(222);
        let mut parent = Organism::new(Config::random(32, &mut rng), 4.0, 1);
        let child = parent.reproduce(0.0, &mut rng);
        assert_eq!(child.genome, parent.genome);
    }

    #[test]
    fn death_at_zero_resource() {
        let o = Organism::new(Config::ones(4), 0.0, 1);
        assert!(o.is_dead());
        let alive = Organism::new(Config::ones(4), 0.1, 1);
        assert!(!alive.is_dead());
    }
}

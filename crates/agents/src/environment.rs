//! Changing environments for the agent testbed.
//!
//! The environment is a target configuration the organisms must track
//! (§4.4: "resilient to a changing environment"). Three canonical kinds:
//! static, steadily drifting, and punctuated by large shocks.

use rand::Rng;

use resilience_core::Config;

/// How the target changes over time.
#[derive(Debug, Clone, PartialEq)]
pub enum EnvironmentKind {
    /// The target never changes.
    Static,
    /// `bits_per_step` target bits flip every step (gradual drift).
    Drift {
        /// Bits flipped per step.
        bits_per_step: usize,
    },
    /// Every `period` steps, `bits` target bits flip at once (X-events).
    Shocks {
        /// Steps between shocks.
        period: usize,
        /// Bits flipped per shock.
        bits: usize,
    },
}

/// The environment: a target configuration plus its change law.
#[derive(Debug, Clone, PartialEq)]
pub struct Environment {
    target: Config,
    kind: EnvironmentKind,
    time: usize,
}

impl Environment {
    /// New environment with an initial target.
    pub fn new(target: Config, kind: EnvironmentKind) -> Self {
        Environment {
            target,
            kind,
            time: 0,
        }
    }

    /// Random initial target of `n_bits`.
    pub fn random<R: Rng + ?Sized>(n_bits: usize, kind: EnvironmentKind, rng: &mut R) -> Self {
        Environment::new(Config::random(n_bits, rng), kind)
    }

    /// The current target.
    pub fn target(&self) -> &Config {
        &self.target
    }

    /// Elapsed steps.
    pub fn time(&self) -> usize {
        self.time
    }

    /// Advance one step; returns the number of target bits that changed.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        self.time += 1;
        match self.kind {
            EnvironmentKind::Static => 0,
            EnvironmentKind::Drift { bits_per_step } => {
                self.target.flip_random(bits_per_step, rng).len()
            }
            EnvironmentKind::Shocks { period, bits } => {
                if period > 0 && self.time.is_multiple_of(period) {
                    self.target.flip_random(bits, rng).len()
                } else {
                    0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::seeded_rng;

    #[test]
    fn static_environment_never_changes() {
        let mut rng = seeded_rng(231);
        let mut env = Environment::random(16, EnvironmentKind::Static, &mut rng);
        let before = env.target().clone();
        for _ in 0..50 {
            assert_eq!(env.step(&mut rng), 0);
        }
        assert_eq!(env.target(), &before);
        assert_eq!(env.time(), 50);
    }

    #[test]
    fn drift_changes_every_step() {
        let mut rng = seeded_rng(232);
        let mut env =
            Environment::random(32, EnvironmentKind::Drift { bits_per_step: 2 }, &mut rng);
        let before = env.target().clone();
        assert_eq!(env.step(&mut rng), 2);
        assert_eq!(env.target().hamming(&before).unwrap(), 2);
    }

    #[test]
    fn shocks_fire_on_schedule() {
        let mut rng = seeded_rng(233);
        let mut env =
            Environment::random(32, EnvironmentKind::Shocks { period: 5, bits: 8 }, &mut rng);
        let mut changes = Vec::new();
        for _ in 0..10 {
            changes.push(env.step(&mut rng));
        }
        assert_eq!(changes[4], 8);
        assert_eq!(changes[9], 8);
        assert_eq!(changes.iter().sum::<usize>(), 16);
    }

    #[test]
    fn zero_period_never_shocks() {
        let mut rng = seeded_rng(234);
        let mut env =
            Environment::random(8, EnvironmentKind::Shocks { period: 0, bits: 4 }, &mut rng);
        for _ in 0..10 {
            assert_eq!(env.step(&mut rng), 0);
        }
    }
}

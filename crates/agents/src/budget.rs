//! Mapping a [`BudgetAllocation`] onto concrete organism parameters.
//!
//! §4.4's open question — "Should we invest our resource on redundancy,
//! diversity, adaptability…?" — needs the three investments priced in a
//! common currency. We give every population [`BUDGET_POINTS`] points and
//! convert:
//!
//! * **redundancy** points → initial resource endowment per organism,
//! * **diversity** points → offspring mutation rate *and* initial
//!   genotype spread,
//! * **adaptability** points → bits flippable per step.

use resilience_core::BudgetAllocation;
use serde::{Deserialize, Serialize};

/// Total budget points every configuration spends (equal total cost).
pub const BUDGET_POINTS: f64 = 12.0;

/// Concrete parameters derived from a budget split.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetedParams {
    /// Initial resource per organism (redundancy). Baseline 2 + 1 per
    /// point.
    pub initial_resource: f64,
    /// Per-bit mutation rate at reproduction (diversity). Baseline 0.002 +
    /// 0.008 per point.
    pub mutation_rate: f64,
    /// Initial genotype spread: fraction of bits randomized away from the
    /// founder (diversity). 1% per point, capped at 40%.
    pub initial_spread: f64,
    /// Bits flippable per step (adaptability). Baseline 0 + 1 per 2
    /// points, rounded.
    pub adaptation_rate: usize,
}

impl BudgetedParams {
    /// Price a budget allocation.
    pub fn from_allocation(allocation: &BudgetAllocation) -> Self {
        let r = allocation.redundancy() * BUDGET_POINTS;
        let d = allocation.diversity() * BUDGET_POINTS;
        let a = allocation.adaptability() * BUDGET_POINTS;
        BudgetedParams {
            initial_resource: 2.0 + r,
            mutation_rate: (0.002 + 0.008 * d).min(0.5),
            initial_spread: (0.01 * d).min(0.4),
            adaptation_rate: (a / 2.0).round() as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::Strategy;

    #[test]
    fn uniform_split() {
        let p = BudgetedParams::from_allocation(&BudgetAllocation::uniform());
        assert!((p.initial_resource - 6.0).abs() < 1e-9);
        assert!((p.mutation_rate - 0.034).abs() < 1e-9);
        assert_eq!(p.adaptation_rate, 2);
        assert!((p.initial_spread - 0.04).abs() < 1e-9);
    }

    #[test]
    fn pure_corners() {
        let r = BudgetedParams::from_allocation(&BudgetAllocation::pure(Strategy::Redundancy));
        assert!((r.initial_resource - 14.0).abs() < 1e-9);
        assert_eq!(r.adaptation_rate, 0);
        assert!(r.mutation_rate < 0.01);

        let d = BudgetedParams::from_allocation(&BudgetAllocation::pure(Strategy::Diversity));
        assert!((d.initial_resource - 2.0).abs() < 1e-9);
        assert!(d.mutation_rate > 0.09);
        assert!((d.initial_spread - 0.12).abs() < 1e-9);

        let a = BudgetedParams::from_allocation(&BudgetAllocation::pure(Strategy::Adaptability));
        assert_eq!(a.adaptation_rate, 6);
        assert!((a.initial_resource - 2.0).abs() < 1e-9);
    }

    #[test]
    fn caps_hold() {
        // Even pathological allocations stay within sane parameter ranges.
        let p = BudgetedParams::from_allocation(&BudgetAllocation::pure(Strategy::Diversity));
        assert!(p.mutation_rate <= 0.5);
        assert!(p.initial_spread <= 0.4);
        // Founders must start fit in a calm world (spread below the 0.15
        // unfitness margin of the default 0.85 threshold).
        assert!(p.initial_spread <= 0.125);
    }
}

//! The agent population and the §4.4 metric set.

use std::collections::HashMap;

use resilience_core::Config;
use resilience_ecology::diversity_index;

use crate::organism::Organism;

/// A population of digital organisms.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Population {
    members: Vec<Organism>,
}

/// Snapshot of the population's §4.4 quantities.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationStats {
    /// Living organisms.
    pub size: usize,
    /// Inverse-Simpson diversity over *genotype classes* (identical
    /// genomes form one class) — the paper's diversity measure applied to
    /// the agent population.
    pub genotype_diversity: f64,
    /// Mean stored resource (the redundancy factor).
    pub mean_resource: f64,
    /// Mean fitness against the current target.
    pub mean_fitness: f64,
    /// Fraction of organisms currently satisfying the constraint.
    pub fit_fraction: f64,
}

impl Population {
    /// An empty population.
    pub fn new() -> Self {
        Population {
            members: Vec::new(),
        }
    }

    /// Build from organisms.
    pub fn from_members(members: Vec<Organism>) -> Self {
        Population { members }
    }

    /// Number of living members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the population is extinct.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Immutable members.
    pub fn members(&self) -> &[Organism] {
        &self.members
    }

    /// Mutable members.
    pub fn members_mut(&mut self) -> &mut Vec<Organism> {
        &mut self.members
    }

    /// Add an organism.
    pub fn push(&mut self, organism: Organism) {
        self.members.push(organism);
    }

    /// Remove the dead; returns how many died.
    pub fn reap(&mut self) -> usize {
        let before = self.members.len();
        self.members.retain(|o| !o.is_dead());
        before - self.members.len()
    }

    /// Compute the §4.4 statistics against `target` with fitness
    /// `threshold`.
    pub fn stats(&self, target: &Config, threshold: f64) -> PopulationStats {
        if self.members.is_empty() {
            return PopulationStats {
                size: 0,
                genotype_diversity: 0.0,
                mean_resource: 0.0,
                mean_fitness: 0.0,
                fit_fraction: 0.0,
            };
        }
        let mut classes: HashMap<&Config, usize> = HashMap::new();
        for o in &self.members {
            *classes.entry(&o.genome).or_insert(0) += 1;
        }
        let counts: Vec<f64> = classes.values().map(|&c| c as f64).collect();
        let n = self.members.len() as f64;
        PopulationStats {
            size: self.members.len(),
            genotype_diversity: diversity_index(&counts).unwrap_or(0.0),
            mean_resource: self.members.iter().map(|o| o.resource).sum::<f64>() / n,
            mean_fitness: self.members.iter().map(|o| o.fitness(target)).sum::<f64>() / n,
            fit_fraction: self
                .members
                .iter()
                .filter(|o| o.is_fit(target, threshold))
                .count() as f64
                / n,
        }
    }
}

impl FromIterator<Organism> for Population {
    fn from_iter<I: IntoIterator<Item = Organism>>(iter: I) -> Self {
        Population {
            members: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn org(genome: &str, resource: f64) -> Organism {
        Organism::new(genome.parse().unwrap(), resource, 1)
    }

    #[test]
    fn reap_removes_dead() {
        let mut p = Population::from_members(vec![org("11", 1.0), org("10", 0.0), org("01", -1.0)]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.reap(), 2);
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }

    #[test]
    fn stats_of_empty_population() {
        let p = Population::new();
        let s = p.stats(&"11".parse().unwrap(), 0.5);
        assert_eq!(s.size, 0);
        assert_eq!(s.genotype_diversity, 0.0);
        assert_eq!(s.fit_fraction, 0.0);
    }

    #[test]
    fn genotype_diversity_counts_classes() {
        let target: Config = "1111".parse().unwrap();
        // Two copies of one genotype + two distinct others: G over counts
        // [2,1,1] = 1/(0.25+0.0625+0.0625) = 8/3.
        let p = Population::from_members(vec![
            org("1111", 1.0),
            org("1111", 1.0),
            org("0000", 1.0),
            org("1010", 1.0),
        ]);
        let s = p.stats(&target, 0.9);
        assert!((s.genotype_diversity - 8.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.size, 4);
        assert!((s.fit_fraction - 0.5).abs() < 1e-12);
        assert!((s.mean_fitness - (1.0 + 1.0 + 0.0 + 0.5) / 4.0).abs() < 1e-12);
        assert!((s.mean_resource - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monoculture_diversity_is_one() {
        let p: Population = (0..5).map(|_| org("1010", 1.0)).collect();
        let s = p.stats(&"1111".parse().unwrap(), 0.5);
        assert!((s.genotype_diversity - 1.0).abs() < 1e-9);
    }
}
